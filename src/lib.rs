//! # lds — Local Distributed Sampling and Counting
//!
//! A Rust workspace reproducing **Feng & Yin, "On Local Distributed
//! Sampling and Counting" (PODC 2018, arXiv:1802.06686)**: reductions
//! between approximate inference, approximate sampling and exact sampling
//! in the LOCAL model of distributed computing, the distributed
//! Jerrum–Valiant–Vazirani sampler, the equivalence with strong spatial
//! mixing, and the computational phase transition for distributed
//! sampling at the hardcore uniqueness threshold.
//!
//! This crate is an umbrella re-exporting the workspace members:
//!
//! * [`engine`] — **the front door**: the unified [`engine::Engine`]
//!   facade serving exact/approximate sampling, inference, and counting
//!   for all five Corollary 5.3 models through one typed API.
//! * [`graph`] — graph substrate (CSR graphs, generators, balls, power
//!   graphs, line graphs, hypergraphs).
//! * [`gibbs`] — Gibbs distributions defined by local constraints, their
//!   exact enumeration, and the paper's application models.
//! * [`localnet`] — LOCAL/SLOCAL simulators, network decomposition and
//!   the SLOCAL→LOCAL transformation (Lemma 3.1).
//! * [`oracle`] — marginal oracles: ball enumeration (Theorem 5.1),
//!   Weitz SAW trees, and the boosting lemma (Lemma 4.1).
//! * [`core`] — the paper's reductions, the `local-JVV` exact sampler
//!   (Theorem 4.2), SSM ⟺ inference (Theorem 5.1), and the Corollary 5.3
//!   applications.
//! * [`ssm`] — strong spatial mixing estimation, rate fitting, the phase
//!   transition and the `Ω(diam)` lower-bound witness.
//! * [`runtime`] — the deterministic parallel runtime: a work-stealing
//!   `std::thread` pool, a bounded blocking MPMC channel, and
//!   counter-based RNG stream derivation, so every result is
//!   bit-identical regardless of thread count.
//! * [`serve`] — the concurrent serving front-end: a bounded request
//!   queue with admission control, request coalescing into
//!   `run_batch`, an idempotency cache keyed by
//!   `(engine fingerprint, task, seed)`, and the multi-tenant
//!   [`serve::EngineRegistry`] with LRU eviction.
//! * [`net`] — out-of-process serving: a versioned binary wire codec,
//!   a TCP [`net::NetServer`] over the engine registry, and a blocking
//!   [`net::Client`] — served reports are bit-identical to in-process
//!   execution.
//! * [`chaos`] — deterministic fault injection: a process-wide
//!   fail-point registry (one relaxed load when disarmed) whose fault
//!   schedules derive from a seed via [`runtime::StreamRng`], driving
//!   the resilience tests for retry, deadlines, and supervision.
//! * [`obs`] — the unified observability layer: a process-wide
//!   [`obs::MetricsRegistry`] of lock-free counters/gauges/histograms,
//!   a sampled span/event tracer with request-id correlation, and the
//!   [`obs::RoundLedger`] checking measured round complexity against
//!   the paper's bounds. Scrape in-process via [`obs::global`], or over
//!   the wire via `net::Client::metrics` / `Op::Metrics`.
//!
//! # Quickstart
//!
//! Build an [`engine::Engine`] once — the uniqueness-regime check runs at
//! build time — then serve typed tasks through it:
//!
//! ```
//! use lds::engine::{Engine, ModelSpec, Task};
//! use lds::gibbs::Value;
//! use lds::graph::{generators, NodeId};
//!
//! // exact LOCAL sampling from the hardcore model below uniqueness
//! let engine = Engine::builder()
//!     .model(ModelSpec::Hardcore { lambda: 1.0 })
//!     .graph(generators::cycle(10))
//!     .epsilon(0.001)
//!     .seed(42)
//!     .build()
//!     .expect("in regime");
//! let run = engine.run(Task::SampleExact).expect("task is valid");
//! assert_eq!(run.config().expect("sampling task").len(), 10);
//!
//! // the same engine answers inference and counting queries
//! let mu = engine
//!     .run(Task::Infer { vertex: NodeId(0), value: Value(1) })
//!     .unwrap();
//! assert!((mu.marginal().unwrap().iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! let z = engine.run(Task::Count).unwrap();
//! assert!(z.log_z().unwrap() > 0.0);
//! ```
//!
//! See `examples/` for runnable walkthroughs of every model and task
//! kind, DESIGN.md for the system inventory, and EXPERIMENTS.md for the
//! per-claim reproduction record.

#![forbid(unsafe_code)]

pub use lds_chaos as chaos;
pub use lds_core as core;
pub use lds_engine as engine;
pub use lds_gibbs as gibbs;
pub use lds_graph as graph;
pub use lds_localnet as localnet;
pub use lds_net as net;
pub use lds_obs as obs;
pub use lds_oracle as oracle;
pub use lds_runtime as runtime;
pub use lds_serve as serve;
pub use lds_ssm as ssm;
