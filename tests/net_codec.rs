//! Wire-codec properties: every protocol type round-trips through its
//! canonical encoding bit-exactly, and **no** byte sequence — random
//! soup, truncations, hostile lengths — makes a decoder panic.
//!
//! Equality is asserted on re-encoded bytes: the encoding is canonical
//! (equal values ⇒ equal bytes), which also covers types without
//! `PartialEq` (`RunReport`) and float payloads where `NaN != NaN`
//! would defeat a value comparison even though the bits round-trip.

use std::time::Duration;

use lds::core::glauber::GlauberStats;
use lds::core::jvv::JvvStats;
use lds::engine::{
    Backend, ModelSpec, RunReport, SampleDecode, ServedBackend, ShardingStats, SweepBudget, Task,
    TaskOutput, Topology,
};
use lds::gibbs::{Config, PartialConfig, Value};
use lds::graph::{EdgeId, GraphBuilder, HyperEdgeId, Hypergraph, NodeId};
use lds::net::codec::{Wire, Writer, PHASE_NAMES};
use lds::net::{EngineSpec, Op, Reply, Request, Response, WireError};
use lds::obs::{HistogramSnapshot, MetricsSnapshot};
use lds::runtime::Phase;
use lds::serve::ServerStats;
use proptest::prelude::*;

fn f64_from(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn arb_task() -> impl Strategy<Value = Task> {
    (0u8..4, any::<u32>(), any::<u32>()).prop_map(|(tag, a, b)| match tag {
        0 => Task::SampleExact,
        1 => Task::SampleApprox,
        2 => Task::Infer {
            vertex: NodeId(a),
            value: Value(b),
        },
        _ => Task::Count,
    })
}

fn arb_model() -> impl Strategy<Value = ModelSpec> {
    (
        0u8..6,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(tag, a, b, c, d)| match tag {
            0 => ModelSpec::Hardcore {
                lambda: f64_from(a),
            },
            1 => ModelSpec::Matching {
                lambda: f64_from(a),
            },
            2 => ModelSpec::Ising {
                beta: f64_from(a),
                field: f64_from(b),
            },
            3 => ModelSpec::TwoSpin {
                beta: f64_from(a),
                gamma: f64_from(b),
                lambda: f64_from(c),
                rate: f64_from(d),
            },
            4 => ModelSpec::Coloring {
                q: (a % 1024) as usize,
            },
            _ => ModelSpec::HypergraphMatching {
                lambda: f64_from(a),
            },
        })
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    (1usize..14, any::<bool>()).prop_flat_map(|(n, hyper)| {
        let max_edges = n * n.saturating_sub(1) / 2;
        proptest::collection::vec((0usize..n.max(1), 0usize..n.max(1)), 0..=max_edges.min(24))
            .prop_map(move |pairs| {
                if hyper {
                    let edges = pairs
                        .iter()
                        .map(|(a, b)| {
                            let mut e = vec![NodeId(*a as u32)];
                            if b != a {
                                e.push(NodeId(*b as u32));
                            }
                            e
                        })
                        .collect();
                    Topology::Hypergraph(Hypergraph::new(n, edges))
                } else {
                    let mut b = GraphBuilder::new(n);
                    for (u, v) in pairs {
                        if u != v {
                            b.try_add_edge(NodeId(u as u32), NodeId(v as u32));
                        }
                    }
                    Topology::Graph(b.build())
                }
            })
    })
}

fn arb_pinning() -> impl Strategy<Value = Option<PartialConfig>> {
    (
        1usize..16,
        proptest::collection::vec((0usize..16, any::<u32>()), 0..8),
        any::<bool>(),
    )
        .prop_map(|(n, pins, some)| {
            if !some {
                return None;
            }
            let mut tau = PartialConfig::empty(n);
            for (v, val) in pins {
                if v < n {
                    tau.pin(NodeId(v as u32), Value(val));
                }
            }
            Some(tau)
        })
}

fn arb_backend() -> impl Strategy<Value = Backend> {
    (0u8..4, any::<u32>()).prop_map(|(tag, k)| match tag {
        0 => Backend::Exact,
        1 => Backend::Glauber {
            sweeps: SweepBudget::Auto,
        },
        2 => Backend::Glauber {
            sweeps: SweepBudget::Fixed(k),
        },
        _ => Backend::Auto,
    })
}

fn arb_served_backend() -> impl Strategy<Value = ServedBackend> {
    (any::<bool>(), any::<u32>()).prop_map(|(glauber, sweeps)| {
        if glauber {
            ServedBackend::Glauber { sweeps }
        } else {
            ServedBackend::Exact
        }
    })
}

fn arb_spec() -> impl Strategy<Value = EngineSpec> {
    (
        arb_model(),
        arb_topology(),
        arb_pinning(),
        any::<u64>(),
        any::<u64>(),
        arb_backend(),
    )
        .prop_map(
            |(model, topology, pinning, eps, delta, backend)| EngineSpec {
                model,
                topology,
                pinning,
                epsilon: f64_from(eps),
                delta: f64_from(delta),
                backend,
            },
        )
}

fn arb_duration() -> impl Strategy<Value = Duration> {
    (any::<u64>(), 0u32..1_000_000_000).prop_map(|(s, n)| Duration::new(s, n))
}

fn arb_output() -> impl Strategy<Value = TaskOutput> {
    (
        0u8..3,
        proptest::collection::vec(any::<u32>(), 0..20),
        proptest::collection::vec(any::<u64>(), 0..6),
        any::<u64>(),
        0u8..3,
    )
        .prop_map(|(tag, vals, floats, x, decode_tag)| match tag {
            0 => TaskOutput::Sample {
                config: Config::from_values(vals.iter().map(|v| Value(*v)).collect()),
                decoded: match decode_tag {
                    0 => SampleDecode::Spins,
                    1 => SampleDecode::Matching(vals.iter().map(|v| EdgeId(*v)).collect()),
                    _ => SampleDecode::HypergraphMatching(
                        vals.iter().map(|v| HyperEdgeId(*v)).collect(),
                    ),
                },
            },
            1 => TaskOutput::Marginal {
                distribution: floats.iter().map(|b| f64_from(*b)).collect(),
                probability: f64_from(x),
            },
            _ => TaskOutput::Count {
                log_z: f64_from(x),
                log_error_bound: f64_from(x.rotate_left(17)),
            },
        })
}

fn arb_report() -> impl Strategy<Value = RunReport> {
    (
        (arb_task(), any::<u64>(), arb_output(), any::<bool>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (0u8..2, any::<u64>(), 0usize..4),
        (arb_duration(), arb_duration(), 0u8..2),
        (arb_served_backend(), 0u8..2),
    )
        .prop_map(
            |(
                (task, seed, output, succeeded),
                (rounds, bound_bits, rate_bits),
                (has_stats, stat_bits, n_phases),
                (wall, phase_wall, has_sharding),
                (backend, has_glauber),
            )| {
                RunReport {
                    task,
                    seed,
                    output,
                    succeeded,
                    rounds: (rounds % (1 << 40)) as usize,
                    bound_rounds: f64_from(bound_bits),
                    rate: f64_from(rate_bits),
                    backend,
                    stats: (has_stats == 1).then(|| JvvStats {
                        acceptance_product: f64_from(stat_bits),
                        clamped: (stat_bits % 7) as usize,
                        repair_failures: (stat_bits % 3) as usize,
                        locality: (stat_bits % 100) as usize,
                    }),
                    glauber: (has_glauber == 1).then(|| GlauberStats {
                        sweeps: (stat_bits % 4096) as usize,
                        site_updates: stat_bits.rotate_right(9),
                        last_sweep_changes: (stat_bits % 257) as usize,
                        locality: (stat_bits % 5) as usize,
                    }),
                    wall_time: wall,
                    phases: (0..n_phases)
                        .map(|i| {
                            Phase::new(
                                PHASE_NAMES[(i + stat_bits as usize) % PHASE_NAMES.len()],
                                phase_wall,
                                i * 3,
                            )
                        })
                        .collect(),
                    sharding: (has_sharding == 1).then(|| ShardingStats {
                        projected_clusters: (stat_bits % 11) as usize,
                        inline_clusters: (stat_bits % 5) as usize,
                        halo_sum: (stat_bits % 1000) as usize,
                        max_halo: (stat_bits % 100) as usize,
                        bytes_cloned: stat_bits,
                        halo_bytes_bound: stat_bits.wrapping_mul(2),
                    }),
                }
            },
        )
}

fn arb_server_stats() -> impl Strategy<Value = ServerStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), 0usize..10_000, 0usize..10_000),
        (arb_duration(), arb_duration(), arb_duration()),
    )
        .prop_map(
            |(
                (submitted, rejected, completed, failed),
                (cache_hits, cache_misses, engine_executions, batches),
                (batched_requests, queue_depth, peak_queue_depth),
                (p50, p99, uptime),
            )| ServerStats {
                submitted,
                rejected,
                completed,
                failed,
                cache_hits,
                cache_misses,
                engine_executions,
                batches,
                batched_requests,
                queue_depth,
                peak_queue_depth,
                p50_latency: p50,
                p99_latency: p99,
                uptime,
            },
        )
}

fn arb_histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..12),
    )
        .prop_map(|(count, sum, max, buckets)| HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        })
}

fn arb_metric_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

fn arb_metrics_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        proptest::collection::vec((arb_metric_name(), any::<u64>()), 0..6),
        proptest::collection::vec((arb_metric_name(), any::<i64>()), 0..6),
        proptest::collection::vec((arb_metric_name(), arb_histogram_snapshot()), 0..4),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    (
        0u8..8,
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..24),
    )
        .prop_map(|(tag, x, msg)| {
            let msg = String::from_utf8_lossy(&msg).into_owned();
            match tag {
                0 => WireError::Overloaded {
                    queue_depth: (x % 100_000) as usize,
                    watermark: (x % 4096) as usize,
                },
                1 => WireError::ShuttingDown,
                2 => WireError::UnknownFingerprint(x),
                3 => WireError::Rejected(msg),
                4 => WireError::Engine(msg),
                5 => WireError::Cancelled,
                6 => WireError::Expired,
                _ => WireError::Malformed(msg),
            }
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        0u8..5,
        arb_spec(),
        any::<u64>(),
        arb_task(),
        any::<bool>(),
        (any::<bool>(), arb_duration()),
    )
        .prop_map(
            |(id, tag, spec, x, task, interval, (bounded, budget))| Request {
                id,
                op: match tag {
                    0 => Op::Ping,
                    1 => Op::Register(Box::new(spec)),
                    2 => Op::Run {
                        fingerprint: x,
                        task,
                        seed: x.rotate_left(13),
                        deadline: bounded.then_some(budget),
                    },
                    3 => Op::Stats {
                        fingerprint: x,
                        interval,
                    },
                    _ => Op::Metrics,
                },
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        (any::<u64>(), 0u8..6),
        arb_report(),
        arb_server_stats(),
        arb_wire_error(),
        arb_metrics_snapshot(),
        any::<u64>(),
    )
        .prop_map(|((id, tag), report, stats, error, metrics, fp)| Response {
            id,
            reply: match tag {
                0 => Reply::Pong,
                1 => Reply::Registered { fingerprint: fp },
                2 => Reply::Report(Box::new(report)),
                3 => Reply::Stats(Box::new(stats)),
                4 => Reply::Error(error),
                _ => Reply::Metrics(Box::new(metrics)),
            },
        })
}

/// Round trip + canonical re-encode for any `Wire` type. Returns the
/// same `Err(String)` shape `prop_assert!` produces, so callers `?` it.
fn assert_round_trip<T: Wire>(value: &T) -> Result<(), String> {
    let bytes = value.to_bytes();
    let back = T::from_bytes(&bytes).map_err(|e| format!("decode of own encoding failed: {e}"))?;
    prop_assert_eq!(&back.to_bytes(), &bytes, "re-encode is not canonical");
    Ok(())
}

proptest! {
    #[test]
    fn tasks_round_trip(task in arb_task()) {
        assert_round_trip(&task)?;
        // Task has Eq: value-level agreement too
        prop_assert_eq!(Task::from_bytes(&task.to_bytes()).unwrap(), task);
    }

    #[test]
    fn model_specs_round_trip_bit_exactly(model in arb_model()) {
        assert_round_trip(&model)?;
        // the fingerprint — the cross-process identity — survives the wire
        let back = ModelSpec::from_bytes(&model.to_bytes()).unwrap();
        prop_assert_eq!(back.fingerprint(), model.fingerprint());
    }

    #[test]
    fn topologies_round_trip_with_identical_fingerprints(topo in arb_topology()) {
        assert_round_trip(&topo)?;
        let back = Topology::from_bytes(&topo.to_bytes()).unwrap();
        prop_assert_eq!(back.fingerprint(), topo.fingerprint());
        prop_assert_eq!(back.node_count(), topo.node_count());
    }

    #[test]
    fn engine_specs_round_trip(spec in arb_spec()) {
        assert_round_trip(&spec)?;
    }

    #[test]
    fn run_reports_round_trip(report in arb_report()) {
        assert_round_trip(&report)?;
    }

    #[test]
    fn server_stats_round_trip(stats in arb_server_stats()) {
        assert_round_trip(&stats)?;
    }

    #[test]
    fn metrics_snapshots_round_trip(snapshot in arb_metrics_snapshot()) {
        assert_round_trip(&snapshot)?;
        // MetricsSnapshot has PartialEq: value-level agreement too
        prop_assert_eq!(
            MetricsSnapshot::from_bytes(&snapshot.to_bytes()).unwrap(),
            snapshot
        );
    }

    #[test]
    fn histogram_snapshots_round_trip(h in arb_histogram_snapshot()) {
        assert_round_trip(&h)?;
        prop_assert_eq!(HistogramSnapshot::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn requests_and_responses_round_trip(req in arb_request(), resp in arb_response()) {
        assert_round_trip(&req)?;
        assert_round_trip(&resp)?;
    }

    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // decoding arbitrary bytes as any protocol type returns a typed
        // result — Ok or Err — and never panics or over-allocates
        let _ = Task::from_bytes(&bytes);
        let _ = ModelSpec::from_bytes(&bytes);
        let _ = Topology::from_bytes(&bytes);
        let _ = EngineSpec::from_bytes(&bytes);
        let _ = RunReport::from_bytes(&bytes);
        let _ = ServerStats::from_bytes(&bytes);
        let _ = WireError::from_bytes(&bytes);
        let _ = MetricsSnapshot::from_bytes(&bytes);
        let _ = HistogramSnapshot::from_bytes(&bytes);
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
    }

    #[test]
    fn every_strict_prefix_of_a_valid_encoding_fails_cleanly(resp in arb_response()) {
        let bytes = resp.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                Response::from_bytes(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte response decoded", bytes.len()
            );
        }
    }

    #[test]
    fn flipping_the_tag_byte_is_typed(task in arb_task()) {
        // corrupt the tag: decode must yield Malformed, not panic
        let mut bytes = task.to_bytes();
        bytes[0] = 0xEE;
        prop_assert!(Task::from_bytes(&bytes).is_err());
    }
}

/// Encodes a `RunReport` in the **protocol-v1** layout (no backend, no
/// Glauber stats — the shape before this release) and feeds it to the
/// current decoder: an old-version peer's bytes must produce a typed
/// error, never a panic and never a silent misdecode. (The frame-level
/// version gate rejects such peers first; this covers the codec layer
/// on its own.)
#[test]
fn v1_report_bytes_fail_typed_on_the_v2_decoder() {
    let mut w = Writer::new();
    Task::SampleApprox.encode(&mut w);
    w.put_u64(7); // seed
    TaskOutput::Sample {
        config: Config::from_values(vec![Value(0), Value(1)]),
        decoded: SampleDecode::Spins,
    }
    .encode(&mut w);
    w.put_bool(true); // succeeded
    w.put_usize(12); // rounds
    w.put_f64(34.5); // bound_rounds
    w.put_f64(0.25); // rate

    // v1 continued directly with Option<JvvStats>: no backend byte
    w.put_u8(0); // stats: None
    Duration::from_millis(3).encode(&mut w); // wall_time
    w.put_usize(0); // phases: empty
    w.put_u8(0); // sharding: None
    let v1 = w.into_bytes();
    let err = RunReport::from_bytes(&v1).expect_err("v1 bytes must not decode as v2");
    // any CodecError variant is fine — the point is a typed failure
    let _ = err.to_string();
}

/// Same for the v1 `EngineSpec` layout, which ended at `delta`: the v2
/// decoder wants a backend tag and must fail typed on its absence.
#[test]
fn v1_spec_bytes_fail_typed_on_the_v2_decoder() {
    let mut spec = EngineSpec::new(
        ModelSpec::Hardcore { lambda: 0.5 },
        Topology::Graph(lds::graph::generators::cycle(4)),
    );
    spec.backend = Backend::Exact;
    let mut v2 = spec.to_bytes();
    v2.pop(); // drop the trailing backend byte => the v1 layout
    let err = EngineSpec::from_bytes(&v2).expect_err("v1 spec bytes must not decode as v2");
    let _ = err.to_string();
}

/// One live server shared by every `soup` case below: the property is
/// precisely that no hostile byte stream can damage it for the next
/// connection, so reusing it across cases *is* the assertion.
fn soup_server() -> std::net::SocketAddr {
    use std::sync::OnceLock;
    static SERVER: OnceLock<std::net::SocketAddr> = OnceLock::new();
    *SERVER.get_or_init(|| {
        let server = lds::net::NetServer::with_defaults("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        std::mem::forget(server); // lives for the whole test binary
        addr
    })
}

proptest! {
    /// Mid-stream corruption: a well-formed request frame followed by
    /// random byte soup on the same connection. The server must answer
    /// the valid frame, then either reply typed (`Malformed`) or close
    /// the connection cleanly — never panic, never desync into treating
    /// soup bytes as a frame of the *next* connection.
    #[test]
    fn byte_soup_after_a_valid_frame_fails_typed_and_never_wedges(
        soup in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        use std::io::{Read, Write};
        let addr = soup_server();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // a valid Ping frame, answered before the soup arrives
        let ping = Request { id: 1, op: Op::Ping };
        lds::net::frame::write_frame(&mut stream, &ping.to_bytes(), 1 << 20).unwrap();
        let pong = lds::net::frame::read_frame(&mut stream, 1 << 20).unwrap();
        let pong = Response::from_bytes(&pong).unwrap();
        prop_assert!(matches!(pong.reply, Reply::Pong));

        // now the soup — the reader sees it where a header belongs
        stream.write_all(&soup).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);

        // the server answers typed and/or closes; reading must
        // terminate (never hang) and every complete frame must decode.
        // A reset is a legitimate close here — the server tearing down
        // a connection that still has unread soup buffered RSTs, which
        // may also truncate its own final frame in transit.
        let mut rest = Vec::new();
        let reset = match stream.read_to_end(&mut rest) {
            Ok(_) => false,
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => true,
            Err(e) => return Err(format!("reading the server's last words failed: {e}")),
        };
        let mut at = 0usize;
        while rest.len() - at >= lds::net::frame::HEADER_LEN {
            let header: [u8; lds::net::frame::HEADER_LEN] =
                rest[at..at + lds::net::frame::HEADER_LEN].try_into().unwrap();
            let len = lds::net::frame::parse_header(&header, 1 << 20).unwrap() as usize;
            at += lds::net::frame::HEADER_LEN;
            if rest.len() - at < len {
                prop_assert!(reset, "truncated frame without a reset");
                break;
            }
            let resp = Response::from_bytes(&rest[at..at + len]).unwrap();
            at += len;
            prop_assert!(
                matches!(resp.reply, Reply::Error(WireError::Malformed(_))),
                "soup must only ever elicit Malformed, got {:?}", resp.reply
            );
        }
        prop_assert!(
            at == rest.len() || reset,
            "trailing partial garbage from the server without a reset"
        );

        // a fresh connection is served: the soup damaged nothing
        let mut client = lds::net::Client::connect(addr).unwrap();
        client.ping().unwrap();
    }
}
