//! Determinism suite: every engine result is **bit-identical regardless
//! of thread count**.
//!
//! The runtime's contract (lds-runtime) is that parallelism never
//! changes a result: randomness is derived per task from the master
//! seed, `par_map` gathers in input order, and the chromatic scheduler's
//! concurrent cluster simulation is execution-equivalent to the
//! sequential scan. This suite locks the contract down across all five
//! `ModelSpec` applications (plus the general two-spin variant), all
//! four task kinds, and pools of width 1, 2 and 8 — byte-comparing
//! samples, counts, marginals, round costs, and JVV statistics.
//!
//! The CI matrix additionally runs this suite under `LDS_THREADS=1` and
//! `LDS_THREADS=4`, which drives the *default* pool width of engines
//! built without an explicit `threads(n)`.

use lds::engine::{
    Backend, Engine, MarginalsMethod, ModelSpec, RunReport, SweepBudget, Task, TaskOutput,
};
use lds::gibbs::Value;
use lds::graph::{generators, Hypergraph, NodeId};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 8] = [0, 1, 2, 3, 11, 57, 1_000_003, u64::MAX - 5];

fn triangle_hypergraph() -> Hypergraph {
    Hypergraph::new(
        6,
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(2), NodeId(3), NodeId(4)],
            vec![NodeId(4), NodeId(5), NodeId(0)],
        ],
    )
}

/// All Corollary 5.3 applications (Ising and the general two-spin
/// system both instantiate the fourth bullet).
fn specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Hardcore { lambda: 1.0 },
        ModelSpec::Matching { lambda: 1.5 },
        ModelSpec::Ising {
            beta: -0.2,
            field: 0.1,
        },
        ModelSpec::TwoSpin {
            beta: 0.8,
            gamma: 0.9,
            lambda: 1.0,
            rate: 0.5,
        },
        ModelSpec::Coloring { q: 4 },
        ModelSpec::HypergraphMatching { lambda: 0.1 },
    ]
}

fn engine_for(spec: &ModelSpec, threads: usize) -> Engine {
    let builder = Engine::builder()
        .model(spec.clone())
        .epsilon(0.01)
        .delta(0.05)
        .threads(threads);
    match spec {
        ModelSpec::HypergraphMatching { .. } => builder.hypergraph(triangle_hypergraph()),
        _ => builder.graph(generators::cycle(8)),
    }
    .build()
    .unwrap_or_else(|e| panic!("{}: {e:?}", spec.name()))
}

/// Bitwise equality of two reports, ignoring only the
/// execution-strategy fields. The per-field asserts give readable
/// failure diagnostics; the closing [`RunReport::semantic_eq`] check is
/// the canonical definition (shared with the serving and net suites)
/// and catches any report field the list here does not yet name.
fn assert_reports_identical(a: &RunReport, b: &RunReport, context: &str) {
    assert_eq!(a.task, b.task, "{context}: task");
    assert_eq!(a.seed, b.seed, "{context}: seed");
    assert_eq!(a.succeeded, b.succeeded, "{context}: succeeded");
    assert_eq!(a.rounds, b.rounds, "{context}: rounds");
    assert_eq!(
        a.bound_rounds.to_bits(),
        b.bound_rounds.to_bits(),
        "{context}: bound_rounds"
    );
    assert_eq!(a.rate.to_bits(), b.rate.to_bits(), "{context}: rate");
    match (&a.output, &b.output) {
        (
            TaskOutput::Sample {
                config: ca,
                decoded: da,
            },
            TaskOutput::Sample {
                config: cb,
                decoded: db,
            },
        ) => {
            assert_eq!(ca, cb, "{context}: sampled configuration");
            assert_eq!(da, db, "{context}: decoded sample");
        }
        (
            TaskOutput::Marginal {
                distribution: ma,
                probability: pa,
            },
            TaskOutput::Marginal {
                distribution: mb,
                probability: pb,
            },
        ) => {
            let ba: Vec<u64> = ma.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u64> = mb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ba, bb, "{context}: marginal bits");
            assert_eq!(pa.to_bits(), pb.to_bits(), "{context}: probability bits");
        }
        (
            TaskOutput::Count {
                log_z: za,
                log_error_bound: ea,
            },
            TaskOutput::Count {
                log_z: zb,
                log_error_bound: eb,
            },
        ) => {
            assert_eq!(za.to_bits(), zb.to_bits(), "{context}: log_z bits");
            assert_eq!(ea.to_bits(), eb.to_bits(), "{context}: error bound bits");
        }
        (x, y) => panic!("{context}: output kind mismatch: {x:?} vs {y:?}"),
    }
    match (&a.stats, &b.stats) {
        (None, None) => {}
        (Some(sa), Some(sb)) => {
            assert_eq!(
                sa.acceptance_product.to_bits(),
                sb.acceptance_product.to_bits(),
                "{context}: acceptance bits"
            );
            assert_eq!(sa.clamped, sb.clamped, "{context}: clamped");
            assert_eq!(
                sa.repair_failures, sb.repair_failures,
                "{context}: repair failures"
            );
            assert_eq!(sa.locality, sb.locality, "{context}: locality");
        }
        (x, y) => panic!("{context}: stats presence mismatch: {x:?} vs {y:?}"),
    }
    assert_eq!(a.backend, b.backend, "{context}: served backend");
    assert_eq!(a.glauber, b.glauber, "{context}: glauber stats");
    // phase structure (names + round charges) is part of the report
    let pa: Vec<(&str, usize)> = a.phases.iter().map(|p| (p.name, p.rounds)).collect();
    let pb: Vec<(&str, usize)> = b.phases.iter().map(|p| (p.name, p.rounds)).collect();
    assert_eq!(pa, pb, "{context}: phases");
    assert!(a.semantic_eq(b), "{context}: semantic_eq disagrees");
}

#[test]
fn run_batch_is_bit_identical_across_thread_counts() {
    for spec in specs() {
        for task in [Task::SampleExact, Task::SampleApprox] {
            let reference = engine_for(&spec, 1).run_batch(task, &SEEDS).unwrap();
            assert_eq!(reference.len(), SEEDS.len());
            for &threads in &THREAD_COUNTS[1..] {
                let reports = engine_for(&spec, threads).run_batch(task, &SEEDS).unwrap();
                for (a, b) in reference.iter().zip(&reports) {
                    let context = format!(
                        "{} {:?} seed {} threads {}",
                        spec.name(),
                        task,
                        a.seed,
                        threads
                    );
                    assert_reports_identical(a, b, &context);
                }
            }
        }
    }
}

#[test]
fn inference_and_counting_are_bit_identical_across_thread_counts() {
    for spec in specs() {
        let reference = engine_for(&spec, 1);
        let infer = Task::Infer {
            vertex: NodeId(0),
            value: Value(1),
        };
        let ref_infer = reference.run(infer).unwrap();
        let ref_count = reference.run(Task::Count).unwrap();
        for &threads in &THREAD_COUNTS[1..] {
            let engine = engine_for(&spec, threads);
            let context = format!("{} threads {}", spec.name(), threads);
            assert_reports_identical(&ref_infer, &engine.run(infer).unwrap(), &context);
            assert_reports_identical(&ref_count, &engine.run(Task::Count).unwrap(), &context);
        }
    }
}

#[test]
fn full_marginal_table_is_bit_identical_across_thread_counts() {
    for spec in specs() {
        let bits = |table: Vec<Vec<f64>>| -> Vec<Vec<u64>> {
            table
                .into_iter()
                .map(|mu| mu.into_iter().map(f64::to_bits).collect())
                .collect()
        };
        let reference = bits(engine_for(&spec, 1).marginals().marginals);
        for &threads in &THREAD_COUNTS[1..] {
            let report = engine_for(&spec, threads).marginals();
            assert!(
                matches!(report.method, MarginalsMethod::Exact { .. }),
                "{}: method",
                spec.name()
            );
            assert_eq!(
                bits(report.marginals),
                reference,
                "{} threads {}",
                spec.name(),
                threads
            );
        }
    }
}

#[test]
fn sampled_marginal_reconstruction_is_bit_identical_across_thread_counts() {
    let method_key = |m: MarginalsMethod| match m {
        MarginalsMethod::Sampled {
            repetitions,
            failure_rate,
            delta,
        } => (repetitions, failure_rate.to_bits(), delta.to_bits()),
        other => panic!("sampled reconstruction reported {other:?}"),
    };
    let spec = ModelSpec::Hardcore { lambda: 1.0 };
    let reference = engine_for(&spec, 1).marginals_sampled(200, 7).unwrap();
    for &threads in &THREAD_COUNTS[1..] {
        let rec = engine_for(&spec, threads)
            .marginals_sampled(200, 7)
            .unwrap();
        assert_eq!(
            method_key(rec.method),
            method_key(reference.method),
            "threads {threads}: method"
        );
        for (a, b) in reference.marginals.iter().zip(&rec.marginals) {
            let ba: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ba, bb, "threads {threads}: marginal bits");
        }
    }
}

/// The Glauber path rides the same chromatic runtime as every other
/// kernel, so its samples — and its mixing diagnostics — must be
/// bit-identical at any pool width, across every model the backend can
/// certify.
#[test]
fn glauber_batches_are_bit_identical_across_thread_counts() {
    for spec in specs() {
        let glauber_engine = |threads: usize| {
            let builder = Engine::builder()
                .model(spec.clone())
                .epsilon(0.01)
                .delta(0.05)
                .threads(threads)
                .backend(Backend::Glauber {
                    sweeps: SweepBudget::Fixed(12),
                });
            match &spec {
                ModelSpec::HypergraphMatching { .. } => builder.hypergraph(triangle_hypergraph()),
                _ => builder.graph(generators::cycle(8)),
            }
            .build()
            .unwrap_or_else(|e| panic!("{}: {e:?}", spec.name()))
        };
        let reference = glauber_engine(1)
            .run_batch(Task::SampleApprox, &SEEDS)
            .unwrap();
        for report in &reference {
            assert_eq!(
                report.glauber_sweeps(),
                Some(12),
                "{}: Glauber must serve",
                spec.name()
            );
            assert!(report.glauber.is_some(), "{}: diagnostics", spec.name());
        }
        for &threads in &THREAD_COUNTS[1..] {
            let reports = glauber_engine(threads)
                .run_batch(Task::SampleApprox, &SEEDS)
                .unwrap();
            for (a, b) in reference.iter().zip(&reports) {
                let context = format!(
                    "{} glauber seed {} threads {}",
                    spec.name(),
                    a.seed,
                    threads
                );
                assert_reports_identical(a, b, &context);
            }
        }
    }
}

#[test]
fn phase_rounds_sum_to_report_rounds() {
    let engine = engine_for(&ModelSpec::Hardcore { lambda: 1.0 }, 2);
    for task in [
        Task::SampleExact,
        Task::SampleApprox,
        Task::Infer {
            vertex: NodeId(0),
            value: Value(1),
        },
        Task::Count,
    ] {
        let report = engine.run(task).unwrap();
        let total: usize = report.phases.iter().map(|p| p.rounds).sum();
        assert_eq!(total, report.rounds, "{task:?}");
        assert!(!report.phases.is_empty(), "{task:?} reported no phases");
        let timed: std::time::Duration = report.phases.iter().map(|p| p.wall_time).sum();
        assert!(
            timed <= report.wall_time,
            "{task:?} phase time exceeds total"
        );
    }
    // the Glauber path's phase accounting obeys the same invariant
    let glauber = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(8))
        .epsilon(0.01)
        .threads(2)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Fixed(9),
        })
        .build()
        .unwrap();
    let report = glauber.run(Task::SampleApprox).unwrap();
    let total: usize = report.phases.iter().map(|p| p.rounds).sum();
    assert_eq!(total, report.rounds, "glauber phase rounds");
    assert!(
        report.phases.iter().any(|p| p.name == "glauber"),
        "glauber phase missing: {:?}",
        report.phases
    );
}

/// The default pool width comes from `LDS_THREADS` (the CI matrix leg)
/// or the machine; whatever it is, results must match the sequential
/// engine bit for bit.
#[test]
fn default_pool_width_matches_sequential_results() {
    let spec = ModelSpec::Coloring { q: 4 };
    let default_engine = Engine::builder()
        .model(spec.clone())
        .graph(generators::cycle(8))
        .epsilon(0.01)
        .build()
        .unwrap();
    assert!(default_engine.threads() >= 1);
    let reference = engine_for(&spec, 1);
    let a = reference.run_batch(Task::SampleExact, &SEEDS).unwrap();
    let b = default_engine.run_batch(Task::SampleExact, &SEEDS).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_reports_identical(x, y, &format!("default pool, seed {}", x.seed));
    }
}
