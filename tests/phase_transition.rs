//! Integration: the computational phase transition (experiments E7/E8)
//! and the SSM ⟺ inference equivalence (Theorem 5.1) across crates.

use lds::core::complexity;
use lds::core::ssm_inference;
use lds::gibbs::models::hardcore;
use lds::gibbs::{distribution, metrics, PartialConfig, Value};
use lds::graph::{generators, NodeId};
use lds::oracle::{DecayRate, InferenceOracle};
use lds::ssm::{correlation, estimator, phase, rate};

#[test]
fn transition_is_at_the_uniqueness_threshold() {
    for delta in [3usize, 4, 5] {
        let lc = complexity::hardcore_uniqueness_threshold(delta);
        // below: gap vanishes; above: gap persists
        let below = correlation::limiting_tree_gap(delta, 0.7 * lc, 400);
        let above = correlation::limiting_tree_gap(delta, 1.5 * lc, 400);
        assert!(below < 1e-4, "Δ={delta}: below-threshold gap {below}");
        assert!(above > 0.02, "Δ={delta}: above-threshold gap {above}");
    }
}

#[test]
fn fitted_rates_match_tree_theory_below_threshold() {
    for (delta, ratio) in [(4usize, 0.5f64), (4, 0.8), (5, 0.6)] {
        let points = phase::hardcore_tree_sweep(delta, &[ratio], 200);
        let p = &points[0];
        let fitted = p.fitted.as_ref().expect("fit exists below threshold");
        assert!(
            (fitted.alpha - p.theory_rate).abs() < 0.05,
            "Δ={delta} ratio={ratio}: fitted {} vs theory {}",
            fitted.alpha,
            p.theory_rate
        );
    }
}

#[test]
fn measured_ssm_rate_supports_planned_inference() {
    // measure the rate on a cycle, then plan radii with it (Thm 5.1 dir 2)
    let g = generators::cycle(14);
    let model = hardcore::model(&g, 1.2);
    let series = estimator::boundary_gap_series(&model, NodeId(0), Value(0), Value(1), 6);
    let fitted = rate::fit_rate(&series).unwrap();
    assert!(fitted.alpha < 1.0, "cycles always mix");
    // plan with a safety margin on the fitted rate
    let planned = DecayRate::new((fitted.alpha * 1.2).min(0.95), (fitted.c * 2.0).max(1.0));
    let oracle = ssm_inference::inference_from_ssm(planned);
    let tau = PartialConfig::empty(14);
    let exact = distribution::marginal(&model, &tau, NodeId(0)).unwrap();
    for delta in [0.1f64, 0.02] {
        let t = oracle.radius(14, delta);
        let est = oracle.marginal(&model, &tau, NodeId(0), t);
        let err = metrics::tv_distance(&exact, &est);
        assert!(err <= delta, "δ={delta}: err {err} at planned radius {t}");
    }
}

#[test]
fn inference_implies_ssm_quantitatively() {
    // Thm 5.1 direction 1: the implied SSM rate bounds the measured gaps
    let g = generators::cycle(14);
    let model = hardcore::model(&g, 1.0);
    let oracle_rate = DecayRate::new(0.5, 2.0);
    let implied = ssm_inference::implied_ssm_rate(oracle_rate);
    let series = estimator::boundary_gap_series(&model, NodeId(0), Value(0), Value(1), 6);
    for p in &series {
        assert!(
            p.gap <= implied.error_at(p.distance),
            "distance {}: measured {} > implied bound {}",
            p.distance,
            p.gap,
            implied.error_at(p.distance)
        );
    }
}

#[test]
fn lower_bound_witness_blocks_local_inference() {
    // E8 mechanism: above λ_c, no finite radius achieves error 0.005
    let lc = complexity::hardcore_uniqueness_threshold(4);
    let gaps: Vec<f64> = estimator::tree_gap_series(3, 1.4 * lc, 250)
        .iter()
        .map(|p| p.gap)
        .collect();
    assert_eq!(correlation::min_radius_for_error(&gaps, 0.005), None);
    // and the error floor is macroscopic
    let gap = correlation::limiting_tree_gap(4, 1.4 * lc, 250);
    assert!(correlation::error_floor(gap) > 0.05);
}

#[test]
fn required_radius_is_monotone_in_lambda_below_threshold() {
    let points = phase::hardcore_tree_sweep(4, &[0.3, 0.5, 0.7, 0.9], 300);
    let radii: Vec<f64> = points.iter().map(|p| p.required_radius).collect();
    for w in radii.windows(2) {
        assert!(w[0] <= w[1], "radii not monotone: {radii:?}");
    }
    assert!(radii.iter().all(|r| r.is_finite()));
}
