//! Statistical correctness: chi-square goodness of fit of
//! `Task::SampleExact` output against brute-force enumeration.
//!
//! Theorem 4.2: conditioned on success, `local-JVV`'s output follows the
//! Gibbs distribution `μ^τ` *exactly*. On instances small enough to
//! enumerate (≤ 12 carrier nodes) we draw thousands of samples with a
//! fixed-seed harness, keep the successful runs, and run Pearson's
//! chi-square test (`lds_core::stats`) of the observed configuration
//! counts against the enumerated law. The harness is deterministic —
//! fixed seeds through the engine's derived RNG streams — so these are
//! regression tests, not flaky Monte Carlo: the statistic only moves if
//! the sampler's distribution moves.

use lds::core::stats::{self, ChiSquare};
use lds::engine::{Backend, Engine, ModelSpec, SweepBudget, Task};
use lds::gibbs::distribution;
use lds::graph::generators;

/// Reject only overwhelming evidence of misfit; with fixed seeds the
/// p-value is a constant of the codebase, so any drift below this bound
/// signals a real distribution change.
const P_FLOOR: f64 = 1e-3;

/// Draws `trials` exact samples (seeds `0..trials`), tallies successful
/// runs per enumerated configuration, and chi-square-tests them against
/// the exact law. Also enforces that the success rate is healthy, since
/// exactness is conditional on success.
fn chi_square_exactness(engine: &Engine, trials: usize) -> ChiSquare {
    let model = engine.instance().model();
    let joint = distribution::joint_distribution(model, engine.instance().pinning())
        .expect("instance small enough to enumerate");
    let weights: Vec<f64> = joint.iter().map(|(_, p)| *p).collect();
    let seeds: Vec<u64> = (0..trials as u64).collect();
    let reports = engine
        .run_batch(Task::SampleExact, &seeds)
        .expect("valid task");
    let mut counts = vec![0u64; joint.len()];
    let mut accepted = 0usize;
    for report in &reports {
        if !report.succeeded {
            continue;
        }
        accepted += 1;
        let config = report.config().expect("sampling task");
        let idx = joint
            .iter()
            .position(|(c, _)| c == config)
            .expect("sample must be a feasible configuration");
        counts[idx] += 1;
    }
    assert!(
        accepted * 2 >= trials,
        "success rate collapsed: {accepted}/{trials}"
    );
    stats::goodness_of_fit(&counts, &weights, 5.0)
}

#[test]
fn hardcore_exact_samples_fit_the_gibbs_law() {
    // C8 at λ = 1: uniform over the 47 independent sets of the cycle
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(8))
        .epsilon(0.001)
        .threads(2)
        .build()
        .unwrap();
    let test = chi_square_exactness(&engine, 2000);
    assert!(test.dof >= 20, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "hardcore misfit: {test:?}");
}

#[test]
fn ising_exact_samples_fit_the_gibbs_law() {
    // C6 antiferromagnet with a field: 64 configurations, non-uniform
    let engine = Engine::builder()
        .model(ModelSpec::Ising {
            beta: -0.2,
            field: 0.1,
        })
        .graph(generators::cycle(6))
        .epsilon(0.001)
        .threads(2)
        .build()
        .unwrap();
    let test = chi_square_exactness(&engine, 2000);
    assert!(test.dof >= 20, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "ising misfit: {test:?}");
}

#[test]
fn coloring_exact_samples_fit_the_gibbs_law() {
    // C5 with q = 4 (the regime needs q > α*·Δ ≈ 3.53): uniform over
    // the 240 proper colorings
    let engine = Engine::builder()
        .model(ModelSpec::Coloring { q: 4 })
        .graph(generators::cycle(5))
        .epsilon(0.002)
        .threads(2)
        .build()
        .unwrap();
    let test = chi_square_exactness(&engine, 2000);
    assert!(test.dof >= 20, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "coloring misfit: {test:?}");
}

#[test]
fn matching_exact_samples_fit_the_gibbs_law() {
    // P4 at λ = 1: the line graph is P3, whose monomer–dimer law has 5
    // configurations. Ported from the removed `lds_core::apps` test
    // suite (`matching_empirical_distribution_is_exact`) — matchings
    // are the one Corollary 5.3 model the facade suites above don't
    // cover statistically, and the only one whose carrier (the line
    // graph) differs from the input topology.
    let engine = Engine::builder()
        .model(ModelSpec::Matching { lambda: 1.0 })
        .graph(generators::path(4))
        .epsilon(0.002)
        .threads(2)
        .build()
        .unwrap();
    let test = chi_square_exactness(&engine, 2000);
    assert!(test.dof >= 3, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "matching misfit: {test:?}");
}

/// The Glauber analogue of [`chi_square_exactness`]: draws `trials`
/// approximate samples through a Glauber-backed `Task::SampleApprox`
/// (seeds `0..trials`) and chi-square-tests them against the enumerated
/// law. The sweep budget is fixed far above the certified mixing time
/// of these tiny instances, so the residual total-variation distance is
/// orders of magnitude below what the test could detect — a failure
/// means the dynamics are biased, not under-mixed. Every report must
/// also say Glauber actually served it.
fn chi_square_glauber(engine: &Engine, trials: usize, sweeps: u32) -> ChiSquare {
    let model = engine.instance().model();
    let joint = distribution::joint_distribution(model, engine.instance().pinning())
        .expect("instance small enough to enumerate");
    let weights: Vec<f64> = joint.iter().map(|(_, p)| *p).collect();
    let seeds: Vec<u64> = (0..trials as u64).collect();
    let reports = engine
        .run_batch(Task::SampleApprox, &seeds)
        .expect("in-regime Glauber request");
    let mut counts = vec![0u64; joint.len()];
    for report in &reports {
        assert_eq!(
            report.glauber_sweeps(),
            Some(sweeps),
            "Glauber must have served this run"
        );
        assert!(report.succeeded, "greedy ground pass cannot fail in-regime");
        let config = report.config().expect("sampling task");
        let idx = joint
            .iter()
            .position(|(c, _)| c == config)
            .expect("sample must be a feasible configuration");
        counts[idx] += 1;
    }
    stats::goodness_of_fit(&counts, &weights, 5.0)
}

/// Chi-square cross-validation of the Glauber backend against the same
/// enumerated law `Task::SampleExact` is tested against above — the
/// two backends agree on the target distribution, not just internally.
#[test]
fn hardcore_glauber_samples_fit_the_gibbs_law() {
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(8))
        .epsilon(0.001)
        .threads(2)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Fixed(48),
        })
        .build()
        .unwrap();
    let test = chi_square_glauber(&engine, 2000, 48);
    assert!(test.dof >= 20, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "glauber hardcore misfit: {test:?}");
}

#[test]
fn ising_glauber_samples_fit_the_gibbs_law() {
    let engine = Engine::builder()
        .model(ModelSpec::Ising {
            beta: -0.2,
            field: 0.1,
        })
        .graph(generators::cycle(6))
        .epsilon(0.001)
        .threads(2)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Fixed(48),
        })
        .build()
        .unwrap();
    let test = chi_square_glauber(&engine, 2000, 48);
    assert!(test.dof >= 20, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "glauber ising misfit: {test:?}");
}

#[test]
fn coloring_glauber_samples_fit_the_gibbs_law() {
    let engine = Engine::builder()
        .model(ModelSpec::Coloring { q: 4 })
        .graph(generators::cycle(5))
        .epsilon(0.002)
        .threads(2)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Fixed(48),
        })
        .build()
        .unwrap();
    let test = chi_square_glauber(&engine, 2000, 48);
    assert!(test.dof >= 20, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "glauber coloring misfit: {test:?}");
}

/// The same goodness-of-fit, but with each execution's **intra-task**
/// parallelism live: samples are drawn one `run_with_seed` at a time on
/// a width-4 pool, so all three `local-JVV` passes — the rejection pass
/// included, since PR 3 routed it through `run_kernel_chromatic` — run
/// same-color clusters concurrently. The parallel pass 3 must still
/// produce the exact Gibbs law (it is bit-identical to the sequential
/// scan; this checks the distribution end to end regardless).
#[test]
fn hardcore_exact_samples_fit_with_parallel_pass3() {
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(8))
        .epsilon(0.001)
        .threads(4)
        .build()
        .unwrap();
    let model = engine.instance().model();
    let joint = distribution::joint_distribution(model, engine.instance().pinning())
        .expect("instance small enough to enumerate");
    let weights: Vec<f64> = joint.iter().map(|(_, p)| *p).collect();
    let trials = 1500usize;
    let mut counts = vec![0u64; joint.len()];
    let mut accepted = 0usize;
    for seed in 0..trials as u64 {
        let report = engine
            .run_with_seed(Task::SampleExact, seed)
            .expect("valid task");
        if !report.succeeded {
            continue;
        }
        accepted += 1;
        let config = report.config().expect("sampling task");
        let idx = joint
            .iter()
            .position(|(c, _)| c == config)
            .expect("sample must be a feasible configuration");
        counts[idx] += 1;
    }
    assert!(
        accepted * 2 >= trials,
        "success rate collapsed: {accepted}/{trials}"
    );
    let test = stats::goodness_of_fit(&counts, &weights, 5.0);
    assert!(test.dof >= 20, "degenerate binning: {test:?}");
    assert!(test.p_value > P_FLOOR, "parallel pass-3 misfit: {test:?}");
}
