//! Integration: exactness of the distributed JVV sampler (Theorem 4.2)
//! across model families, validated against exact enumeration.

use lds::core::jvv::LocalJvv;
use lds::gibbs::models::matching::MatchingInstance;
use lds::gibbs::models::two_spin::TwoSpinParams;
use lds::gibbs::models::{coloring, hardcore};
use lds::gibbs::{distribution, metrics, Config, GibbsModel, PartialConfig};
use lds::graph::{generators, ordering};
use lds::localnet::{Instance, Network};
use lds::oracle::{
    BoostedOracle, DecayRate, EnumerationOracle, MultiplicativeInference, TwoSpinSawOracle,
};

/// Runs JVV `trials` times and returns (success rate, TV of accepted
/// empirical distribution vs exact, total clamped).
fn jvv_statistics<O: MultiplicativeInference + Clone + Send + Sync + 'static>(
    model: &GibbsModel,
    oracle: &O,
    eps: f64,
    trials: usize,
) -> (f64, f64, usize) {
    let g = model.graph().clone();
    let jvv = LocalJvv::new(oracle, eps);
    let mut accepted = Vec::new();
    let mut clamped = 0usize;
    for seed in 0..trials as u64 {
        let net = Network::new(Instance::unconditioned(model.clone()), seed);
        let out = jvv.run_detailed(&net, &ordering::identity(&g));
        clamped += out.stats.clamped;
        if out.run.succeeded() {
            accepted.push(Config::from_values(out.run.outputs));
        }
    }
    let success = accepted.len() as f64 / trials as f64;
    let emp = metrics::empirical_distribution(&accepted);
    let exact =
        distribution::joint_distribution(model, &PartialConfig::empty(model.node_count())).unwrap();
    (success, metrics::tv_distance_joint(&emp, &exact), clamped)
}

#[test]
fn hardcore_jvv_is_exact() {
    let g = generators::cycle(5);
    let model = hardcore::model(&g, 1.5);
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(1.5),
        DecayRate::new(0.5, 2.0),
    ));
    let (success, tv, clamped) = jvv_statistics(&model, &oracle, 0.01, 12_000);
    assert_eq!(clamped, 0);
    assert!(success > 0.4, "success {success}");
    assert!(tv < 0.04, "accepted TV {tv}");
}

#[test]
fn matching_jvv_is_exact() {
    // monomer-dimer on C4: line graph is C4 again; 7 matchings
    let g = generators::cycle(4);
    let inst = MatchingInstance::new(&g, 1.0);
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(1.0),
        DecayRate::new(0.5, 2.0),
    ));
    let (success, tv, clamped) = jvv_statistics(inst.model(), &oracle, 0.01, 12_000);
    assert_eq!(clamped, 0);
    assert!(success > 0.4, "success {success}");
    assert!(tv < 0.04, "accepted TV {tv}");
}

#[test]
fn coloring_jvv_is_exact() {
    let g = generators::path(4);
    let model = coloring::model(&g, 3);
    let oracle = BoostedOracle::new(EnumerationOracle::new(DecayRate::new(0.4, 2.0)));
    let (success, tv, clamped) = jvv_statistics(&model, &oracle, 0.01, 6_000);
    assert_eq!(clamped, 0);
    assert!(success > 0.4, "success {success}");
    assert!(tv < 0.05, "accepted TV {tv}");
}

#[test]
fn jvv_success_rate_improves_with_smaller_eps() {
    let g = generators::cycle(5);
    let model = hardcore::model(&g, 1.0);
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(1.0),
        DecayRate::new(0.5, 2.0),
    ));
    let trials = 2000usize;
    let mut rates = Vec::new();
    for eps in [0.05f64, 0.01, 0.002] {
        let (success, _, _) = jvv_statistics(&model, &oracle, eps, trials);
        rates.push(success);
    }
    assert!(
        rates[0] < rates[1] && rates[1] < rates[2],
        "success rates not improving: {rates:?}"
    );
}

#[test]
fn jvv_respects_conditioning_exactly() {
    // condition on node 1 occupied; accepted outputs must follow μ^τ
    let g = generators::cycle(5);
    let model = hardcore::model(&g, 1.0);
    let mut tau = PartialConfig::empty(5);
    tau.pin(lds::graph::NodeId(1), lds::gibbs::Value(1));
    let inst = Instance::new(model.clone(), tau.clone()).unwrap();
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(1.0),
        DecayRate::new(0.5, 2.0),
    ));
    let jvv = LocalJvv::new(&oracle, 0.01);
    let mut accepted = Vec::new();
    for seed in 0..8000u64 {
        let net = Network::new(inst.clone(), seed);
        let out = jvv.run_detailed(&net, &ordering::identity(&g));
        if out.run.succeeded() {
            accepted.push(Config::from_values(out.run.outputs));
        }
    }
    let emp = metrics::empirical_distribution(&accepted);
    let exact = distribution::joint_distribution(&model, &tau).unwrap();
    let tv = metrics::tv_distance_joint(&emp, &exact);
    assert!(tv < 0.05, "conditioned TV {tv}");
}
