//! `Op::Metrics` end-to-end: scraping a live server over loopback TCP
//! returns the *same* snapshot the process would read locally from
//! `lds::obs::global()`.
//!
//! This equality is exact by design: the net layer deliberately
//! excludes the metrics op from its own instrumentation (no byte
//! counters, no latency record, no trace events), so serving the
//! scrape does not perturb the registry being scraped. The only
//! asynchrony left is the engine pool's worker bookkeeping (a worker
//! bumps `pool_parks` *after* `run_batch` returns, on its way back to
//! blocking), so the comparison retries briefly until the process
//! quiesces instead of demanding instant agreement.

use std::thread;
use std::time::Duration;

use lds::engine::{ModelSpec, Task, Topology};
use lds::graph::generators;
use lds::net::{Client, EngineSpec, NetServer};
use lds::obs::MetricsSnapshot;

fn hardcore_spec(n: usize) -> EngineSpec {
    EngineSpec::new(
        ModelSpec::Hardcore { lambda: 1.0 },
        Topology::Graph(generators::cycle(n)),
    )
}

/// Take the local snapshot and the wire snapshot until they agree
/// (the wire one second, so a quiesced process cannot race it).
fn converged_snapshots(client: &mut Client) -> (MetricsSnapshot, MetricsSnapshot) {
    let mut last = None;
    for _ in 0..20 {
        let local = lds::obs::global().snapshot();
        let wire = client.metrics().expect("metrics scrape");
        if local == wire {
            return (local, wire);
        }
        last = Some((local, wire));
        thread::sleep(Duration::from_millis(100));
    }
    last.expect("at least one attempt")
}

#[test]
fn wire_metrics_snapshot_matches_the_local_registry() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // drive real traffic through every layer so the registry is not
    // trivially empty: register, run a few tasks, ping
    let fp = client.register(&hardcore_spec(10)).unwrap();
    for seed in 0..4u64 {
        client.run(fp, Task::SampleExact, seed).unwrap();
    }
    client.run(fp, Task::Count, 0).unwrap();
    client.ping().unwrap();

    let (local, wire) = converged_snapshots(&mut client);
    assert_eq!(
        local, wire,
        "wire scrape must decode to the same snapshot the process reads locally"
    );
    assert_eq!(
        local.render_text(),
        wire.render_text(),
        "text exposition must agree too"
    );

    // the snapshot actually covers the instrumented layers
    for counter in ["serve_submitted", "net_bytes_in", "net_bytes_out"] {
        assert!(
            wire.counter(counter).is_some_and(|v| v > 0),
            "expected live counter {counter} in {wire:?}"
        );
    }
    for histogram in ["serve_request_latency_ns", "net_op_run_ns"] {
        let h = wire
            .histogram(histogram)
            .unwrap_or_else(|| panic!("expected histogram {histogram}"));
        assert!(h.count > 0, "{histogram} never recorded");
        assert!(h.max >= 1, "{histogram} recorded zero-duration ops only");
    }
    // five runs went through the run op; ping is its own histogram
    assert!(wire.histogram("net_op_run_ns").unwrap().count >= 5);
    assert!(wire.histogram("net_op_ping_ns").unwrap().count >= 1);

    drop(client);
    server.shutdown();
}
