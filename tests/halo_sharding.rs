//! Halo-sharding equivalence: the chromatic runner that ships
//! **halo-projected** scan state ([`ScanKernel::project`], one
//! `O(|halo|)` payload per cluster through an arena of reusable
//! buffers) is **bit-identical** to the frozen full-snapshot reference
//! (`run_kernel_chromatic_reference`: `Arc<state.clone()>` per color
//! plus a second full clone per cluster).
//!
//! Mirrors the `tests/pass3_parallel.rs` pattern: a proptest over
//! random graphs and explicit kernel localities `r ∈ {1, 2, 3}` at pool
//! widths 1, 2 and 8, plus directed checks that
//!
//! * the sharding telemetry proves per-cluster bytes cloned is bounded
//!   by the halo sum (not `n · #clusters`) for projecting kernels, and
//!   that a kernel left on the default full-copy `project` exceeds the
//!   bound — the condition the CI telemetry gate fails on;
//! * the real serving-path kernels (the Theorem 3.2 sampler through
//!   its blanket pinning projection) agree across widths on a workload
//!   whose colors genuinely carry several clusters.
//!
//! The CI determinism matrix runs this suite under
//! `LDS_THREADS ∈ {1, 4, 8}`; the widths exercised here are explicit.

use lds::gibbs::models::hardcore;
use lds::gibbs::{PartialConfig, Value};
use lds::graph::{generators, traversal, Graph, NodeId};
use lds::localnet::scheduler::{
    self, run_kernel_chromatic_reference, run_kernel_chromatic_with_stats,
};
use lds::localnet::slocal::{run_kernel_sequential, ScanKernel, SlocalKernel};
use lds::localnet::{Instance, Network};
use lds::runtime::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(idx: usize, seed: u64) -> Graph {
    match idx % 5 {
        0 => generators::cycle(16),
        1 => generators::torus(4, 5),
        2 => generators::random_regular(16, 3, &mut StdRng::seed_from_u64(seed)),
        3 => generators::erdos_renyi(18, 0.15, &mut StdRng::seed_from_u64(seed ^ 0xe5)),
        _ => generators::balanced_tree(2, 3),
    }
}

fn network(g: &Graph, seed: u64) -> Network {
    Network::new(Instance::unconditioned(hardcore::model(g, 1.0)), seed)
}

/// A kernel with explicit locality `r`: node `v`'s value mixes the pins
/// within distance `r` with `v`'s private randomness — any read the
/// halo projection fails to carry changes the output.
#[derive(Clone)]
struct BallHashKernel {
    r: usize,
}

impl SlocalKernel for BallHashKernel {
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool) {
        let g = net.instance().model().graph();
        let dist = traversal::bfs_distances(g, v);
        let mut acc: u64 = net.node_rng(v, 11).gen::<u64>();
        for u in g.nodes() {
            let d = dist[u.index()];
            if d == traversal::UNREACHABLE || d as usize > self.r {
                continue;
            }
            if let Some(val) = sigma.get(u) {
                acc = acc
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((u.index() as u64) << 17 | (val.index() as u64) << 3 | d as u64);
            }
        }
        (
            Value::from_index((acc % 2) as usize),
            acc.is_multiple_of(97),
        )
    }
}

/// The same per-node step as a hand-rolled [`ScanKernel`] that keeps
/// the **default** full-copy `project` — exercising the blanket
/// correctness of the sharded runner for non-projecting kernels, and
/// giving the telemetry assertions a full-clone specimen.
#[derive(Clone)]
struct FullCopyKernel {
    inner: BallHashKernel,
}

impl ScanKernel for FullCopyKernel {
    type State = PartialConfig;
    type Effect = (Value, bool);
    type Run = lds::localnet::slocal::SlocalRun<Value>;

    fn init(&self, net: &Network) -> PartialConfig {
        net.instance().pinning().clone()
    }

    fn process(
        &self,
        net: &Network,
        state: &mut PartialConfig,
        v: NodeId,
    ) -> Option<(Value, bool)> {
        if state.is_pinned(v) {
            return None;
        }
        let (val, fail) = SlocalKernel::process(&self.inner, net, state, v);
        state.pin(v, val);
        Some((val, fail))
    }

    fn apply(&self, state: &mut PartialConfig, v: NodeId, &(val, _): &(Value, bool)) {
        state.pin(v, val);
    }

    fn finish(
        &self,
        net: &Network,
        state: PartialConfig,
        effects: Vec<(NodeId, (Value, bool))>,
    ) -> Self::Run {
        let n = net.node_count();
        let mut failures = vec![false; n];
        for (v, (_, fail)) in effects {
            failures[v.index()] = fail;
        }
        let outputs: Vec<Value> = (0..n)
            .map(|i| state.get(NodeId::from_index(i)).expect("scan is complete"))
            .collect();
        lds::localnet::slocal::SlocalRun { outputs, failures }
    }
    // no `project` override: the default full copy must stay correct
}

proptest! {
    /// Halo-projected execution == frozen full-snapshot reference ==
    /// sequential scan, for kernel localities r ∈ {1, 2, 3} on random
    /// graphs, at widths 1/2/8 — and the shipped bytes stay within the
    /// halo bound.
    #[test]
    fn halo_runner_equals_full_snapshot_reference(
        gidx in 0usize..5,
        seed in 0u64..200,
        r in 1usize..4,
    ) {
        let g = workload(gidx, seed);
        let net = network(&g, seed);
        let schedule = scheduler::chromatic_schedule(&net, r, 0);
        let kernel = BallHashKernel { r };
        let seq = run_kernel_sequential(&net, &kernel, &schedule.order);
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let reference = run_kernel_chromatic_reference(&net, &kernel, &schedule, &pool);
            let (halo, stats) = run_kernel_chromatic_with_stats(&net, &kernel, &schedule, &pool);
            prop_assert_eq!(
                &halo.outputs, &reference.outputs,
                "outputs vs reference: graph {} seed {} r {} threads {}", gidx, seed, r, threads
            );
            prop_assert_eq!(&halo.failures, &reference.failures);
            prop_assert_eq!(&halo.outputs, &seq.outputs, "outputs vs sequential");
            prop_assert_eq!(&halo.failures, &seq.failures);
            prop_assert!(
                stats.within_halo_bound(),
                "projected kernel exceeded the halo bound: {:?}", stats
            );
            if threads == 1 {
                prop_assert_eq!(stats.projected_clusters, 0, "width 1 must ship nothing");
            }
        }
    }

    /// A kernel left on the default full-copy `project` still runs
    /// bit-identically through the sharded runner — and its telemetry
    /// exceeds the halo bound whenever a multi-cluster color shipped
    /// state, which is exactly what the CI gate rejects.
    #[test]
    fn default_projection_is_correct_but_flagged(
        gidx in 0usize..5,
        seed in 0u64..100,
        r in 1usize..3,
    ) {
        let g = workload(gidx, seed);
        let net = network(&g, seed);
        let schedule = scheduler::chromatic_schedule(&net, r, 0);
        let full = FullCopyKernel { inner: BallHashKernel { r } };
        let seq = lds::localnet::slocal::run_scan_sequential(&net, &full, &schedule.order);
        let pool = ThreadPool::new(8);
        let (halo, stats) = run_kernel_chromatic_with_stats(&net, &full, &schedule, &pool);
        prop_assert_eq!(&halo.outputs, &seq.outputs);
        prop_assert_eq!(&halo.failures, &seq.failures);
        if stats.projected_clusters > 0 {
            let n = net.node_count();
            // every halo is a strict subset of the graph on these
            // workloads only when the cluster radius is small; the
            // bound comparison itself is what the CI gate uses
            prop_assert!(stats.halo_sum <= stats.projected_clusters * n);
            if stats.halo_sum < stats.projected_clusters * n {
                prop_assert!(
                    !stats.within_halo_bound(),
                    "full-copy kernel slipped under the halo bound: {:?}", stats
                );
            }
        }
    }
}

/// The schedule's halos really are `B_r(cluster)`, sorted, and cover
/// their clusters.
#[test]
fn halos_cover_clusters_at_schedule_radius() {
    for seed in 0..6u64 {
        let g = generators::torus(4, 5);
        let net = network(&g, seed);
        let s = scheduler::chromatic_schedule(&net, 2, 0);
        let halos = s.halos(net.instance().model().graph());
        assert_eq!(halos.len(), s.color_clusters.len());
        for (clusters, halos) in s.color_clusters.iter().zip(halos) {
            assert_eq!(clusters.len(), halos.len());
            for (cluster, halo) in clusters.iter().zip(halos) {
                let expect = traversal::multi_source_ball(
                    net.instance().model().graph(),
                    cluster,
                    s.locality,
                );
                assert_eq!(halo, &expect);
                for v in cluster {
                    assert!(halo.contains(v), "halo misses its own cluster member {v}");
                }
            }
        }
    }
}

/// The serving-path sampler (Theorem 3.2, blanket pinning projection)
/// agrees across widths on a workload whose colors genuinely fan out,
/// and its reported sharding stays within the halo bound.
#[test]
fn sampler_fans_out_within_halo_bound() {
    use lds::core::sampler;
    use lds::gibbs::models::two_spin::TwoSpinParams;
    use lds::oracle::{DecayRate, TwoSpinSawOracle};
    let g = generators::cycle(128);
    let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(0.5), DecayRate::new(0.27, 2.0));
    let mut fanned_out = false;
    for seed in 0..4u64 {
        let net = Network::new(Instance::unconditioned(hardcore::model(&g, 0.5)), seed);
        let (seq_run, _, _) =
            sampler::sample_local_with(&net, &oracle, 0.3, 0, &ThreadPool::sequential());
        for threads in [2usize, 8] {
            let (run, _, timings) =
                sampler::sample_local_with(&net, &oracle, 0.3, 0, &ThreadPool::new(threads));
            assert_eq!(
                run.outputs, seq_run.outputs,
                "seed {seed} threads {threads}"
            );
            assert_eq!(run.failures, seq_run.failures);
            assert!(
                timings.sharding.within_halo_bound(),
                "seed {seed}: {:?}",
                timings.sharding
            );
            fanned_out |= timings.sharding.projected_clusters > 0;
        }
    }
    assert!(fanned_out, "no seed produced a multi-cluster color");
}
