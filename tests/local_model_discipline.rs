//! Integration: the LOCAL-model discipline holds across the stack —
//! views really contain everything an algorithm uses, distant
//! disagreements are invisible, and the SLOCAL→LOCAL schedule keeps
//! same-color clusters out of each other's reach.

use lds::core::LocalInference;
use lds::gibbs::models::hardcore;
use lds::gibbs::models::two_spin::TwoSpinParams;
use lds::gibbs::{metrics, PartialConfig, Value};
use lds::graph::{generators, traversal, NodeId};
use lds::localnet::decomposition::UNCLUSTERED;
use lds::localnet::local::run_local;
use lds::localnet::{scheduler, Instance, Network};
use lds::oracle::{DecayRate, EnumerationOracle, InferenceOracle, TwoSpinSawOracle};

#[test]
fn view_computation_equals_global_computation() {
    // running an oracle inside a view must equal running it globally
    let g = generators::torus(4, 4);
    let model = hardcore::model(&g, 1.1);
    let net = Network::new(Instance::unconditioned(model.clone()), 5);
    let oracle = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
    let algo = LocalInference::new(&oracle, 0.3);
    let run = run_local(&net, &algo);
    let t = oracle.radius(16, 0.3);
    let tau = PartialConfig::empty(16);
    for v in g.nodes() {
        let global = oracle.marginal(&model, &tau, v, t);
        assert!(
            metrics::tv_distance(&global, &run.outputs[v.index()]) < 1e-12,
            "node {v} diverged between view and global execution"
        );
    }
}

#[test]
fn far_disagreements_are_invisible_to_all_oracles() {
    let g = generators::cycle(20);
    let model = hardcore::model(&g, 1.0);
    let mut sigma = PartialConfig::empty(20);
    sigma.pin(NodeId(10), Value(0));
    let mut tau = PartialConfig::empty(20);
    tau.pin(NodeId(10), Value(1));
    let saw = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
    let enumo = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
    // disagreement at distance 10; probe with radius < 10 (enumeration
    // peeks one locality step further, so stay at 8)
    for t in [2usize, 5, 8] {
        let a = saw.marginal(&model, &sigma, NodeId(0), t);
        let b = saw.marginal(&model, &tau, NodeId(0), t);
        assert_eq!(a, b, "SAW oracle saw a distance-10 disagreement at t={t}");
        let c = enumo.marginal(&model, &sigma, NodeId(0), t);
        let e = enumo.marginal(&model, &tau, NodeId(0), t);
        assert_eq!(c, e, "enumeration oracle saw the disagreement at t={t}");
    }
}

#[test]
fn schedule_separation_matches_declared_locality() {
    let g = generators::torus(5, 5);
    let model = hardcore::model(&g, 1.0);
    let net = Network::new(Instance::unconditioned(model), 13);
    let r = 2usize;
    let schedule = scheduler::chromatic_schedule(&net, r, 0);
    let d = &schedule.decomposition;
    for u in g.nodes() {
        if d.color[u.index()] == UNCLUSTERED {
            continue;
        }
        let dist = traversal::bfs_distances(&g, u);
        for v in g.nodes() {
            if v <= u || d.color[v.index()] == UNCLUSTERED {
                continue;
            }
            if d.color[u.index()] == d.color[v.index()]
                && d.cluster[u.index()] != d.cluster[v.index()]
            {
                assert!(
                    dist[v.index()] as usize > r + 1,
                    "{u},{v}: same color at distance {}",
                    dist[v.index()]
                );
            }
        }
    }
}

#[test]
fn randomness_is_private_and_reproducible() {
    // same seed ⟹ identical run; per-node streams are independent
    let g = generators::cycle(10);
    let model = hardcore::model(&g, 1.0);
    let i = Instance::unconditioned(model);
    let n1 = Network::new(i.clone(), 7);
    let n2 = Network::new(i.clone(), 7);
    for v in g.nodes() {
        assert_eq!(n1.node_seed(v, 0), n2.node_seed(v, 0));
        assert_ne!(n1.node_seed(v, 1), n1.node_seed(v, 2));
    }
    // view exposes exactly the members' seeds
    let view = n1.view(NodeId(3), 2);
    for l in 0..view.subgraph().len() {
        let local = NodeId::from_index(l);
        let global = view.subgraph().to_parent(local);
        assert_eq!(view.member_seed(local), n1.node_seed(global, 0));
        assert!(traversal::bfs_distances(&g, NodeId(3))[global.index()] <= 2);
    }
}

#[test]
fn failure_bits_are_locally_certified_and_rare() {
    // over many seeds, Lemma 3.1's decomposition failures never appear at
    // the default parameters on these sizes
    let g = generators::torus(4, 4);
    let model = hardcore::model(&g, 1.0);
    let mut failures = 0usize;
    for seed in 0..50u64 {
        let net = Network::new(Instance::unconditioned(model.clone()), seed);
        let schedule = scheduler::chromatic_schedule(&net, 3, 1);
        failures += schedule.failed.iter().filter(|&&f| f).count();
    }
    assert_eq!(failures, 0, "unexpected decomposition failures");
}
