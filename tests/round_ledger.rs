//! Round-complexity observables against the paper's bounds.
//!
//! Every sampling execution records into the process-wide
//! [`lds::obs::RoundLedger`]: measured chromatic rounds against the
//! engine's `bound_rounds` (the paper's round formula evaluated with
//! the engine's calibration constant, which absorbs the Linial–Saks
//! tail), and — on the Glauber backend — measured sweeps against
//! the resolved mixing plan. A measured value past its bound is a
//! **hard error** here, not a logged curiosity: the bound is the
//! theorem being reproduced.
//!
//! These run in the CI `LDS_THREADS` determinism matrix: engines are
//! built without an explicit width, so the bound holds at widths 1, 4,
//! and 8. (The tests in this binary share one global ledger; each only
//! ever appends passing observations, so they compose under the
//! parallel test runner.)

use lds::core::regime;
use lds::engine::{Backend, Engine, ModelSpec, SweepBudget, Task};
use lds::graph::{generators, Hypergraph, NodeId};
use lds::obs::ObservableKind;

fn triangle_hypergraph() -> Hypergraph {
    Hypergraph::new(
        6,
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(2), NodeId(3), NodeId(4)],
            vec![NodeId(4), NodeId(5), NodeId(0)],
        ],
    )
}

/// All Corollary 5.3 applications (Ising and the general two-spin
/// system both instantiate the fourth bullet).
fn specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Hardcore { lambda: 1.0 },
        ModelSpec::Matching { lambda: 1.5 },
        ModelSpec::Ising {
            beta: -0.2,
            field: 0.1,
        },
        ModelSpec::TwoSpin {
            beta: 0.8,
            gamma: 0.9,
            lambda: 1.0,
            rate: 0.5,
        },
        ModelSpec::Coloring { q: 4 },
        ModelSpec::HypergraphMatching { lambda: 0.1 },
    ]
}

fn engine_for(spec: &ModelSpec) -> Engine {
    let builder = Engine::builder()
        .model(spec.clone())
        .epsilon(0.01)
        .delta(0.05);
    match spec {
        ModelSpec::HypergraphMatching { .. } => builder.hypergraph(triangle_hypergraph()),
        _ => builder.graph(generators::cycle(8)),
    }
    .build()
    .unwrap_or_else(|e| panic!("{}: {e:?}", spec.name()))
}

/// Measured chromatic rounds stay within the paper's bound on every
/// model, and the ledger records each execution as a clean observation.
#[test]
fn measured_rounds_stay_within_the_paper_bound_on_every_model() {
    for spec in specs() {
        let engine = engine_for(&spec);
        for task in [Task::SampleExact, Task::SampleApprox] {
            for seed in [0u64, 7, 1_000_003] {
                let report = engine.run_with_seed(task, seed).unwrap();
                assert!(
                    (report.rounds as f64) <= report.bound_rounds,
                    "{} {:?} seed {}: measured {} rounds > bound {}",
                    spec.name(),
                    task,
                    seed,
                    report.rounds,
                    report.bound_rounds
                );
            }
        }
    }
    // the same executions were recorded as ledger observables, and the
    // hard-error form agrees with the per-report asserts above
    let ledger = lds::obs::ledger();
    let summary = ledger.summary();
    assert!(summary.observations >= 12, "ledger recorded {summary:?}");
    assert_eq!(summary.violations, 0, "bound violations: {summary:?}");
    assert!(
        summary.max_ratio <= 1.0,
        "some observable exceeded its bound: {summary:?}"
    );
    ledger.check().expect("ledger bound check must be clean");
    assert!(ledger
        .observations()
        .iter()
        .any(|o| o.kind == ObservableKind::ChromaticRounds));
}

/// A Glauber-served run performs exactly the sweeps its resolved plan
/// prescribes — the plan from `regime::glauber_plan` on the engine's
/// fitted rate, the carrier size, and δ — and the ledger records the
/// equality as a sweep observable.
#[test]
fn glauber_sweeps_match_the_resolved_plan() {
    let n = 10;
    let delta = 0.05;
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(n))
        .epsilon(0.01)
        .delta(delta)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Auto,
        })
        .build()
        .expect("in regime");
    let report = engine.run_with_seed(Task::SampleApprox, 3).unwrap();
    let plan = regime::glauber_plan(report.rate, n, delta).expect("rate below ceiling");
    assert_eq!(
        report.glauber_sweeps(),
        Some(plan.sweeps as u32),
        "served sweep budget must be the resolved plan"
    );
    assert_eq!(
        report.glauber.as_ref().expect("glauber stats").sweeps,
        plan.sweeps,
        "executed sweeps must equal the plan"
    );
    let ledger = lds::obs::ledger();
    assert!(
        ledger
            .observations()
            .iter()
            .any(|o| o.kind == ObservableKind::GlauberSweeps),
        "no sweep observable recorded"
    );
    ledger.check().expect("sweep observable must be clean");
}
