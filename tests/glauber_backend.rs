//! Backend-selection API behavior: the `Backend` enum through the
//! builder, dispatch, reporting, and error surfaces.
//!
//! The statistical correctness of the Glauber sampler itself is locked
//! down in `tests/statistical.rs` (chi-square against enumeration) and
//! its width-independence in `tests/determinism.rs`; this suite covers
//! the *surface*: set-time validation, fingerprint separation, the
//! typed `BackendUnavailable` failure, `Auto` resolution, the report
//! fields, and the structured marginals reports with their deprecated
//! shims.

use lds::engine::{
    Backend, Engine, EngineError, MarginalsMethod, ModelSpec, ServedBackend, SweepBudget, Task,
};
use lds::graph::{generators, NodeId};

fn builder_on_cycle(n: usize) -> lds::engine::EngineBuilder {
    Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(n))
        .epsilon(0.01)
        .delta(0.05)
        .threads(2)
}

/// A two-spin instance whose declared decay rate passes the sampling
/// regime check (`rate < 1`) but sits above the Glauber certificate's
/// ceiling (`0.99`) — buildable, yet Glauber cannot certify mixing.
fn uncertifiable_spec() -> ModelSpec {
    ModelSpec::TwoSpin {
        beta: 0.8,
        gamma: 0.9,
        lambda: 1.0,
        rate: 0.995,
    }
}

#[test]
fn backend_setter_validates_at_set_time() {
    // Fixed(0) is rejected by the setter, not at build or run time
    let err = builder_on_cycle(8)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Fixed(0),
        })
        .build()
        .unwrap_err();
    match err {
        EngineError::InvalidParameter { name, message } => {
            assert_eq!(name, "backend");
            assert!(message.contains("at least one sweep"), "{message}");
        }
        other => panic!("expected InvalidParameter, got {other:?}"),
    }
}

#[test]
fn first_invalid_setter_wins_over_a_later_backend_error() {
    // epsilon fails first; the backend error must not displace it
    let err = builder_on_cycle(8)
        .epsilon(-1.0)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Fixed(0),
        })
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::InvalidParameter {
                name: "epsilon",
                ..
            }
        ),
        "first invalid setter must win: {err:?}"
    );
}

#[test]
fn forced_glauber_out_of_regime_fails_typed_only_when_requested() {
    // the build succeeds — every other task is still servable
    let engine = Engine::builder()
        .model(uncertifiable_spec())
        .graph(generators::cycle(8))
        .epsilon(0.01)
        .threads(2)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Auto,
        })
        .build()
        .expect("build must succeed; only SampleApprox is unservable");

    // the unservable task fails typed, with the failed certificate
    let err = engine.run(Task::SampleApprox).unwrap_err();
    match &err {
        EngineError::BackendUnavailable { backend, cause } => {
            assert_eq!(*backend, "glauber");
            assert!(cause.computed >= cause.critical, "{cause:?}");
        }
        other => panic!("expected BackendUnavailable, got {other:?}"),
    }
    assert!(err.to_string().contains("`glauber` unavailable"), "{err}");

    // no silent fallback, and no collateral damage: exact sampling,
    // inference, and counting still serve through the oracle paths
    assert!(engine.run(Task::SampleExact).is_ok());
    assert!(engine.run(Task::Count).is_ok());
}

#[test]
fn auto_resolves_to_glauber_in_regime_and_chain_otherwise() {
    // hardcore on a cycle: rate well below the ceiling → Glauber serves
    let auto_in = builder_on_cycle(8).backend(Backend::Auto).build().unwrap();
    assert_eq!(auto_in.backend(), Backend::Auto);
    let report = auto_in.run(Task::SampleApprox).unwrap();
    assert!(
        matches!(report.backend, ServedBackend::Glauber { .. }),
        "auto should pick Glauber here: {:?}",
        report.backend
    );
    assert!(report.glauber.is_some(), "mixing diagnostics missing");

    // uncertifiable rate → Auto quietly serves the chain-rule sampler
    let auto_out = Engine::builder()
        .model(uncertifiable_spec())
        .graph(generators::cycle(8))
        .epsilon(0.01)
        .threads(2)
        .backend(Backend::Auto)
        .build()
        .unwrap();
    let report = auto_out
        .run(Task::SampleApprox)
        .expect("Auto never raises BackendUnavailable");
    assert_eq!(report.backend, ServedBackend::Exact);
    assert!(report.glauber.is_none());
}

#[test]
fn glauber_reports_carry_the_resolved_budget_and_diagnostics() {
    let engine = builder_on_cycle(8)
        .backend(Backend::Glauber {
            sweeps: SweepBudget::Fixed(17),
        })
        .build()
        .unwrap();
    assert_eq!(
        engine.backend(),
        Backend::Glauber {
            sweeps: SweepBudget::Fixed(17)
        }
    );
    let report = engine.run(Task::SampleApprox).unwrap();
    assert_eq!(report.glauber_sweeps(), Some(17));
    let stats = report.glauber.as_ref().expect("diagnostics");
    assert_eq!(stats.sweeps, 17);
    assert!(stats.site_updates > 0, "sweeps must touch sites");
    assert!(report.stats.is_none(), "no JVV stats on the Glauber path");

    // the exact paths are untouched by the backend choice
    let exact = engine.run(Task::SampleExact).unwrap();
    assert_eq!(exact.backend, ServedBackend::Exact);
    assert!(exact.glauber.is_none());
}

#[test]
fn default_backend_is_exact_and_reports_say_so() {
    let engine = builder_on_cycle(8).build().unwrap();
    assert_eq!(engine.backend(), Backend::Exact);
    let report = engine.run(Task::SampleApprox).unwrap();
    assert_eq!(report.backend, ServedBackend::Exact);
    assert!(report.glauber.is_none());
    assert_eq!(report.glauber_sweeps(), None);
}

#[test]
fn fingerprint_separates_backend_requests() {
    let fingerprints: Vec<u64> = [
        Backend::Exact,
        Backend::Auto,
        Backend::Glauber {
            sweeps: SweepBudget::Auto,
        },
        Backend::Glauber {
            sweeps: SweepBudget::Fixed(17),
        },
    ]
    .into_iter()
    .map(|b| {
        builder_on_cycle(8)
            .backend(b)
            .build()
            .unwrap()
            .fingerprint()
    })
    .collect();
    for (i, a) in fingerprints.iter().enumerate() {
        for b in &fingerprints[i + 1..] {
            assert_ne!(a, b, "backends must not collide in the fingerprint");
        }
    }
}

#[test]
fn structured_marginals_reports_mirror_run_reports() {
    let engine = builder_on_cycle(6).build().unwrap();
    let n = engine.instance().model().node_count();

    let exact = engine.marginals();
    assert!(matches!(
        exact.method,
        MarginalsMethod::Exact { epsilon } if epsilon == 0.01
    ));
    assert_eq!(exact.len(), n);
    assert!(!exact.is_empty());
    assert!(exact.rounds > 0, "oracle radius must be positive");
    assert!(!exact.phases.is_empty());
    let mu = exact.marginal(NodeId(0)).expect("node 0 in range");
    assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    assert!(exact.marginal(NodeId(n as u32)).is_none());

    let sampled = engine.marginals_sampled(150, 3).unwrap();
    match sampled.method {
        MarginalsMethod::Sampled {
            repetitions,
            failure_rate,
            delta,
        } => {
            assert_eq!(repetitions, 150);
            assert!((0.0..=1.0).contains(&failure_rate));
            assert_eq!(delta, 0.05);
        }
        other => panic!("expected Sampled, got {other:?}"),
    }
    assert_eq!(sampled.len(), n);
    assert!(
        engine.marginals_sampled(0, 3).is_err(),
        "zero repetitions is invalid"
    );
}

#[test]
#[allow(deprecated)]
fn deprecated_marginals_shims_agree_with_the_reports() {
    let engine = builder_on_cycle(6).build().unwrap();
    let bits = |table: &[Vec<f64>]| -> Vec<Vec<u64>> {
        table
            .iter()
            .map(|mu| mu.iter().map(|x| x.to_bits()).collect())
            .collect()
    };
    assert_eq!(
        bits(&engine.marginals_exact_all()),
        bits(&engine.marginals().marginals)
    );
    let old = engine.marginals_by_sampling(80, 5).unwrap();
    let new = engine.marginals_sampled(80, 5).unwrap();
    assert_eq!(bits(&old.marginals), bits(&new.marginals));
    match new.method {
        MarginalsMethod::Sampled {
            repetitions,
            failure_rate,
            ..
        } => {
            assert_eq!(repetitions, old.repetitions);
            assert_eq!(failure_rate.to_bits(), old.failure_rate.to_bits());
        }
        other => panic!("expected Sampled, got {other:?}"),
    }
}
