//! Counting equivalence: the two-pass parallel chain-rule counter is
//! **bit-identical** to the frozen sequential reference.
//!
//! `lds_core::counting::log_partition_function` was refactored from a
//! single sequential walk into a cheap coarse-precision anchor pass
//! followed by a parallel marginal pass over the frozen pinning chain
//! (fanned through `lds_runtime::ThreadPool`). The straight-line form
//! of the new algorithm is kept frozen as
//! `log_partition_function_reference`; this suite checks the pooled
//! execution against it:
//!
//! * a proptest over random graphs (pinned and unpinned, coarse and
//!   sharp `ε`) through the real boosted SAW oracle, at pool widths
//!   1/4/8 — `ln Ẑ`, the error bound, and the anchor configuration must
//!   match bit for bit;
//! * the same comparison for every oracle-backed model family: hardcore
//!   (boosted SAW), proper colorings (boosted enumeration), and
//!   matchings (line-graph duality);
//! * typed [`CountError`]s must be width-independent too, and the
//!   engine must split `Task::Count` into `anchor`/`marginals` phases
//!   without changing its answer across widths.
//!
//! The CI determinism matrix runs this suite under
//! `LDS_THREADS ∈ {1, 4, 8}`; the widths exercised here are explicit,
//! so every leg checks the full 1/4/8 sweep.

use lds::core::counting::{
    log_partition_function_annealed, log_partition_function_detailed,
    log_partition_function_reference, AnnealedConfig, CountError,
};
use lds::gibbs::models::two_spin::TwoSpinParams;
use lds::gibbs::models::{coloring, hardcore, matching::MatchingInstance};
use lds::gibbs::{GibbsModel, PartialConfig, Value};
use lds::graph::{generators, Graph, NodeId};
use lds::oracle::{
    BoostedOracle, DecayRate, EnumerationOracle, MultiplicativeInference, TwoSpinSawOracle,
};
use lds::runtime::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(idx: usize, seed: u64) -> Graph {
    match idx % 5 {
        0 => generators::cycle(14),
        1 => generators::torus(4, 4),
        2 => generators::random_regular(14, 3, &mut StdRng::seed_from_u64(seed)),
        3 => generators::erdos_renyi(16, 0.15, &mut StdRng::seed_from_u64(seed ^ 0xe5)),
        _ => generators::balanced_tree(2, 3),
    }
}

fn saw_oracle(lambda: f64) -> BoostedOracle<TwoSpinSawOracle> {
    BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(lambda),
        DecayRate::new(0.5, 2.0),
    ))
}

/// Runs the pooled estimator at widths 1/4/8 and asserts each outcome
/// identical to the frozen reference: bit-equal estimate and anchor on
/// success, the same typed error on failure.
#[track_caller]
fn assert_matches_reference<O>(
    model: &GibbsModel,
    tau: &PartialConfig,
    oracle: &O,
    eps: f64,
    context: &str,
) where
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
{
    let reference = log_partition_function_reference(model, tau, oracle, eps);
    for threads in [1usize, 4, 8] {
        let pool = ThreadPool::new(threads);
        let run =
            log_partition_function_detailed(model, tau, oracle, eps, &pool).map(|r| r.estimate);
        match (&run, &reference) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.log_z.to_bits(),
                    b.log_z.to_bits(),
                    "{context} threads {threads}: log_z {} vs {}",
                    a.log_z,
                    b.log_z
                );
                assert_eq!(
                    a.log_error_bound.to_bits(),
                    b.log_error_bound.to_bits(),
                    "{context} threads {threads}: error bound"
                );
                assert_eq!(
                    a.anchor.values(),
                    b.anchor.values(),
                    "{context} threads {threads}: anchor"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "{context} threads {threads}: typed error");
            }
            _ => panic!(
                "{context} threads {threads}: pooled and reference disagree on success: \
                 {run:?} vs {reference:?}"
            ),
        }
    }
}

proptest! {
    /// Pooled two-pass counter == frozen reference on random hardcore
    /// instances, pinned and unpinned, coarse and sharp ε, widths 1/4/8.
    #[test]
    fn parallel_counter_equals_reference_on_random_graphs(
        gidx in 0usize..5,
        seed in 0u64..100,
        pinned in any::<bool>(),
        sharp in any::<bool>(),
    ) {
        let g = workload(gidx, seed);
        let model = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(g.node_count());
        if pinned {
            // pinning vacant is feasible on every hardcore instance
            tau.pin(NodeId(seed as u32 % g.node_count() as u32), Value(0));
        }
        let eps = if sharp { 0.05 } else { 0.3 };
        let oracle = saw_oracle(1.0);
        assert_matches_reference(
            &model,
            &tau,
            &oracle,
            eps,
            &format!("hardcore graph {gidx} seed {seed} pinned {pinned} eps {eps}"),
        );
    }
}

/// The equivalence for proper colorings through the boosted enumeration
/// oracle — the oracle the engine serves coloring requests with.
#[test]
fn parallel_counter_equals_reference_on_colorings() {
    let oracle = BoostedOracle::new(EnumerationOracle::new(DecayRate::new(0.4, 2.0)));
    for g in [generators::cycle(8), generators::path(7)] {
        let model = coloring::model(&g, 3);
        let n = g.node_count();
        assert_matches_reference(
            &model,
            &PartialConfig::empty(n),
            &oracle,
            0.1,
            "coloring unpinned",
        );
        let mut tau = PartialConfig::empty(n);
        tau.pin(NodeId(2), Value(1));
        assert_matches_reference(&model, &tau, &oracle, 0.1, "coloring pinned");
    }
}

/// The equivalence for matchings via the line-graph duality (the third
/// oracle-backed model family of the counting wrappers).
#[test]
fn parallel_counter_equals_reference_on_matchings() {
    let oracle = saw_oracle(1.0);
    for g in [generators::cycle(8), generators::grid(2, 4)] {
        let inst = MatchingInstance::new(&g, 1.0);
        let n = inst.model().node_count();
        assert_matches_reference(
            inst.model(),
            &PartialConfig::empty(n),
            &oracle,
            0.2,
            "matching unpinned",
        );
        let mut tau = PartialConfig::empty(n);
        tau.pin(NodeId(0), Value(0));
        assert_matches_reference(inst.model(), &tau, &oracle, 0.2, "matching pinned");
    }
}

/// A misbehaving oracle that steers the anchor into a zero-weight
/// configuration (claims every node occupied with probability 1).
#[derive(Clone)]
struct AlwaysOccupied;

impl MultiplicativeInference for AlwaysOccupied {
    fn name(&self) -> &str {
        "always-occupied"
    }
    fn radius_mul(&self, _: &GibbsModel, _: f64) -> usize {
        0
    }
    fn marginal_mul(&self, _: &GibbsModel, _: &PartialConfig, _: NodeId, _: f64) -> Vec<f64> {
        vec![0.0, 1.0]
    }
}

/// Typed failures must be width-independent: every pool width reports
/// the same [`CountError`] the reference does.
#[test]
fn typed_errors_are_width_independent() {
    let g = generators::path(4);
    let model = hardcore::model(&g, 1.0);
    let tau = PartialConfig::empty(4);
    assert_eq!(
        log_partition_function_reference(&model, &tau, &AlwaysOccupied, 0.1).unwrap_err(),
        CountError::InfeasibleAnchor
    );
    assert_matches_reference(&model, &tau, &AlwaysOccupied, 0.1, "infeasible anchor");
}

/// `Task::Count` through the engine: the report carries the
/// anchor/marginals phase split, keeps the rounds invariant, and the
/// answer is bit-identical across engine pool widths.
#[test]
fn engine_count_phases_and_cross_width_answer() {
    use lds::engine::{Engine, ModelSpec, Task};
    let build = |threads: usize| {
        Engine::builder()
            .model(ModelSpec::Hardcore { lambda: 1.0 })
            .graph(generators::cycle(12))
            .epsilon(0.05)
            .threads(threads)
            .build()
            .expect("in regime")
    };
    let reference = build(1).run_with_seed(Task::Count, 3).unwrap();
    assert_eq!(
        reference.phases.iter().map(|p| p.name).collect::<Vec<_>>(),
        ["anchor", "marginals"]
    );
    assert_eq!(
        reference.phases.iter().map(|p| p.rounds).sum::<usize>(),
        reference.rounds
    );
    for threads in [4usize, 8] {
        let report = build(threads).run_with_seed(Task::Count, 3).unwrap();
        assert_eq!(
            report.log_z().unwrap().to_bits(),
            reference.log_z().unwrap().to_bits(),
            "width {threads}"
        );
    }
}

/// The annealed sampling-backed estimator is bit-identical across pool
/// widths too (per-level seed derivation is width-independent).
#[test]
fn annealed_counter_is_cross_width_identical() {
    let g = generators::cycle(6);
    let model = hardcore::model(&g, 1.0);
    let tau = PartialConfig::empty(6);
    let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
    let cfg = AnnealedConfig {
        eps: 0.4,
        max_samples_per_level: 1024,
        ..AnnealedConfig::default()
    };
    let reference =
        log_partition_function_annealed(&model, &tau, &oracle, &cfg, 11, &ThreadPool::new(1))
            .unwrap();
    for threads in [4usize, 8] {
        let run = log_partition_function_annealed(
            &model,
            &tau,
            &oracle,
            &cfg,
            11,
            &ThreadPool::new(threads),
        )
        .unwrap();
        assert_eq!(
            run.estimate.log_z.to_bits(),
            reference.estimate.log_z.to_bits(),
            "width {threads}"
        );
        assert_eq!(
            run.estimate.log_error_bound.to_bits(),
            reference.estimate.log_error_bound.to_bits(),
            "width {threads}: achieved bound"
        );
        assert_eq!(run.samples, reference.samples, "width {threads}: samples");
        assert_eq!(
            run.certified_levels, reference.certified_levels,
            "width {threads}: certified levels"
        );
    }
}
