//! Chaos suite: deterministic fault injection across the serving
//! stack. The one invariant every scenario asserts, under any injected
//! schedule: a request returns either the bit-identical correct report
//! or a typed error — never a hang, never an escaped panic, never a
//! wrong answer.
//!
//! Schedules are seeded ([`lds::chaos::seed_from_env`] reads
//! `LDS_CHAOS_SEED`), so a CI failure replays locally with the same
//! seed. These run in the CI `LDS_THREADS` determinism matrix:
//! server-side engines are built without an explicit width, so every
//! assertion holds at widths 1, 4, and 8.

use std::sync::{Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use lds::chaos::{self, Fault, Plan, Trigger};
use lds::engine::{ModelSpec, RunReport, Task, Topology};
use lds::graph::generators;
use lds::net::{Client, ClientError, EngineSpec, NetServer, Op, Reply, RetryPolicy, WireError};

/// The chaos registry is process-global; scenarios that arm a plan
/// must not overlap. Every test takes this guard first.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn hardcore_spec(n: usize) -> EngineSpec {
    EngineSpec::new(
        ModelSpec::Hardcore { lambda: 1.0 },
        Topology::Graph(generators::cycle(n)),
    )
}

fn assert_same_answer(a: &RunReport, b: &RunReport, context: &str) {
    assert!(a.semantic_eq(b), "{context}:\n{a:?}\nvs\n{b:?}");
}

/// The tentpole proof that retrying `Op::Run` is exactly-once: the
/// connection is reset *after* the engine has executed but *before*
/// the reply frame is written. The retry reconnects, re-submits, and
/// must join the idempotency cache — one engine execution total, and
/// the report the retry receives is the one the first execution
/// produced.
#[test]
fn reset_between_execution_and_reply_retries_into_the_cached_report() {
    let _serial = serial();
    let seed = chaos::seed_from_env(0x5EED);
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(12)).unwrap();

    let guard = chaos::arm(Plan::new(seed).with("net.conn_reset", Trigger::Nth(0), Fault::Reset));
    let report = client
        .run_retrying(fp, Task::SampleExact, 7, &RetryPolicy::default())
        .expect("the retry must recover the reply the reset destroyed");
    assert!(
        chaos::firings("net.conn_reset") >= 1,
        "the schedule must actually have fired"
    );
    drop(guard);

    let stats = client.stats(fp, false).unwrap();
    assert_eq!(
        stats.engine_executions, 1,
        "retry after a post-execution reset must join the cache, not re-run"
    );
    assert!(stats.cache_hits >= 1, "the retry was a cache hit");
    server.shutdown();

    let direct = hardcore_spec(12).build().unwrap();
    let expect = direct.run_with_seed(Task::SampleExact, 7).unwrap();
    assert_same_answer(
        &report,
        &expect,
        "retried report diverged from ground truth",
    );
}

/// A zero budget is already expired when the request arrives:
/// admission rejects it typed, and the engine never runs.
#[test]
fn zero_budget_is_rejected_at_admission_and_never_executes() {
    let _serial = serial();
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(10)).unwrap();
    match client.run_with_deadline(fp, Task::SampleExact, 3, Duration::ZERO) {
        Err(ClientError::Server(WireError::Expired)) => {}
        other => panic!("expected Expired at admission, got {other:?}"),
    }
    let stats = client.stats(fp, false).unwrap();
    assert_eq!(
        stats.engine_executions, 0,
        "an expired request must not run"
    );
    // the connection and tenant both survive the rejection
    client.run(fp, Task::SampleExact, 3).unwrap();
    server.shutdown();
}

/// Budget sweep across the whole range — from "expires in the queue"
/// to "completes comfortably": every outcome is a full correct report
/// or a typed `Expired`, never a partial answer and never a hang. A
/// run that makes its deadline is bit-identical to an unbounded run
/// (the cancellation checks consume no randomness).
#[test]
fn deadline_outcomes_are_report_xor_typed_expired_never_partial() {
    let _serial = serial();
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(48)).unwrap();

    let budgets = [
        Duration::from_micros(1),
        Duration::from_micros(50),
        Duration::from_millis(1),
        Duration::from_millis(20),
        Duration::from_secs(30),
    ];
    let mut outcomes = Vec::new();
    for (i, budget) in budgets.iter().enumerate() {
        let seed = 100 + i as u64; // distinct seeds: no cross-budget cache hits
        match client.run_with_deadline(fp, Task::SampleExact, seed, *budget) {
            Ok(report) => outcomes.push((seed, report)),
            Err(ClientError::Server(WireError::Expired)) => {}
            other => panic!("budget {budget:?}: expected report or Expired, got {other:?}"),
        }
    }
    // the 30 s budget always completes — at least one report to check
    assert!(
        !outcomes.is_empty(),
        "the most generous budget must have completed"
    );
    server.shutdown();

    let direct = hardcore_spec(48).build().unwrap();
    for (seed, report) in &outcomes {
        let expect = direct.run_with_seed(Task::SampleExact, *seed).unwrap();
        assert_same_answer(
            report,
            &expect,
            &format!("deadline-bounded run for seed {seed} diverged from unbounded"),
        );
    }
}

/// A worker panicking mid-batch is contained: the in-flight request is
/// answered typed (`Cancelled`), the supervisor respawns the worker,
/// and the same connection keeps being served. The retry policy treats
/// `Cancelled` as transient, so `run_retrying` rides through the crash.
#[test]
fn worker_panic_is_contained_respawned_and_survivable() {
    let _serial = serial();
    let seed = chaos::seed_from_env(0x5EED);
    let restarts_before = lds::obs::global()
        .snapshot()
        .counter("serve_worker_restarts")
        .unwrap_or(0);
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(12)).unwrap();

    let guard =
        chaos::arm(Plan::new(seed).with("serve.worker_panic", Trigger::Nth(0), Fault::Panic));
    let report = client
        .run_retrying(fp, Task::SampleExact, 11, &RetryPolicy::default())
        .expect("retry must ride through the worker crash");
    assert!(chaos::firings("serve.worker_panic") >= 1);
    drop(guard);

    let restarts_after = lds::obs::global()
        .snapshot()
        .counter("serve_worker_restarts")
        .unwrap_or(0);
    assert!(
        restarts_after > restarts_before,
        "the supervisor must record the respawn"
    );
    // the respawned worker serves fresh work on the same connection
    client.run(fp, Task::SampleExact, 12).unwrap();
    server.shutdown();

    let direct = hardcore_spec(12).build().unwrap();
    let expect = direct.run_with_seed(Task::SampleExact, 11).unwrap();
    assert_same_answer(&report, &expect, "post-crash report diverged");
}

/// A torn reply frame (header promises more bytes than arrive, then
/// the connection severs) is a transport error, and the retry path
/// recovers the cached report without a second execution.
#[test]
fn torn_reply_frame_is_survivable_and_still_exactly_once() {
    let _serial = serial();
    let seed = chaos::seed_from_env(0x5EED);
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(12)).unwrap();

    let guard = chaos::arm(Plan::new(seed).with(
        "net.write_torn",
        Trigger::Nth(0),
        Fault::TornWrite { keep: 5 },
    ));
    let report = client
        .run_retrying(fp, Task::SampleExact, 21, &RetryPolicy::default())
        .expect("retry must recover from the torn frame");
    assert!(chaos::firings("net.write_torn") >= 1);
    drop(guard);

    let stats = client.stats(fp, false).unwrap();
    assert_eq!(stats.engine_executions, 1, "torn reply must not re-execute");
    server.shutdown();

    let direct = hardcore_spec(12).build().unwrap();
    let expect = direct.run_with_seed(Task::SampleExact, 21).unwrap();
    assert_same_answer(&report, &expect, "post-tear report diverged");
}

/// An injected engine fault at a chosen call index surfaces as a typed
/// wire error on exactly that call; every other call is unaffected.
/// Terminal for retry: the client must NOT burn attempts on it.
#[test]
fn injected_engine_fault_is_typed_terminal_and_precisely_placed() {
    let _serial = serial();
    let seed = chaos::seed_from_env(0x5EED);
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(10)).unwrap();

    let guard = chaos::arm(Plan::new(seed).with(
        "engine.oracle_error",
        Trigger::Nth(2),
        Fault::Error("chaos oracle".into()),
    ));
    let mut failed_at = Vec::new();
    for i in 0..5u64 {
        match client.run_retrying(fp, Task::SampleExact, 200 + i, &RetryPolicy::default()) {
            Ok(_) => {}
            Err(ClientError::Server(WireError::Engine(msg))) => {
                assert!(msg.contains("chaos oracle"), "fault message lost: {msg}");
                failed_at.push(i);
            }
            other => panic!("call {i}: expected report or typed Engine error, got {other:?}"),
        }
    }
    assert_eq!(
        failed_at,
        vec![2],
        "Nth(2) must fail exactly the third execution"
    );
    assert_eq!(chaos::firings("engine.oracle_error"), 1);
    drop(guard);
    server.shutdown();
}

/// Probabilistic schedules replay identically for the same seed — the
/// property that makes a chaos-found failure reproducible — and a
/// different seed draws a different schedule.
#[test]
fn probabilistic_schedules_replay_bit_identically_per_seed() {
    let _serial = serial();
    let pattern = |seed: u64| -> Vec<bool> {
        let _guard =
            chaos::arm(Plan::new(seed).with("chaos.test_site", Trigger::Prob(0.5), Fault::Reset));
        (0..64)
            .map(|_| chaos::point("chaos.test_site").is_some())
            .collect()
    };
    let a = pattern(42);
    let b = pattern(42);
    let c = pattern(43);
    assert_eq!(a, b, "same seed must replay the same firing pattern");
    assert_ne!(a, c, "different seeds must draw different schedules");
    assert!(
        a.iter().any(|&f| f) && !a.iter().all(|&f| f),
        "p=0.5 fires some, not all"
    );
}

/// Graceful shutdown with pipelined requests in flight: a stalled
/// reader holds the frames in the socket while the server shuts down —
/// every buffered request id must be answered with a typed
/// `ShuttingDown`, not silently dropped.
#[test]
fn shutdown_answers_pipelined_requests_with_typed_shutting_down() {
    let _serial = serial();
    let seed = chaos::seed_from_env(0x5EED);
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // stall the session reader so the pipelined frames stay buffered
    // in the socket until shutdown fires
    let guard = chaos::arm(Plan::new(seed).with(
        "net.read_stall",
        Trigger::Always,
        Fault::Delay(Duration::from_millis(250)),
    ));
    let mut client = Client::connect(addr).unwrap();
    let total = 8;
    let mut sent = Vec::new();
    for _ in 0..total {
        sent.push(client.send(Op::Ping).unwrap());
    }
    // frames are in the server's receive buffer; the reader is inside
    // its first stall. Shut down before it wakes.
    thread::sleep(Duration::from_millis(50));
    let shutdown = thread::spawn(move || server.shutdown());

    let mut answered = Vec::new();
    for _ in 0..total {
        let resp = client.recv().expect("every buffered request is answered");
        assert!(
            matches!(resp.reply, Reply::Error(WireError::ShuttingDown)),
            "id {} got {:?}",
            resp.id,
            resp.reply
        );
        answered.push(resp.id);
    }
    assert_eq!(answered, sent, "answered in order, none dropped");
    shutdown.join().unwrap();
    drop(guard);
}

/// The randomized soak: a probabilistic schedule over every layer's
/// sites at once. Whatever fires, each retry-wrapped request must end
/// in the bit-identical correct report or a typed error. CI runs this
/// with a pinned seed in the matrix plus a randomized-seed soak job.
#[test]
fn soak_any_schedule_yields_correct_report_or_typed_error() {
    let _serial = serial();
    let seed = chaos::seed_from_env(0xC0FFEE);
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(12)).unwrap();

    let guard = chaos::arm(
        Plan::new(seed)
            .with(
                "net.write_delay",
                Trigger::Prob(0.2),
                Fault::Delay(Duration::from_millis(1)),
            )
            .with("net.conn_reset", Trigger::Prob(0.25), Fault::Reset)
            .with(
                "net.write_torn",
                Trigger::Prob(0.1),
                Fault::TornWrite { keep: 3 },
            )
            .with(
                "serve.queue_stall",
                Trigger::Prob(0.2),
                Fault::Delay(Duration::from_millis(2)),
            )
            .with(
                "engine.oracle_error",
                Trigger::Prob(0.1),
                Fault::Error("soak".into()),
            ),
    );
    let policy = RetryPolicy {
        seed,
        ..RetryPolicy::default()
    };
    let mut completed = Vec::new();
    for seed in 0..16u64 {
        match client.run_retrying(fp, Task::SampleExact, seed, &policy) {
            Ok(report) => completed.push((seed, report)),
            // terminal server-side errors and exhausted transient
            // retries are both typed, acceptable endings
            Err(ClientError::Server(_)) => {}
            Err(ClientError::Io(_) | ClientError::Frame(_)) => {
                // the connection may be mid-reset; next iteration re-dials
                let _ = client.reconnect();
            }
            Err(other) => panic!("seed {seed}: untyped ending {other:?}"),
        }
    }
    drop(guard);
    server.shutdown();

    let direct = hardcore_spec(12).build().unwrap();
    for (seed, report) in &completed {
        let expect = direct.run_with_seed(Task::SampleExact, *seed).unwrap();
        assert_same_answer(
            report,
            &expect,
            &format!(
                "soak seed {seed} (chaos seed {}): wrong answer under faults",
                seed
            ),
        );
    }
}
