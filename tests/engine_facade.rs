//! Facade round trips: every `ModelSpec` variant is constructible and
//! serviceable through `Engine` alone — `SampleExact` outputs are
//! feasible, `Infer` marginals normalize, `run_batch` decorrelates
//! seeds and agrees bitwise with single-seed dispatch.

use lds::engine::{Engine, ModelSpec, Task, TaskOutput};
use lds::gibbs::models::hypergraph_matching::HypergraphMatchingInstance;
use lds::gibbs::models::matching::MatchingInstance;
use lds::gibbs::models::{coloring, hardcore, two_spin};
use lds::gibbs::{distribution, PartialConfig, Value};
use lds::graph::{generators, Hypergraph, NodeId};

fn triangle_hypergraph() -> Hypergraph {
    Hypergraph::new(
        6,
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(2), NodeId(3), NodeId(4)],
            vec![NodeId(4), NodeId(5), NodeId(0)],
        ],
    )
}

/// One engine per Corollary 5.3 model, all on small workloads.
fn all_engines() -> Vec<(&'static str, Engine)> {
    let g = generators::cycle(8);
    vec![
        (
            "hardcore",
            Engine::builder()
                .model(ModelSpec::Hardcore { lambda: 1.0 })
                .graph(g.clone())
                .epsilon(0.01)
                .build()
                .unwrap(),
        ),
        (
            "matching",
            Engine::builder()
                .model(ModelSpec::Matching { lambda: 1.5 })
                .graph(g.clone())
                .epsilon(0.01)
                .build()
                .unwrap(),
        ),
        (
            "ising",
            Engine::builder()
                .model(ModelSpec::Ising {
                    beta: -0.2,
                    field: 0.1,
                })
                .graph(g.clone())
                .epsilon(0.01)
                .build()
                .unwrap(),
        ),
        (
            "two-spin",
            Engine::builder()
                .model(ModelSpec::TwoSpin {
                    beta: 0.8,
                    gamma: 0.9,
                    lambda: 1.0,
                    rate: 0.5,
                })
                .graph(g.clone())
                .epsilon(0.01)
                .build()
                .unwrap(),
        ),
        (
            "coloring",
            Engine::builder()
                .model(ModelSpec::Coloring { q: 4 })
                .graph(g)
                .epsilon(0.05)
                .build()
                .unwrap(),
        ),
        (
            "hypergraph-matching",
            Engine::builder()
                .model(ModelSpec::HypergraphMatching { lambda: 0.3 })
                .hypergraph(triangle_hypergraph())
                .epsilon(0.01)
                .build()
                .unwrap(),
        ),
    ]
}

/// The model-specific feasibility check for a sampled report.
fn assert_feasible(name: &str, engine: &Engine, report: &lds::engine::RunReport) {
    let config = report.config().expect("sampling task");
    // the configuration always has positive weight under the carrier model
    assert!(
        engine.instance().model().weight(config) > 0.0,
        "{name}: infeasible configuration {config:?}"
    );
    match name {
        "hardcore" => {
            let g = engine.topology().graph().unwrap();
            assert!(hardcore::is_independent_set(g, config));
        }
        "matching" => {
            let g = engine.topology().graph().unwrap();
            let edges = report.matching_edges().expect("matching decode");
            assert!(MatchingInstance::new(g, 1.5).is_matching(edges));
        }
        "coloring" => {
            let g = engine.topology().graph().unwrap();
            assert!(coloring::is_proper(g, config));
        }
        "hypergraph-matching" => {
            let h = engine.topology().hypergraph().unwrap();
            let edges = report.hyperedges().expect("hypergraph decode");
            assert!(HypergraphMatchingInstance::new(h, 0.3).is_matching(edges));
        }
        _ => {} // spin systems: positive weight is the whole check
    }
}

#[test]
fn sample_exact_round_trip_per_model_spec() {
    for (name, engine) in all_engines() {
        for seed in 0..3u64 {
            let report = engine
                .run_with_seed(Task::SampleExact, seed)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_feasible(name, &engine, &report);
            assert!(report.rounds > 0, "{name}: no rounds simulated");
            assert!(report.bound_rounds > 0.0);
            assert!(report.rate < 1.0, "{name}: rate {}", report.rate);
            let acc = report.acceptance().expect("exact sampling has stats");
            assert!(
                (0.0..=1.0 + 1e-12).contains(&acc),
                "{name}: acceptance {acc}"
            );
        }
    }
}

#[test]
fn sample_approx_round_trip_per_model_spec() {
    for (name, engine) in all_engines() {
        let report = engine
            .run_with_seed(Task::SampleApprox, 11)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_feasible(name, &engine, &report);
        assert!(
            report.stats.is_none(),
            "{name}: approx sampling has no JVV stats"
        );
    }
}

#[test]
fn infer_marginals_normalize_per_model_spec() {
    for (name, engine) in all_engines() {
        let q = engine.instance().model().alphabet_size();
        for v in 0..engine.carrier_node_count().min(3) {
            let report = engine
                .run(Task::Infer {
                    vertex: NodeId::from_index(v),
                    value: Value(0),
                })
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mu = report.marginal().expect("inference task");
            assert_eq!(mu.len(), q, "{name}: marginal arity");
            let total: f64 = mu.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-6,
                "{name} v{v}: marginal sums to {total}"
            );
            assert!(mu.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
            match report.output {
                TaskOutput::Marginal { probability, .. } => {
                    assert!((probability - mu[0]).abs() < 1e-12)
                }
                ref other => panic!("{name}: expected marginal, got {other:?}"),
            }
        }
    }
}

#[test]
fn count_round_trip_matches_enumeration() {
    // exact cross-check on the hardcore cycle: Z = Lucas(8) = 47
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(8))
        .epsilon(1e-5)
        .build()
        .unwrap();
    let report = engine.run(Task::Count).unwrap();
    match report.output {
        TaskOutput::Count {
            log_z,
            log_error_bound,
        } => {
            assert!(
                (log_z - 47.0f64.ln()).abs() <= log_error_bound + 1e-6,
                "ln Ẑ = {log_z} vs ln 47 (bound {log_error_bound})"
            );
        }
        other => panic!("expected count, got {other:?}"),
    }
}

#[test]
fn run_batch_with_distinct_seeds_yields_distinct_outputs() {
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.5 })
        .graph(generators::cycle(16))
        .epsilon(0.01)
        .build()
        .unwrap();
    let seeds: Vec<u64> = (0..8).collect();
    let reports = engine.run_batch(Task::SampleExact, &seeds).unwrap();
    assert_eq!(reports.len(), seeds.len());
    for (report, &seed) in reports.iter().zip(&seeds) {
        assert_eq!(report.seed, seed, "report must echo its seed");
    }
    let distinct: std::collections::HashSet<Vec<u8>> = reports
        .iter()
        .map(|r| {
            r.config()
                .unwrap()
                .values()
                .iter()
                .map(|v| v.index() as u8)
                .collect()
        })
        .collect();
    assert!(
        distinct.len() > 1,
        "8 distinct seeds produced identical outputs — seeds are not wired through"
    );
    // same seed twice must reproduce exactly (determinism regression)
    let a = engine.run_with_seed(Task::SampleExact, 5).unwrap();
    let b = engine.run_with_seed(Task::SampleExact, 5).unwrap();
    assert_eq!(a.config().unwrap().values(), b.config().unwrap().values());
}

#[test]
fn run_batch_agrees_with_single_seed_dispatch() {
    // the batch hot path and one-at-a-time dispatch are the same
    // computation (the `lds_core::apps` shims this test used to compare
    // against are gone; the batch/single parity is the surviving
    // wiring-equivalence check) — outputs must match bit for bit
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(10))
        .epsilon(0.01)
        .build()
        .unwrap();
    let seeds = [9u64, 2, 77, 9]; // duplicate seed included
    let batch = engine.run_batch(Task::SampleExact, &seeds).unwrap();
    for (seed, batched) in seeds.iter().zip(&batch) {
        let single = engine.run_with_seed(Task::SampleExact, *seed).unwrap();
        assert_eq!(
            batched.config().unwrap().values(),
            single.config().unwrap().values(),
            "batch and single dispatch diverged on seed {seed}"
        );
        assert_eq!(batched.rounds, single.rounds);
        assert_eq!(batched.seed, *seed);
    }
    assert_eq!(
        batch[0].config().unwrap().values(),
        batch[3].config().unwrap().values(),
        "identical seeds must give identical outputs within one batch"
    );
}

#[test]
fn pinning_round_trips_through_sampling_and_counting() {
    let mut tau = PartialConfig::empty(8);
    tau.pin(NodeId(3), Value(1));
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(generators::cycle(8))
        .pinning(tau.clone())
        .epsilon(1e-5)
        .build()
        .unwrap();
    let sample = engine.run_with_seed(Task::SampleExact, 2).unwrap();
    assert_eq!(sample.config().unwrap().get(NodeId(3)), Value(1));
    assert_eq!(sample.config().unwrap().get(NodeId(2)), Value(0));

    // conditional count matches conditional enumeration
    let model = lds::gibbs::models::hardcore::model(&generators::cycle(8), 1.0);
    let exact = distribution::partition_function(&model, &tau);
    let count = engine.run(Task::Count).unwrap();
    match count.output {
        TaskOutput::Count {
            log_z,
            log_error_bound,
        } => assert!(
            (log_z - exact.ln()).abs() <= log_error_bound + 1e-6,
            "{log_z} vs {}",
            exact.ln()
        ),
        other => panic!("expected count, got {other:?}"),
    }
}

#[test]
fn two_spin_weight_positive_via_general_spec() {
    // antiferromagnetic Ising expressed through the general TwoSpin spec
    let params = lds::gibbs::models::ising::IsingParams::new(-0.2, 0.0).to_two_spin();
    let rate = lds::core::complexity::ising_decay_rate(-0.2, 2);
    let g = generators::cycle(8);
    let engine = Engine::builder()
        .model(ModelSpec::TwoSpin {
            beta: params.beta,
            gamma: params.gamma,
            lambda: params.lambda,
            rate,
        })
        .graph(g.clone())
        .epsilon(0.01)
        .build()
        .unwrap();
    let report = engine.run_with_seed(Task::SampleExact, 3).unwrap();
    let m = two_spin::model(&g, params);
    assert!(m.weight(report.config().unwrap()) > 0.0);
}
