//! Integration: every Corollary 5.3 application produces valid outputs,
//! enforces its regime, and reports coherent round counts.

use lds::core::{apps, complexity};
use lds::gibbs::models::hypergraph_matching::HypergraphMatchingInstance;
use lds::gibbs::models::matching::MatchingInstance;
use lds::gibbs::models::two_spin::TwoSpinParams;
use lds::gibbs::models::{coloring, hardcore};
use lds::graph::{generators, Hypergraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_five_applications_run() {
    // hardcore
    let g = generators::cycle(8);
    let hc = apps::sample_hardcore(&g, 1.0, 0.01, 1).unwrap();
    assert!(hardcore::is_independent_set(&g, &hc.output));
    assert!(hc.rounds > 0);

    // matchings
    let mut rng = StdRng::seed_from_u64(2);
    let rg = generators::random_regular(8, 3, &mut rng);
    let m = apps::sample_matching(&rg, 1.2, 0.01, 2);
    assert!(MatchingInstance::new(&rg, 1.2).is_matching(&m.edges));

    // colorings
    let col = apps::sample_coloring(&g, 4, 0.01, 3).unwrap();
    assert!(coloring::is_proper(&g, &col.output));

    // antiferro two-spin (Ising)
    let params = lds::gibbs::models::ising::IsingParams::new(-0.2, 0.0).to_two_spin();
    let ts = apps::sample_two_spin(&g, params, 0.5, 0.01, 4).unwrap();
    let tsm = lds::gibbs::models::two_spin::model(&g, params);
    assert!(tsm.weight(&ts.output) > 0.0);

    // hypergraph matchings
    let h = Hypergraph::new(
        6,
        vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(3), NodeId(4), NodeId(5)],
        ],
    );
    let hm = apps::sample_hypergraph_matching(&h, 0.2, 0.01, 5).unwrap();
    assert!(HypergraphMatchingInstance::new(&h, 0.2).is_matching(&hm.hyperedges));
}

#[test]
fn regimes_are_enforced() {
    // hardcore above threshold
    let t = generators::torus(4, 4);
    assert!(apps::sample_hardcore(&t, 3.0, 0.01, 0).is_err());
    // ferromagnetic two-spin
    assert!(apps::sample_two_spin(
        &generators::cycle(6),
        TwoSpinParams::new(2.0, 3.0, 1.0),
        0.5,
        0.01,
        0
    )
    .is_err());
    // triangle
    assert!(apps::sample_coloring(&generators::complete(3), 10, 0.01, 0).is_err());
    // too few colors
    assert!(apps::sample_coloring(&t, 5, 0.01, 0).is_err());
    // hypergraph matching above threshold
    let h = Hypergraph::new(
        4,
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(0), NodeId(2), NodeId(3)],
        ],
    );
    assert!(apps::sample_hypergraph_matching(&h, 50.0, 0.01, 0).is_err());
}

#[test]
fn hardcore_rounds_grow_toward_threshold() {
    // closer to λ_c ⟹ weaker decay ⟹ larger radius ⟹ more rounds
    let g = generators::cycle(24);
    let lc_proxy = 2.0; // cycles are always unique; use rate growth instead
    let lo = apps::sample_hardcore(&g, 0.3, 0.01, 7).unwrap();
    let hi = apps::sample_hardcore(&g, lc_proxy, 0.01, 7).unwrap();
    assert!(
        lo.rate < hi.rate,
        "decay rate must grow with λ: {} vs {}",
        lo.rate,
        hi.rate
    );
    assert!(lo.rounds <= hi.rounds, "rounds {} vs {}", lo.rounds, hi.rounds);
}

#[test]
fn matching_bound_shape_scales_with_degree() {
    let b3 = complexity::matchings_rounds_bound(3, 64, 1.0);
    let b6 = complexity::matchings_rounds_bound(6, 64, 1.0);
    assert!((b6 / b3 - (2.0f64).sqrt()).abs() < 1e-9);
}

#[test]
fn acceptance_products_are_valid_probabilities() {
    let g = generators::cycle(8);
    for seed in 0..5 {
        let run = apps::sample_hardcore(&g, 1.0, 0.005, seed).unwrap();
        let acc = run.acceptance();
        assert!((0.0..=1.0 + 1e-12).contains(&acc), "acceptance {acc}");
        assert_eq!(run.stats.clamped, 0);
        assert_eq!(run.stats.repair_failures, 0);
    }
}
