//! Integration: every Corollary 5.3 application produces valid outputs,
//! enforces its regime, and reports coherent round counts — all through
//! the unified engine facade.

use lds::core::complexity;
use lds::engine::{Engine, EngineError, ModelSpec, Task};
use lds::gibbs::models::hypergraph_matching::HypergraphMatchingInstance;
use lds::gibbs::models::matching::MatchingInstance;
use lds::gibbs::models::{coloring, hardcore, two_spin};
use lds::graph::{generators, Graph, Hypergraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(model: ModelSpec, g: &Graph) -> Engine {
    Engine::builder()
        .model(model)
        .graph(g.clone())
        .epsilon(0.01)
        .build()
        .expect("in regime")
}

#[test]
fn all_five_applications_run() {
    // hardcore
    let g = generators::cycle(8);
    let hc = build(ModelSpec::Hardcore { lambda: 1.0 }, &g)
        .run_with_seed(Task::SampleExact, 1)
        .unwrap();
    assert!(hardcore::is_independent_set(&g, hc.config().unwrap()));
    assert!(hc.rounds > 0);

    // matchings
    let mut rng = StdRng::seed_from_u64(2);
    let rg = generators::random_regular(8, 3, &mut rng);
    let m = build(ModelSpec::Matching { lambda: 1.2 }, &rg)
        .run_with_seed(Task::SampleExact, 2)
        .unwrap();
    assert!(MatchingInstance::new(&rg, 1.2).is_matching(m.matching_edges().unwrap()));

    // colorings
    let col = build(ModelSpec::Coloring { q: 4 }, &g)
        .run_with_seed(Task::SampleExact, 3)
        .unwrap();
    assert!(coloring::is_proper(&g, col.config().unwrap()));

    // antiferro two-spin (Ising)
    let ising = build(
        ModelSpec::Ising {
            beta: -0.2,
            field: 0.0,
        },
        &g,
    );
    let ts = ising.run_with_seed(Task::SampleExact, 4).unwrap();
    let params = lds::gibbs::models::ising::IsingParams::new(-0.2, 0.0).to_two_spin();
    let tsm = two_spin::model(&g, params);
    assert!(tsm.weight(ts.config().unwrap()) > 0.0);

    // hypergraph matchings
    let h = Hypergraph::new(
        6,
        vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(3), NodeId(4), NodeId(5)],
        ],
    );
    let hm = Engine::builder()
        .model(ModelSpec::HypergraphMatching { lambda: 0.2 })
        .hypergraph(h.clone())
        .epsilon(0.01)
        .build()
        .unwrap()
        .run_with_seed(Task::SampleExact, 5)
        .unwrap();
    assert!(HypergraphMatchingInstance::new(&h, 0.2).is_matching(hm.hyperedges().unwrap()));
}

#[test]
fn regimes_are_enforced_at_build_time() {
    // hardcore above threshold
    let t = generators::torus(4, 4);
    assert!(matches!(
        Engine::builder()
            .model(ModelSpec::Hardcore { lambda: 3.0 })
            .graph(t.clone())
            .build(),
        Err(EngineError::OutOfRegime(_))
    ));
    // ferromagnetic two-spin
    assert!(Engine::builder()
        .model(ModelSpec::TwoSpin {
            beta: 2.0,
            gamma: 3.0,
            lambda: 1.0,
            rate: 0.5
        })
        .graph(generators::cycle(6))
        .build()
        .is_err());
    // triangle
    assert!(Engine::builder()
        .model(ModelSpec::Coloring { q: 10 })
        .graph(generators::complete(3))
        .build()
        .is_err());
    // too few colors
    assert!(Engine::builder()
        .model(ModelSpec::Coloring { q: 5 })
        .graph(t)
        .build()
        .is_err());
    // hypergraph matching above threshold
    let h = Hypergraph::new(
        4,
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(0), NodeId(2), NodeId(3)],
        ],
    );
    match Engine::builder()
        .model(ModelSpec::HypergraphMatching { lambda: 50.0 })
        .hypergraph(h)
        .build()
    {
        Err(EngineError::OutOfRegime(oor)) => {
            assert_eq!(oor.computed, 50.0);
            assert!(oor.critical < 50.0, "critical λ_c = {}", oor.critical);
        }
        other => panic!("expected OutOfRegime, got {other:?}"),
    }
}

#[test]
fn hardcore_rounds_grow_toward_threshold() {
    // closer to λ_c ⟹ weaker decay ⟹ larger radius ⟹ more rounds
    let g = generators::cycle(24);
    let lc_proxy = 2.0; // cycles are always unique; use rate growth instead
    let lo = build(ModelSpec::Hardcore { lambda: 0.3 }, &g)
        .run_with_seed(Task::SampleExact, 7)
        .unwrap();
    let hi = build(ModelSpec::Hardcore { lambda: lc_proxy }, &g)
        .run_with_seed(Task::SampleExact, 7)
        .unwrap();
    assert!(
        lo.rate < hi.rate,
        "decay rate must grow with λ: {} vs {}",
        lo.rate,
        hi.rate
    );
    assert!(
        lo.rounds <= hi.rounds,
        "rounds {} vs {}",
        lo.rounds,
        hi.rounds
    );
}

#[test]
fn matching_bound_shape_scales_with_degree() {
    let b3 = complexity::matchings_rounds_bound(3, 64, 1.0);
    let b6 = complexity::matchings_rounds_bound(6, 64, 1.0);
    assert!((b6 / b3 - (2.0f64).sqrt()).abs() < 1e-9);
}

#[test]
fn acceptance_products_are_valid_probabilities() {
    let g = generators::cycle(8);
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(g)
        .epsilon(0.005)
        .build()
        .unwrap();
    for report in engine
        .run_batch(Task::SampleExact, &[0, 1, 2, 3, 4])
        .unwrap()
    {
        let acc = report.acceptance().unwrap();
        assert!((0.0..=1.0 + 1e-12).contains(&acc), "acceptance {acc}");
        let stats = report.stats.as_ref().unwrap();
        assert_eq!(stats.clamped, 0);
        assert_eq!(stats.repair_failures, 0);
    }
}
