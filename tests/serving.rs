//! Serving-layer contracts: concurrent idempotency (bit-identical
//! answers, at most one engine execution per key), determinism across
//! pool widths, and admission-control backpressure.
//!
//! These run in the CI `LDS_THREADS` determinism matrix: engines built
//! without an explicit width pick up the matrix value, so every
//! assertion here holds at widths 1, 4, and 8.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use lds::engine::{Engine, ModelSpec, RunReport, Task};
use lds::graph::generators;
use lds::serve::{Server, ServerConfig, SubmitError};

fn hardcore_engine(n: usize) -> Arc<Engine> {
    Arc::new(
        Engine::builder()
            .model(ModelSpec::Hardcore { lambda: 1.0 })
            .graph(generators::cycle(n))
            .epsilon(0.001)
            .build()
            .expect("in regime"),
    )
}

// Report agreement is asserted through `RunReport::semantic_eq` — the
// one definition of "same answer" shared by the determinism, serving,
// and net round-trip suites. It covers every output field bit-for-bit
// and excludes only the execution-strategy fields (wall clocks,
// sharding telemetry) that legitimately vary between runs.

#[test]
fn concurrent_identical_requests_are_bit_identical_and_execute_once() {
    let engine = hardcore_engine(10);
    let direct = engine.run_with_seed(Task::SampleExact, 42).unwrap();
    // two worker sessions so the in-flight ledger (not worker
    // single-threading) has to provide the at-most-one guarantee
    let server = Arc::new(Server::new(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            coalesce_window: Duration::from_micros(500),
            ..ServerConfig::default()
        },
    ));
    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait(); // release all clients at once
                server
                    .submit(Task::SampleExact, 42)
                    .expect("queue has room")
                    .wait()
                    .expect("request served")
            })
        })
        .collect();
    let reports: Vec<RunReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for report in &reports {
        assert!(
            report.semantic_eq(&direct),
            "served answer diverged from direct execution:\n{report:?}\nvs\n{direct:?}"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.completed, CLIENTS as u64);
    assert_eq!(
        stats.engine_executions, 1,
        "identical concurrent requests must dedup to one execution: {stats}"
    );
    assert_eq!(
        stats.cache_hits + stats.deduped(),
        CLIENTS as u64 - 1,
        "every duplicate is answered by cache or in-flight dedup: {stats}"
    );
}

#[test]
fn served_outputs_are_identical_across_pool_widths() {
    // same request stream through servers over width-1 and width-4
    // engines: every answer must be bit-identical (the runtime's
    // stream-derivation contract, surfaced end to end through the
    // serving layer)
    let mut by_width: Vec<Vec<RunReport>> = Vec::new();
    for width in [1usize, 4] {
        let engine = Arc::new(
            Engine::builder()
                .model(ModelSpec::Hardcore { lambda: 1.0 })
                .graph(generators::cycle(10))
                .epsilon(0.001)
                .threads(width)
                .build()
                .unwrap(),
        );
        let server = Server::with_defaults(engine);
        let tickets: Vec<_> = (0..12u64)
            .map(|seed| server.try_submit(Task::SampleExact, seed).unwrap())
            .collect();
        by_width.push(tickets.into_iter().map(|t| t.wait().unwrap()).collect());
    }
    let (w1, w4) = (&by_width[0], &by_width[1]);
    assert_eq!(w1.len(), w4.len());
    for (a, b) in w1.iter().zip(w4) {
        assert!(
            a.semantic_eq(b),
            "serving results changed with pool width at seed {}:\n{a:?}\nvs\n{b:?}",
            a.seed
        );
    }
}

#[test]
fn coalescing_batches_compatible_requests() {
    let server = Server::new(
        hardcore_engine(8),
        ServerConfig {
            workers: 1,
            coalesce_window: Duration::from_millis(5),
            max_batch: 64,
            ..ServerConfig::default()
        },
    );
    // submit a burst faster than the window closes: the single worker
    // must fold it into far fewer dispatch rounds than requests
    let tickets: Vec<_> = (0..16u64)
        .map(|seed| server.submit(Task::SampleExact, seed).unwrap())
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.batched_requests, 16);
    assert!(
        stats.mean_batch_size() > 1.0,
        "no coalescing happened: {stats}"
    );
    assert_eq!(stats.engine_executions, 16, "all seeds distinct");
}

#[test]
fn backpressure_rejects_above_watermark_without_deadlock() {
    // a deliberately tiny, slow server: one worker, no coalescing, a
    // 2-deep queue, and a model large enough that each execution takes
    // ~milliseconds while submissions take microseconds
    let server = Server::new(
        hardcore_engine(18),
        ServerConfig {
            workers: 1,
            coalesce_window: Duration::ZERO,
            max_batch: 1,
            queue_capacity: 2,
            cache_capacity: 0, // every request must actually execute
            ..ServerConfig::default()
        },
    );
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for seed in 0..64u64 {
        match server.try_submit(Task::SampleExact, seed) {
            Ok(ticket) => accepted.push(ticket),
            Err(SubmitError::Overloaded {
                queue_depth,
                watermark,
            }) => {
                assert!(queue_depth >= watermark.min(2));
                rejected += 1;
            }
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }
    assert!(
        rejected > 0,
        "a 64-request flood against a 2-deep queue must shed load"
    );
    // every accepted request still completes: shedding never deadlocks
    // or starves admitted work
    let accepted_count = accepted.len() as u64;
    for ticket in accepted {
        ticket.wait().expect("accepted request must be served");
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, accepted_count);
    assert!(stats.peak_queue_depth >= 1);
    // once drained, admission recovers
    server
        .try_submit(Task::SampleExact, 1000)
        .expect("admission must recover after the queue drains")
        .wait()
        .expect("post-recovery request served");
}

#[test]
fn watermark_below_capacity_sheds_early() {
    let server = Server::new(
        hardcore_engine(18),
        ServerConfig {
            workers: 1,
            coalesce_window: Duration::ZERO,
            max_batch: 1,
            queue_capacity: 16,
            admission_watermark: Some(2),
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for seed in 0..32u64 {
        match server.try_submit(Task::SampleExact, seed) {
            Ok(t) => accepted.push(t),
            Err(SubmitError::Overloaded { watermark, .. }) => {
                assert_eq!(watermark, 2, "the soft watermark governs, not capacity");
                shed += 1;
            }
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }
    assert!(shed > 0, "soft watermark never triggered");
    assert!(
        server.stats().peak_queue_depth <= 3,
        "queue grew past the soft watermark"
    );
    for t in accepted {
        t.wait().unwrap();
    }
}

#[test]
fn concurrent_producers_cannot_overshoot_the_watermark() {
    // the depth check and the enqueue are atomic in try_submit: even
    // with many producers racing, the queue never exceeds the soft
    // watermark (this is what a post-hoc `len()` check cannot give)
    let server = Arc::new(Server::new(
        hardcore_engine(16),
        ServerConfig {
            workers: 1,
            coalesce_window: Duration::ZERO,
            max_batch: 1,
            queue_capacity: 16,
            admission_watermark: Some(2),
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    ));
    const PRODUCERS: usize = 8;
    let barrier = Arc::new(Barrier::new(PRODUCERS));
    let handles: Vec<_> = (0..PRODUCERS as u64)
        .map(|p| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut tickets = Vec::new();
                for i in 0..8u64 {
                    if let Ok(t) = server.try_submit(Task::SampleExact, p * 100 + i) {
                        tickets.push(t);
                    }
                }
                tickets
            })
        })
        .collect();
    for h in handles {
        for t in h.join().unwrap() {
            t.wait().expect("accepted request served");
        }
    }
    let stats = server.stats();
    assert!(
        stats.peak_queue_depth <= 2,
        "racing producers overshot the watermark: {stats}"
    );
    assert!(stats.rejected > 0, "64 racing submissions must shed load");
}

#[test]
fn mixed_task_stream_serves_every_request() {
    let engine = hardcore_engine(8);
    let server = Arc::new(Server::new(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            coalesce_window: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    ));
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let mut answers = Vec::new();
                for i in 0..8u64 {
                    let (task, seed) = if i % 2 == 0 {
                        (Task::SampleExact, i / 2) // seeds shared across clients
                    } else {
                        (Task::Count, 0)
                    };
                    answers.push((task, server.submit(task, seed).unwrap().wait().unwrap()));
                }
                (c, answers)
            })
        })
        .collect();
    let mut count_estimates = Vec::new();
    for client in clients {
        let (_, answers) = client.join().unwrap();
        for (task, report) in answers {
            match task {
                Task::Count => count_estimates.push(report.log_z().unwrap().to_bits()),
                _ => assert!(report.config().is_some()),
            }
        }
    }
    // every Count answer (same key from all clients) is bit-identical
    count_estimates.dedup();
    assert_eq!(count_estimates.len(), 1);
    let stats = server.stats();
    assert_eq!(stats.completed, 32);
    // 4 clients × 4 SampleExact share 4 unique seeds; Count shares one
    // key: at most 5 executions despite 32 requests
    assert!(
        stats.engine_executions <= 5,
        "idempotency failed to collapse the shared keys: {stats}"
    );
}
