//! Integration: the full reduction chain of the paper, across crates.
//!
//! inference oracle → sequential sampler (Thm 3.2) → LOCAL transformation
//! (Lemma 3.1) → marginal reconstruction (Thm 3.4) → boosting (Lemma 4.1),
//! on instances small enough to compare against exact enumeration.

use lds::core::sampler::{sample_local, SequentialSampler};
use lds::core::sampling_to_inference;
use lds::gibbs::models::two_spin::TwoSpinParams;
use lds::gibbs::models::{coloring, hardcore};
use lds::gibbs::{distribution, metrics, Config, PartialConfig, Value};
use lds::graph::{generators, ordering, NodeId};
use lds::localnet::slocal::SlocalAlgorithm;
use lds::localnet::{Instance, Network};
use lds::oracle::boosting::MultiplicativeInference;
use lds::oracle::{BoostedOracle, DecayRate, EnumerationOracle, TwoSpinSawOracle};

fn saw(lambda: f64) -> TwoSpinSawOracle {
    TwoSpinSawOracle::new(TwoSpinParams::hardcore(lambda), DecayRate::new(0.5, 2.0))
}

#[test]
fn theorem_3_2_sampler_distribution_matches_target() {
    let n = 6usize;
    let g = generators::cycle(n);
    let model = hardcore::model(&g, 1.3);
    let oracle = saw(1.3);
    let sampler = SequentialSampler::new(oracle.clone(), 0.02);
    let trials = 20_000usize;
    let mut samples = Vec::with_capacity(trials);
    for seed in 0..trials as u64 {
        let net = Network::new(Instance::unconditioned(model.clone()), seed);
        let run = sampler.run_sequential(&net, &ordering::identity(&g));
        samples.push(Config::from_values(run.outputs));
    }
    let emp = metrics::empirical_distribution(&samples);
    let exact = distribution::joint_distribution(&model, &PartialConfig::empty(n)).unwrap();
    let tv = metrics::tv_distance_joint(&emp, &exact);
    assert!(tv < 0.05, "chain TV {tv}");
}

#[test]
fn theorem_3_2_local_version_with_lemma_3_1() {
    let g = generators::torus(4, 4);
    let model = hardcore::model(&g, 0.8);
    let oracle = saw(0.8);
    let net = Network::new(Instance::unconditioned(model.clone()), 11);
    let (run, schedule) = sample_local(&net, &oracle, 0.1, 0);
    assert!(run.succeeded());
    assert!(run.rounds > 0);
    assert_eq!(schedule.order.len(), 16);
    let config = Config::from_values(run.outputs);
    assert!(model.weight(&config) > 0.0);
    // decomposition color separation must hold on the power graph
    let locality = SequentialSampler::new(oracle.clone(), 0.1).locality(16);
    let h = lds::graph::power::power(&g, locality.min(4 /* diameter cap */) + 1);
    assert!(schedule.decomposition.verify_color_separation(&h));
}

#[test]
fn theorem_3_4_closes_the_loop() {
    // sampler built from inference; inference recovered from sampler
    let n = 6usize;
    let g = generators::cycle(n);
    let model = hardcore::model(&g, 1.0);
    let net = Network::new(Instance::unconditioned(model.clone()), 2);
    let oracle = saw(1.0);
    let rec = sampling_to_inference::marginals_by_sampling(&net, &oracle, 0.03, 3000, 9);
    let tau = PartialConfig::empty(n);
    for v in g.nodes() {
        let exact = distribution::marginal(&model, &tau, v).unwrap();
        let err = metrics::tv_distance(&exact, &rec.marginals[v.index()]);
        assert!(
            err < 0.03 + rec.failure_rate + 0.04,
            "node {v}: recovered err {err}"
        );
    }
}

#[test]
fn lemma_4_1_boosting_chain_on_colorings() {
    // enumeration base (additive) → boosted (multiplicative) on colorings
    let g = generators::cycle(9);
    let model = coloring::model(&g, 3);
    let tau = PartialConfig::empty(9);
    let boosted = BoostedOracle::new(EnumerationOracle::new(DecayRate::new(0.5, 2.0)));
    let exact = distribution::marginal(&model, &tau, NodeId(4)).unwrap();
    let est = boosted.marginal_mul(&model, &tau, NodeId(4), 0.4);
    let err = metrics::multiplicative_err(&exact, &est);
    assert!(err <= 0.4, "boosted coloring err {err}");
}

#[test]
fn pinned_instances_flow_through_every_reduction() {
    // self-reduction: a pinning must be honored by sampler and inference
    let n = 8usize;
    let g = generators::cycle(n);
    let model = hardcore::model(&g, 1.0);
    let mut tau = PartialConfig::empty(n);
    tau.pin(NodeId(0), Value(1));
    tau.pin(NodeId(4), Value(1));
    let inst = Instance::new(model.clone(), tau.clone()).unwrap();
    let oracle = saw(1.0);

    // sampler honors pins
    for seed in 0..20 {
        let net = Network::new(inst.clone(), seed);
        let sampler = SequentialSampler::new(oracle.clone(), 0.05);
        let run = sampler.run_sequential(&net, &ordering::identity(&g));
        assert_eq!(run.outputs[0], Value(1));
        assert_eq!(run.outputs[4], Value(1));
        assert_eq!(run.outputs[1], Value(0));
    }

    // inference honors pins: conditional marginals match enumeration
    let exact = distribution::marginal(&model, &tau, NodeId(2)).unwrap();
    let est = lds::oracle::InferenceOracle::marginal(&oracle, &model, &tau, NodeId(2), 6);
    assert!(metrics::tv_distance(&exact, &est) < 0.01);
}
