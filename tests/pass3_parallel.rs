//! Pass-3 equivalence: the chromatic (cluster-parallel) rejection pass
//! is **bit-identical** to the pre-refactor sequential scan.
//!
//! `local-JVV`'s rejection pass was refactored from a hard-coded
//! sequential loop into a `ScanKernel` driven by the chromatic scheduler
//! (so same-color clusters resample concurrently). The original loop is
//! kept frozen as `LocalJvv::run_detailed_reference`; this suite checks
//! the refactored execution against it:
//!
//! * a proptest over random graphs and **explicit oracle radii
//!   t ∈ {1, 2, 3}** (a deterministic radius-`t` pseudo-oracle makes the
//!   radius a direct test parameter instead of a function of `ε`), at
//!   pool widths 1, 2 and 8 — outputs, failure bits, and the
//!   floating-point acceptance statistics must match bit for bit;
//! * the same comparison through the real SAW-tree oracle on the
//!   engine's serving path workloads.
//!
//! The CI determinism matrix runs this suite under
//! `LDS_THREADS ∈ {1, 4, 8}`; the widths exercised here are explicit, so
//! every leg checks the full 1/2/8 sweep.

use lds::core::jvv::LocalJvv;
use lds::gibbs::models::hardcore;
use lds::gibbs::models::two_spin::TwoSpinParams;
use lds::gibbs::{GibbsModel, PartialConfig, Value};
use lds::graph::{generators, traversal, Graph, NodeId};
use lds::localnet::slocal::multipass_locality;
use lds::localnet::{scheduler, Instance, Network};
use lds::oracle::{BoostedOracle, DecayRate, MultiplicativeInference, TwoSpinSawOracle};
use lds::runtime::{splitmix64, ThreadPool};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic multiplicative "oracle" with an **explicit** radius
/// `t`: its marginal at `v` is a positive pseudo-random function of the
/// pins within distance `t` of `v` (and nothing else). It makes no
/// accuracy promise — pass-3 equivalence is about locality and
/// determinism, not oracle quality — and its arbitrary marginals drive
/// the rejection ratios (and the clamp counter) much harder than a
/// well-behaved oracle would.
#[derive(Clone)]
struct BallHashOracle {
    t: usize,
}

impl MultiplicativeInference for BallHashOracle {
    fn name(&self) -> &str {
        "ball-hash"
    }

    fn radius_mul(&self, _model: &GibbsModel, _eps: f64) -> usize {
        self.t
    }

    fn marginal_mul(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        _eps: f64,
    ) -> Vec<f64> {
        let q = model.alphabet_size();
        if let Some(val) = pinning.get(v) {
            let mut point = vec![0.0; q];
            point[val.index()] = 1.0;
            return point;
        }
        let g = model.graph();
        let dist = traversal::bfs_distances(g, v);
        let mut acc = 0xabcd_ef01_2345_6789u64 ^ ((v.index() as u64) << 32);
        for u in g.nodes() {
            let d = dist[u.index()];
            if d == traversal::UNREACHABLE || d as usize > self.t {
                continue;
            }
            if let Some(val) = pinning.get(u) {
                acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(
                    ((u.index() as u64) << 17) | ((val.index() as u64) << 3) | d as u64,
                );
            }
        }
        let weights: Vec<f64> = (0..q)
            .map(|c| {
                1.0 + (splitmix64(acc ^ (c as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)) % 1024)
                    as f64
                    / 1024.0
            })
            .collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }
}

fn workload(idx: usize, seed: u64) -> Graph {
    match idx % 5 {
        0 => generators::cycle(14),
        1 => generators::torus(4, 4),
        2 => generators::random_regular(14, 3, &mut StdRng::seed_from_u64(seed)),
        3 => generators::erdos_renyi(16, 0.15, &mut StdRng::seed_from_u64(seed ^ 0xe5)),
        _ => generators::balanced_tree(2, 3),
    }
}

fn network(g: &Graph, seed: u64) -> Network {
    Network::new(Instance::unconditioned(hardcore::model(g, 1.0)), seed)
}

/// Asserts two JVV outcomes identical to the bit: outputs, failure
/// bits, and the floating-point acceptance statistics.
#[track_caller]
fn assert_outcomes_identical(
    a: &lds::core::jvv::JvvOutcome,
    b: &lds::core::jvv::JvvOutcome,
    context: &str,
) {
    assert_eq!(a.run.outputs, b.run.outputs, "{context}: outputs");
    assert_eq!(a.run.failures, b.run.failures, "{context}: failures");
    assert_eq!(
        a.stats.acceptance_product.to_bits(),
        b.stats.acceptance_product.to_bits(),
        "{context}: acceptance product bits"
    );
    assert_eq!(a.stats.clamped, b.stats.clamped, "{context}: clamped");
    assert_eq!(
        a.stats.repair_failures, b.stats.repair_failures,
        "{context}: repair failures"
    );
    assert_eq!(a.stats.locality, b.stats.locality, "{context}: locality");
}

proptest! {
    /// Parallel pass 3 == frozen sequential scan, for explicit oracle
    /// radii t ∈ {1, 2, 3} on random graphs, at widths 1/2/8.
    #[test]
    fn parallel_pass3_equals_prerefactor_scan(
        gidx in 0usize..5,
        seed in 0u64..200,
        t in 1usize..4,
    ) {
        let g = workload(gidx, seed);
        let net = network(&g, seed);
        let oracle = BallHashOracle { t };
        let jvv = LocalJvv::new(&oracle, 0.01);
        let ell = net.instance().model().locality().max(1);
        let locality = multipass_locality(&[t, t, 3 * t + ell]);
        let schedule = scheduler::chromatic_schedule(&net, locality, 0);
        let reference = jvv.run_detailed_reference(&net, &schedule.order);
        for threads in [1usize, 2, 8] {
            let (outcome, _timings) =
                jvv.run_scheduled(&net, &schedule, &ThreadPool::new(threads));
            assert_outcomes_identical(
                &outcome,
                &reference,
                &format!("graph {gidx} seed {seed} t {t} threads {threads}"),
            );
        }
        // the refactored sequential path must also reproduce the frozen
        // scan exactly (same kernel, no snapshots)
        let detailed = jvv.run_detailed(&net, &schedule.order);
        assert_outcomes_identical(
            &detailed,
            &reference,
            &format!("graph {gidx} seed {seed} t {t} sequential"),
        );
    }
}

/// The same equivalence through the real boosted SAW-tree oracle — the
/// oracle the engine serves hardcore/Ising/two-spin requests with.
#[test]
fn parallel_pass3_matches_reference_with_saw_oracle() {
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(1.0),
        DecayRate::new(0.5, 2.0),
    ));
    for (g, eps) in [
        (generators::cycle(10), 0.05),
        (generators::torus(4, 4), 0.1),
        (generators::cycle(12), 0.01),
    ] {
        for seed in 0..4u64 {
            let net = network(&g, seed);
            let jvv = LocalJvv::new(&oracle, eps);
            let model = net.instance().model();
            let ell = model.locality().max(1);
            let t = oracle.radius_mul(model, eps);
            let locality = multipass_locality(&[t, t, 3 * t + ell]);
            let schedule = scheduler::chromatic_schedule(&net, locality, 0);
            let reference = jvv.run_detailed_reference(&net, &schedule.order);
            for threads in [1usize, 2, 8] {
                let (outcome, _) = jvv.run_scheduled(&net, &schedule, &ThreadPool::new(threads));
                assert_outcomes_identical(
                    &outcome,
                    &reference,
                    &format!("saw eps {eps} seed {seed} threads {threads}"),
                );
            }
        }
    }
}

/// Pinned instances run pass 3 over every node (pinned ones included);
/// the equivalence must survive pinning too.
#[test]
fn parallel_pass3_respects_pinning_bitwise() {
    let g = generators::cycle(12);
    let model = hardcore::model(&g, 1.0);
    let mut tau = PartialConfig::empty(12);
    tau.pin(NodeId(3), Value(1));
    tau.pin(NodeId(7), Value(0));
    let inst = Instance::new(model, tau).unwrap();
    let oracle = BallHashOracle { t: 2 };
    for seed in 0..6u64 {
        let net = Network::new(inst.clone(), seed);
        let jvv = LocalJvv::new(&oracle, 0.02);
        let ell = net.instance().model().locality().max(1);
        let locality = multipass_locality(&[2, 2, 6 + ell]);
        let schedule = scheduler::chromatic_schedule(&net, locality, 0);
        let reference = jvv.run_detailed_reference(&net, &schedule.order);
        assert_eq!(reference.run.outputs[3], Value(1), "pin must survive");
        for threads in [2usize, 8] {
            let (outcome, _) = jvv.run_scheduled(&net, &schedule, &ThreadPool::new(threads));
            assert_outcomes_identical(&outcome, &reference, &format!("pinned seed {seed}"));
        }
    }
}

/// Pass-1 ground failures must *carry over* through pass 3 even when
/// the node's rejection coin passes — the sequential scan only ever
/// sets failure bits, it never clears them. The full pipeline only
/// produces ground failures on infeasible-fallback paths, so this
/// drives the kernel and the frozen reference directly with synthetic
/// pass-1/2 outputs (regression for a fold that assigned instead of
/// OR-ing).
#[test]
fn ground_failures_survive_a_passing_rejection_coin() {
    use lds::localnet::slocal::SlocalRun;
    let g = generators::cycle(10);
    let n = 10;
    let oracle = BallHashOracle { t: 1 };
    for seed in 0..8u64 {
        let net = network(&g, seed);
        let jvv = LocalJvv::new(&oracle, 0.02);
        let order: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        // feasible all-unoccupied σ0 and Y, with synthetic pass-1
        // failures at two nodes
        let mut ground_failures = vec![false; n];
        ground_failures[2] = true;
        ground_failures[7] = true;
        let ground = SlocalRun {
            outputs: vec![Value(0); n],
            failures: ground_failures,
        };
        let sampled = SlocalRun {
            outputs: vec![Value(0); n],
            failures: vec![false; n],
        };
        let reference = jvv.rejection_pass_reference(&net, &order, ground.clone(), sampled.clone());
        let scan = jvv.rejection_pass_scan(&net, &order, ground, sampled);
        assert!(reference.run.failures[2], "reference must keep the bit");
        assert!(reference.run.failures[7], "reference must keep the bit");
        assert_outcomes_identical(&scan, &reference, &format!("ground carry-over seed {seed}"));
    }
}
