//! Out-of-process serving contracts, over real loopback TCP: wire
//! round trips are bit-identical to in-process execution, malformed
//! input is typed (never a panic or a hang), the registry evicts and
//! re-registers, backpressure is an explicit wire reply, and shutdown
//! drains accepted work.
//!
//! These run in the CI `LDS_THREADS` determinism matrix: server-side
//! engines are built without an explicit width, so every assertion
//! holds at widths 1, 4, and 8.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use lds::engine::{ModelSpec, RunReport, Task, Topology};
use lds::graph::generators;
use lds::net::codec::Wire;
use lds::net::{
    frame, Client, ClientError, EngineSpec, NetConfig, NetServer, Op, Reply, WireError,
};
use lds::serve::{RegistryConfig, ServerConfig};

fn hardcore_spec(n: usize) -> EngineSpec {
    EngineSpec::new(
        ModelSpec::Hardcore { lambda: 1.0 },
        Topology::Graph(generators::cycle(n)),
    )
}

fn ising_spec(n: usize) -> EngineSpec {
    EngineSpec::new(
        ModelSpec::Ising {
            beta: -0.1,
            field: 0.0,
        },
        Topology::Graph(generators::cycle(n)),
    )
}

/// Two reports of the same `(fingerprint, task, seed)` must agree on
/// every semantic field — in process or over TCP, at any thread width.
/// [`RunReport::semantic_eq`] is the shared definition of that
/// agreement: it excludes only the execution-strategy fields (wall
/// clocks, sharding telemetry), which legitimately differ between a
/// direct `run_with_seed` (intra-run sharding) and the serve layer's
/// `run_batch` (parallel across seeds, each seed on a sequential
/// inner pool).
fn assert_same_answer(a: &RunReport, b: &RunReport, context: &str) {
    assert!(a.semantic_eq(b), "{context}:\n{a:?}\nvs\n{b:?}");
}

#[test]
fn served_reports_are_bit_identical_across_two_interleaved_tenants() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // a second "process" (thread with its own connection) registers
    // two distinct models and interleaves tasks by fingerprint
    let handle = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let fp_hc = client.register(&hardcore_spec(10)).unwrap();
        let fp_is = client.register(&ising_spec(8)).unwrap();
        assert_ne!(fp_hc, fp_is, "distinct models, distinct identities");
        let mut served = Vec::new();
        for seed in 0..6u64 {
            let fp = if seed % 2 == 0 { fp_hc } else { fp_is };
            served.push((fp, seed, client.run(fp, Task::SampleExact, seed).unwrap()));
        }
        (fp_hc, fp_is, served)
    });
    let (fp_hc, fp_is, served) = handle.join().unwrap();

    // in-process ground truth from independently built engines
    let hc = hardcore_spec(10).build().unwrap();
    let is = ising_spec(8).build().unwrap();
    assert_eq!(
        hc.fingerprint(),
        fp_hc,
        "fingerprints agree across processes"
    );
    assert_eq!(is.fingerprint(), fp_is);
    for (fp, seed, report) in &served {
        let engine = if *fp == fp_hc { &hc } else { &is };
        let direct = engine.run_with_seed(Task::SampleExact, *seed).unwrap();
        assert_same_answer(
            report,
            &direct,
            &format!("wire report for seed {seed} diverged from in-process execution"),
        );
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let fp = server
        .registry()
        .register(hardcore_spec(12).build().unwrap());

    let mut handles = Vec::new();
    for c in 0..4u64 {
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            (0..4u64)
                .map(|i| {
                    let seed = (c * 4 + i) % 5; // deliberate overlap across clients
                    (seed, client.run(fp, Task::SampleExact, seed).unwrap())
                })
                .collect::<Vec<_>>()
        }));
    }
    let direct = hardcore_spec(12).build().unwrap();
    for handle in handles {
        for (seed, report) in handle.join().unwrap() {
            let expect = direct.run_with_seed(Task::SampleExact, seed).unwrap();
            assert_same_answer(&report, &expect, &format!("seed {seed}"));
        }
    }
    server.shutdown();
}

#[test]
fn unknown_fingerprint_is_a_typed_error_not_a_hang() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.run(0xDEAD_BEEF, Task::Count, 1) {
        Err(ClientError::Server(WireError::UnknownFingerprint(fp))) => {
            assert_eq!(fp, 0xDEAD_BEEF)
        }
        other => panic!("expected UnknownFingerprint, got {other:?}"),
    }
    // the connection survives the error
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn out_of_regime_registration_is_rejected_with_the_builder_error() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let spec = EngineSpec::new(
        ModelSpec::Hardcore { lambda: 50.0 },
        Topology::Graph(generators::grid(4, 4)),
    );
    match client.register(&spec) {
        Err(ClientError::Server(WireError::Rejected(msg))) => {
            assert!(!msg.is_empty(), "rejection carries the builder diagnosis")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn malformed_truncated_and_oversized_frames_are_typed_never_panics() {
    let config = NetConfig {
        max_frame_len: 4096,
        ..NetConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // 1. garbage payload inside a well-formed frame: typed Malformed
    //    reply, connection stays usable
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut payload = 77u64.to_le_bytes().to_vec(); // id
        payload.push(250); // unknown op tag
        frame::write_frame(&mut stream, &payload, 4096).unwrap();
        let resp = frame::read_frame(&mut stream, 4096).unwrap();
        let resp = lds::net::Response::from_bytes(&resp).unwrap();
        assert_eq!(resp.id, 77, "the salvaged id is echoed");
        assert!(
            matches!(resp.reply, Reply::Error(WireError::Malformed(_))),
            "got {:?}",
            resp.reply
        );
        // same connection still serves
        let ping = lds::net::Request {
            id: 78,
            op: Op::Ping,
        };
        frame::write_frame(&mut stream, &ping.to_bytes(), 4096).unwrap();
        let pong = frame::read_frame(&mut stream, 4096).unwrap();
        let pong = lds::net::Response::from_bytes(&pong).unwrap();
        assert!(matches!(pong.reply, Reply::Pong));
    }

    // 2. bad magic: one typed reply, then the server closes (framing
    //    can no longer be trusted)
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        // exactly one header's worth of garbage, so the server's close
        // arrives as a clean FIN (leftover unread bytes would RST)
        stream.write_all(b"XXXXXXXXXXXX").unwrap();
        let resp = frame::read_frame(&mut stream, 4096).unwrap();
        let resp = lds::net::Response::from_bytes(&resp).unwrap();
        assert!(matches!(resp.reply, Reply::Error(WireError::Malformed(_))));
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection closed after the reply");
    }

    // 3. oversized declared length: rejected from the header alone
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let header = frame::encode_header(1 << 20); // 1 MiB > 4 KiB cap
        stream.write_all(&header).unwrap();
        let resp = frame::read_frame(&mut stream, 4096).unwrap();
        let resp = lds::net::Response::from_bytes(&resp).unwrap();
        match resp.reply {
            Reply::Error(WireError::Malformed(msg)) => {
                assert!(msg.contains("cap"), "names the cap: {msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    // 4. truncated frame then disconnect: the server must not wedge —
    //    prove it by serving a fresh connection afterwards
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let header = frame::encode_header(100);
        stream.write_all(&header).unwrap();
        stream.write_all(&[0u8; 10]).unwrap(); // 90 bytes short
        drop(stream);
    }
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn registry_evicts_lru_and_reregistration_recovers() {
    let config = NetConfig {
        registry: RegistryConfig {
            capacity: 1,
            ..RegistryConfig::default()
        },
        ..NetConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let fp_a = client.register(&hardcore_spec(8)).unwrap();
    client.run(fp_a, Task::SampleExact, 1).unwrap();
    // registering B evicts A (capacity 1)
    let fp_b = client.register(&ising_spec(8)).unwrap();
    client.run(fp_b, Task::SampleExact, 1).unwrap();
    match client.run(fp_a, Task::SampleExact, 2) {
        Err(ClientError::Server(WireError::UnknownFingerprint(fp))) => assert_eq!(fp, fp_a),
        other => panic!("expected eviction, got {other:?}"),
    }
    // re-registration yields the same fingerprint and a working tenant
    assert_eq!(client.register(&hardcore_spec(8)).unwrap(), fp_a);
    client.run(fp_a, Task::SampleExact, 2).unwrap();
    assert_eq!(server.registry().stats().evictions, 2);
    server.shutdown();
}

#[test]
fn stats_travel_the_wire_and_interval_resets() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(8)).unwrap();
    client.run(fp, Task::SampleExact, 1).unwrap();
    client.run(fp, Task::SampleExact, 2).unwrap();
    client.run(fp, Task::SampleExact, 1).unwrap(); // cache hit

    let lifetime = client.stats(fp, false).unwrap();
    assert_eq!(lifetime.completed, 3);
    assert_eq!(lifetime.cache_hits, 1);

    let first = client.stats(fp, true).unwrap();
    assert_eq!(first.completed, 3, "first interval covers everything");
    let second = client.stats(fp, true).unwrap();
    assert_eq!(second.completed, 0, "interval reset between queries");
    assert_eq!(client.stats(fp, false).unwrap().completed, 3);
    server.shutdown();
}

#[test]
fn flooding_one_tenant_gets_typed_overload_while_others_complete() {
    let mut config = NetConfig::default();
    // a tiny tenant queue, one worker, no coalescing delay shortcut:
    // the flood must hit the admission watermark
    config.registry.server = ServerConfig {
        queue_capacity: 2,
        workers: 1,
        ..ServerConfig::default()
    };
    config.session_queue_capacity = 256;
    let server = NetServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let mut flooder = Client::connect(addr).unwrap();
    let fp_flood = flooder.register(&hardcore_spec(48)).unwrap();
    let fp_calm = server.registry().register(ising_spec(8).build().unwrap());

    // pipeline a burst far past the queue capacity, all distinct seeds
    // (identical seeds would dedup instead of queueing)
    let total = 96u64;
    for seed in 0..total {
        flooder
            .send(Op::Run {
                fingerprint: fp_flood,
                task: Task::SampleExact,
                seed,
                deadline: None,
            })
            .unwrap();
    }

    // a different connection to a different tenant completes meanwhile
    let calm = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        for seed in 0..4 {
            client.run(fp_calm, Task::SampleExact, seed).unwrap();
        }
    });

    let (mut reports, mut overloaded) = (0u64, 0u64);
    for _ in 0..total {
        match flooder.recv().unwrap().reply {
            Reply::Report(_) => reports += 1,
            Reply::Error(WireError::Overloaded { watermark, .. }) => {
                assert!(watermark > 0);
                overloaded += 1;
            }
            other => panic!("unexpected reply under flood: {other:?}"),
        }
    }
    calm.join().unwrap();
    assert_eq!(reports + overloaded, total, "every request answered");
    assert!(reports > 0, "accepted work still completes");
    assert!(
        overloaded > 0,
        "a {total}-deep burst into a 2-slot queue must shed typed overloads"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(32)).unwrap();
    let id = client
        .send(Op::Run {
            fingerprint: fp,
            task: Task::SampleExact,
            seed: 9,
            deadline: None,
        })
        .unwrap();
    // wait until the server has *accepted* the request (a frame still
    // in the socket buffer at shutdown is legitimately dropped), then
    // shut down while it is in flight: the accepted ticket must be
    // answered before the server lets go
    while server.registry().stats_of(fp).unwrap().submitted < 1 {
        thread::sleep(Duration::from_millis(1));
    }
    let shutdown = thread::spawn(move || server.shutdown());
    let resp = client.recv().unwrap();
    assert_eq!(resp.id, id);
    assert!(
        matches!(resp.reply, Reply::Report(_)),
        "accepted request drained to a report, got {:?}",
        resp.reply
    );
    shutdown.join().unwrap();
}

#[test]
fn client_reconnect_restores_service_and_registrations_survive() {
    let server = NetServer::with_defaults("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let fp = client.register(&hardcore_spec(8)).unwrap();
    client.run(fp, Task::SampleExact, 3).unwrap();
    // a new connection to the same server: the tenant is still live
    // (registrations are per-server, not per-connection)
    client.reconnect().unwrap();
    client.ping().unwrap();
    client.run(fp, Task::SampleExact, 4).unwrap();
    server.shutdown();
}
