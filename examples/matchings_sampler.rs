//! Sampling weighted matchings (monomer–dimer) in `O(√Δ·log³ n)` rounds
//! (Corollary 5.3, first bullet).
//!
//! Matchings of `G` are independent sets of the line graph `L(G)` — a
//! distance-preserving duality — and the monomer–dimer model always
//! exhibits strong spatial mixing (rate `1 − Ω(1/√(λΔ))`), so exact
//! local sampling works at *every* edge weight `λ` and degree `Δ`.
//!
//! Run with: `cargo run --example matchings_sampler --release`

use lds::core::{apps, complexity};
use lds::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    for delta in [3usize, 4, 5] {
        let g = generators::random_regular(10, delta, &mut rng);
        let lambda = 1.5;
        let rate = complexity::matching_decay_rate(lambda, delta);
        let out = apps::sample_matching(&g, lambda, 0.02, 7);
        println!(
            "Δ = {delta}: sampled matching of {} edges out of {} \
             (decay rate {:.3}, rounds {}, bound shape √Δ·log³n = {:.0})",
            out.edges.len(),
            g.edge_count(),
            rate,
            out.run.rounds,
            out.run.bound_rounds,
        );
        println!("         edges: {:?}", out.edges);
    }
    println!(
        "\nUnlike the hardcore model, there is no phase transition here: \
         matchings mix at every temperature, so the sampler never leaves \
         the tractable regime."
    );
}
