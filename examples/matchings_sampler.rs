//! Sampling weighted matchings (monomer–dimer) in `O(√Δ·log³ n)` rounds
//! (Corollary 5.3, first bullet).
//!
//! Matchings of `G` are independent sets of the line graph `L(G)` — a
//! distance-preserving duality handled inside the engine, which decodes
//! the line-graph configuration back to base-graph edges — and the
//! monomer–dimer model always exhibits strong spatial mixing (rate
//! `1 − Ω(1/√(λΔ))`), so the engine accepts *every* edge weight `λ` and
//! degree `Δ`.
//!
//! Run with: `cargo run --example matchings_sampler --release`

use lds::engine::{Engine, ModelSpec, Task};
use lds::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    for delta in [3usize, 4, 5] {
        let g = generators::random_regular(10, delta, &mut rng);
        let lambda = 1.5;
        let engine = Engine::builder()
            .model(ModelSpec::Matching { lambda })
            .graph(g.clone())
            .epsilon(0.02)
            .seed(7)
            .build()
            .expect("matchings are always in regime");
        let out = engine.run(Task::SampleExact).expect("valid task");
        let edges = out.matching_edges().expect("matching decode");
        println!(
            "Δ = {delta}: sampled matching of {} edges out of {} \
             (decay rate {:.3}, rounds {}, bound shape √Δ·log³n = {:.0})",
            edges.len(),
            g.edge_count(),
            out.rate,
            out.rounds,
            out.bound_rounds,
        );
        println!("         edges: {edges:?}");
    }
    println!(
        "\nUnlike the hardcore model, there is no phase transition here: \
         matchings mix at every temperature, so the engine never rejects \
         the parameters at build time."
    );
}
