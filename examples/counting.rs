//! Counting via inference — the "counting" of the paper's title.
//!
//! For self-reducible problems the global count decomposes through the
//! chain rule into conditional marginals, so a local inference oracle
//! approximates the partition function with multiplicative error `n·ε`.
//! This example counts independent sets (Fibonacci/Lucas numbers on
//! paths/cycles — an exact cross-check) and matchings, all through
//! `Task::Count` on the unified engine.
//!
//! Run with: `cargo run --example counting --release`

use lds::engine::{Engine, EngineError, ModelSpec, Task, TaskOutput};
use lds::graph::{generators, Graph};

fn count(model: ModelSpec, g: &Graph, eps: f64) -> Result<(f64, f64), EngineError> {
    let engine = Engine::builder()
        .model(model)
        .graph(g.clone())
        .epsilon(eps)
        .build()?;
    let report = engine.run(Task::Count)?;
    match report.output {
        TaskOutput::Count {
            log_z,
            log_error_bound,
        } => Ok((log_z, log_error_bound)),
        _ => unreachable!("Task::Count returns TaskOutput::Count"),
    }
}

fn main() {
    println!("independent sets of paths (Fibonacci: i(P_n) = F(n+2)):");
    let fib = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];
    for n in 3..=10usize {
        let g = generators::path(n);
        let (log_z, bound) = count(ModelSpec::Hardcore { lambda: 1.0 }, &g, 1e-5).unwrap();
        println!(
            "  i(P{n:<2}) ≈ {:>8.2}   exact {:>4}   |ln error| ≤ {bound:.1e}",
            log_z.exp(),
            fib[n + 1],
        );
    }

    println!("\nindependent sets of cycles (Lucas: i(C_n) = L(n)):");
    let lucas = [2u64, 1, 3, 4, 7, 11, 18, 29, 47, 76, 123, 199];
    for (n, &exact) in lucas.iter().enumerate().take(11).skip(4) {
        let g = generators::cycle(n);
        let (log_z, _) = count(ModelSpec::Hardcore { lambda: 1.0 }, &g, 1e-5).unwrap();
        println!("  i(C{n:<2}) ≈ {:>8.2}   exact {exact:>4}", log_z.exp());
    }

    println!("\nmatchings of the 3x3 grid (weighted, λ sweep):");
    let g = generators::grid(3, 3);
    for lambda in [0.5f64, 1.0, 2.0] {
        let (log_z, bound) = count(ModelSpec::Matching { lambda }, &g, 1e-5).unwrap();
        println!(
            "  Z_match(λ={lambda}) ≈ {:>10.3}   (ln Z = {log_z:.4} ± {bound:.1e})",
            log_z.exp(),
        );
    }
}
