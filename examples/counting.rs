//! Counting via inference — the "counting" of the paper's title.
//!
//! For self-reducible problems the global count decomposes through the
//! chain rule into conditional marginals, so a local inference oracle
//! approximates the partition function with multiplicative error `n·ε`.
//! This example counts independent sets (Fibonacci/Lucas numbers on
//! paths/cycles — an exact cross-check) and matchings.
//!
//! Run with: `cargo run --example counting --release`

use lds::core::counting;
use lds::graph::generators;

fn main() {
    println!("independent sets of paths (Fibonacci: i(P_n) = F(n+2)):");
    let fib = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];
    for n in 3..=10usize {
        let g = generators::path(n);
        let est = counting::count_independent_sets(&g, 1.0, 1e-5).unwrap();
        println!(
            "  i(P{n:<2}) ≈ {:>8.2}   exact {:>4}   |ln error| ≤ {:.1e}",
            est.z(),
            fib[n + 1],
            est.log_error_bound
        );
    }

    println!("\nindependent sets of cycles (Lucas: i(C_n) = L(n)):");
    let lucas = [2u64, 1, 3, 4, 7, 11, 18, 29, 47, 76, 123, 199];
    for n in 4..=10usize {
        let g = generators::cycle(n);
        let est = counting::count_independent_sets(&g, 1.0, 1e-5).unwrap();
        println!(
            "  i(C{n:<2}) ≈ {:>8.2}   exact {:>4}   anchor {:?}",
            est.z(),
            lucas[n],
            est.anchor
        );
    }

    println!("\nmatchings of the 3x3 grid (weighted, λ sweep):");
    let g = generators::grid(3, 3);
    for lambda in [0.5f64, 1.0, 2.0] {
        let est = counting::count_matchings(&g, lambda, 1e-5).unwrap();
        println!(
            "  Z_match(λ={lambda}) ≈ {:>10.3}   (ln Z = {:.4} ± {:.1e})",
            est.z(),
            est.log_z,
            est.log_error_bound
        );
    }
}
