//! The equivalence of approximate inference and approximate sampling
//! (Theorems 3.2 and 3.4), run end to end.
//!
//! Direction 1: an inference oracle (Weitz SAW tree) drives the
//! sequential chain-rule sampler, transformed into a LOCAL algorithm by
//! the network-decomposition scheduler (Lemma 3.1).
//!
//! Direction 2: repeated executions of that LOCAL sampler reconstruct the
//! per-node marginals (error ≤ δ + ε₀ + Monte Carlo noise).
//!
//! Run with: `cargo run --example inference_vs_sampling --release`

use lds::core::sampler::{sample_local, SequentialSampler};
use lds::core::sampling_to_inference;
use lds::gibbs::models::hardcore;
use lds::gibbs::models::two_spin::TwoSpinParams;
use lds::gibbs::{distribution, metrics, PartialConfig};
use lds::graph::{generators, NodeId};
use lds::localnet::{Instance, Network};
use lds::oracle::{DecayRate, TwoSpinSawOracle};

fn main() {
    let n = 12usize;
    let g = generators::cycle(n);
    let model = hardcore::model(&g, 1.0);
    let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
    let delta = 0.05f64;

    // ---- inference ⟹ sampling (Theorem 3.2) ----
    let net = Network::new(Instance::unconditioned(model.clone()), 99);
    let (run, schedule) = sample_local(&net, &oracle, delta, 0);
    println!(
        "Theorem 3.2: sampled {:?} in {} rounds ({} colors, weak radius {})",
        run.outputs, run.rounds, schedule.colors, schedule.max_weak_radius
    );
    println!(
        "sampler locality t(n, δ/n) = {}",
        lds::localnet::slocal::SlocalAlgorithm::locality(
            &SequentialSampler::new(&oracle, delta),
            n
        )
    );

    // ---- sampling ⟹ inference (Theorem 3.4) ----
    let reps = 3000usize;
    let rec = sampling_to_inference::marginals_by_sampling(&net, &oracle, delta, reps, 7);
    let tau = PartialConfig::empty(n);
    let mut worst = 0.0f64;
    for v in g.nodes() {
        let exact = distribution::marginal(&model, &tau, v).unwrap();
        worst = worst.max(metrics::tv_distance(&exact, &rec.marginals[v.index()]));
    }
    println!(
        "\nTheorem 3.4: reconstructed marginals from {} runs; \
         worst node error {:.4} (bound δ + ε₀ = {:.4} + noise), failure rate {:.4}",
        reps, worst, delta + rec.failure_rate, rec.failure_rate
    );
    println!(
        "exact marginal at v0: {:?}\nreconstructed:        {:?}",
        distribution::marginal(&model, &tau, NodeId(0)).unwrap(),
        rec.marginals[0]
    );
}
