//! The equivalence of approximate inference and approximate sampling
//! (Theorems 3.2 and 3.4), run end to end through the engine.
//!
//! Direction 1: `Task::SampleApprox` — an inference oracle (Weitz SAW
//! tree) drives the sequential chain-rule sampler, transformed into a
//! LOCAL algorithm by the network-decomposition scheduler (Lemma 3.1).
//!
//! Direction 2: repeated executions of that sampler (one `run_batch`
//! call over many seeds) reconstruct the per-node marginals, which we
//! compare against `Task::Infer` and the exact enumeration.
//!
//! Run with: `cargo run --example inference_vs_sampling --release`

use lds::engine::{Engine, ModelSpec, Task};
use lds::gibbs::models::hardcore;
use lds::gibbs::{distribution, metrics, PartialConfig, Value};
use lds::graph::{generators, NodeId};

fn main() {
    let n = 12usize;
    let g = generators::cycle(n);
    let delta = 0.05f64;
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(g.clone())
        .delta(delta)
        .seed(99)
        .build()
        .expect("in regime");

    // ---- inference ⟹ sampling (Theorem 3.2) ----
    let run = engine.run(Task::SampleApprox).expect("valid task");
    println!(
        "Theorem 3.2: sampled {:?} in {} rounds (δ = {delta})",
        run.config().expect("sampling task"),
        run.rounds,
    );

    // ---- sampling ⟹ inference (Theorem 3.4) ----
    // Monte Carlo reconstruction through the engine: repeated sampler
    // executions, marginals read off per node.
    let reps = 3000usize;
    let rec = engine.marginals_sampled(reps, 7).expect("reps > 0");
    let (repetitions, failure_rate) = match rec.method {
        lds::engine::MarginalsMethod::Sampled {
            repetitions,
            failure_rate,
            ..
        } => (repetitions, failure_rate),
        _ => unreachable!("marginals_sampled reports its method"),
    };

    let model = hardcore::model(&g, 1.0);
    let tau = PartialConfig::empty(n);
    let mut worst = 0.0f64;
    for v in g.nodes() {
        let exact = distribution::marginal(&model, &tau, v).unwrap();
        worst = worst.max(metrics::tv_distance(&exact, &rec.marginals[v.index()]));
    }
    println!(
        "\nTheorem 3.4: reconstructed marginals from {} runs; \
         worst node error {:.4} (bound δ + ε₀ = {:.4} + noise), failure rate {:.4}",
        repetitions,
        worst,
        delta + failure_rate,
        failure_rate
    );

    // the same engine answers the direct inference query
    let inferred = engine
        .run(Task::Infer {
            vertex: NodeId(0),
            value: Value(1),
        })
        .expect("valid task");
    println!(
        "exact marginal at v0: {:?}\ninferred (Task::Infer): {:?}",
        distribution::marginal(&model, &tau, NodeId(0)).unwrap(),
        inferred.marginal().expect("inference task"),
    );
}
