//! Network serving: multi-tenant engines over real TCP.
//!
//! Starts a [`NetServer`] on a loopback port, then drives it from
//! client threads the way separate processes would: each client
//! registers a model by serialized spec, gets back the engine's stable
//! fingerprint, and routes tasks with it. The walkthrough covers the
//! whole wire surface — two tenants interleaved on one connection,
//! bit-identical agreement with in-process execution, typed errors for
//! unknown fingerprints and out-of-regime registrations, pipelined
//! flooding into a bounded queue (typed `Overloaded` replies, no
//! hangs), and per-tenant stats over the wire.
//!
//! Run with: `cargo run --example net_serving --release`

use std::thread;

use lds::engine::{ModelSpec, Task, Topology};
use lds::graph::generators;
use lds::net::{Client, EngineSpec, NetConfig, NetServer, Op, Reply, WireError};
use lds::serve::{RegistryConfig, ServerConfig};

fn main() {
    // A deliberately tight server: 2-slot request queues so the flood
    // section below actually sheds load.
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            registry: RegistryConfig {
                server: ServerConfig {
                    workers: 1,
                    queue_capacity: 2,
                    ..ServerConfig::default()
                },
                ..RegistryConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("NetServer listening on {addr}\n");

    // --- two tenants, one connection ------------------------------------
    let hardcore = EngineSpec::new(
        ModelSpec::Hardcore { lambda: 1.0 },
        Topology::Graph(generators::cycle(12)),
    );
    let ising = EngineSpec::new(
        ModelSpec::Ising {
            beta: -0.1,
            field: 0.0,
        },
        Topology::Graph(generators::cycle(12)),
    );

    let client = thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.ping().expect("pong");

        let fp_h = c.register(&hardcore).expect("register hardcore");
        let fp_i = c.register(&ising).expect("register ising");
        println!("registered hardcore as {fp_h:#018x}");
        println!("registered ising    as {fp_i:#018x}");

        // Interleave the tenants; compare each served report against
        // in-process execution of the same (fingerprint, task, seed).
        for seed in 0..3u64 {
            for (name, fp, spec) in [("hardcore", fp_h, &hardcore), ("ising", fp_i, &ising)] {
                let served = c.run(fp, Task::SampleExact, seed).expect("served report");
                let direct = spec
                    .build()
                    .expect("in regime")
                    .run_with_seed(Task::SampleExact, seed)
                    .expect("direct report");
                assert_eq!(
                    served.config().unwrap().values(),
                    direct.config().unwrap().values(),
                    "wire must not change output bits"
                );
                println!(
                    "{name} seed {seed}: served == direct ({} spins)",
                    served.config().unwrap().len()
                );
            }
        }

        // --- typed errors ------------------------------------------------
        match c.run(0xDEAD_BEEF, Task::Count, 0) {
            Err(lds::net::ClientError::Server(WireError::UnknownFingerprint(fp))) => {
                println!("\nunknown fingerprint {fp:#x}: typed error, no hang")
            }
            other => panic!("expected UnknownFingerprint, got {other:?}"),
        }
        let out_of_regime = EngineSpec::new(
            ModelSpec::Hardcore { lambda: 50.0 },
            Topology::Graph(generators::grid(4, 4)),
        );
        match c.register(&out_of_regime) {
            Err(lds::net::ClientError::Server(WireError::Rejected(why))) => {
                println!("λ = 50 on a grid rejected at registration: {why}")
            }
            other => panic!("expected Rejected, got {other:?}"),
        }

        // --- pipelined flood into the 2-slot queue -----------------------
        const FLOOD: u64 = 48;
        let mut ids = Vec::new();
        for seed in 0..FLOOD {
            ids.push(c.send(Op::Run {
                fingerprint: fp_h,
                task: Task::SampleExact,
                seed: 10_000 + seed,
                deadline: None,
            }));
        }
        let (mut reports, mut shed) = (0u64, 0u64);
        for _ in 0..FLOOD {
            match c.recv().expect("pipelined response").reply {
                Reply::Report(_) => reports += 1,
                Reply::Error(WireError::Overloaded { .. }) => shed += 1,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        println!(
            "\nflood of {FLOOD} pipelined runs: {reports} served, \
             {shed} shed as typed Overloaded replies"
        );

        // --- stats over the wire -----------------------------------------
        let stats = c.stats(fp_h, false).expect("stats");
        println!("\n--- hardcore tenant ServerStats (over the wire) ---\n{stats}");
        (fp_h, fp_i)
    });

    let (fp_h, fp_i) = client.join().expect("client thread");

    let reg = server.registry().stats();
    println!(
        "\nregistry: {} live tenants ({:#x} hot, {:#x} next), \
         {} registrations, {} hits, {} evictions",
        reg.live, fp_h, fp_i, reg.registrations, reg.hits, reg.evictions
    );

    server.shutdown();
    println!("server drained and shut down");
}
