//! Sampling proper `q`-colorings of triangle-free graphs with
//! `q ≥ αΔ`, `α > α* ≈ 1.763` (Corollary 5.3, third bullet).
//!
//! The example also demonstrates *self-reduction* (Remark 2.2): pinning a
//! partial coloring turns the instance into a list-coloring of the
//! remaining graph, and the sampler honors the pins.
//!
//! Run with: `cargo run --example colorings_triangle_free --release`

use lds::core::{apps, complexity};
use lds::gibbs::models::coloring;
use lds::gibbs::{distribution, PartialConfig, Value};
use lds::graph::{generators, NodeId};

fn main() {
    let g = generators::cycle(8);
    let q = 4usize;
    println!(
        "C8 with q = {q} colors; α* = {:.4}, α*·Δ = {:.3} < q ⇒ in regime",
        complexity::alpha_star(),
        complexity::alpha_star() * g.max_degree() as f64
    );

    let run = apps::sample_coloring(&g, q, 0.002, 3).expect("regime checked above");
    println!("sampled coloring: {:?}", run.output);
    println!("proper: {}", coloring::is_proper(&g, &run.output));
    println!("rounds: {} (bound shape log³n = {:.1})", run.rounds, run.bound_rounds);

    // self-reduction: pin node 0 to color 2 and inspect the conditional
    // marginal of its neighbor — colors 0,1,3 only (Remark 2.2's lists)
    let model = coloring::model(&g, q);
    let mut tau = PartialConfig::empty(8);
    tau.pin(NodeId(0), Value(2));
    let mu = distribution::marginal(&model, &tau, NodeId(1)).unwrap();
    println!("\nconditional marginal at node 1 given node 0 = color 2: {mu:?}");
    assert_eq!(mu[2], 0.0, "neighbor cannot reuse the pinned color");
    let lists = coloring::residual_list(&g, q, |u| tau.get(u), NodeId(1));
    println!("residual list at node 1 (Remark 2.2): {lists:?}");

    // the regime check rejects triangles and tight palettes
    let k3 = generators::complete(3);
    println!(
        "\nK3 rejected: {}",
        apps::sample_coloring(&k3, 9, 0.01, 0).unwrap_err()
    );
}
