//! Sampling proper `q`-colorings of triangle-free graphs with
//! `q ≥ αΔ`, `α > α* ≈ 1.763` (Corollary 5.3, third bullet).
//!
//! The example also demonstrates *self-reduction* (Remark 2.2): pinning a
//! partial coloring through the engine builder turns the instance into a
//! list-coloring of the remaining graph, and both sampling and inference
//! tasks honor the pins. Regime rejections (triangles, tight palettes)
//! happen once, at `build()` time, with structured errors.
//!
//! Run with: `cargo run --example colorings_triangle_free --release`

use lds::engine::{Engine, ModelSpec, Task};
use lds::gibbs::models::coloring;
use lds::gibbs::{PartialConfig, Value};
use lds::graph::{generators, NodeId};

fn main() {
    let g = generators::cycle(8);
    let q = 4usize;
    let engine = Engine::builder()
        .model(ModelSpec::Coloring { q })
        .graph(g.clone())
        .epsilon(0.002)
        .seed(3)
        .build()
        .expect("q > α*·Δ on a triangle-free graph");
    println!(
        "C8 with q = {q} colors; decay rate α*Δ/q = {:.3} < 1 ⇒ in regime \
         (oracle: {})",
        engine.rate(),
        engine.oracle_name()
    );

    let run = engine.run(Task::SampleExact).expect("valid task");
    let config = run.config().expect("sampling task");
    println!("sampled coloring: {config:?}");
    println!("proper: {}", coloring::is_proper(&g, config));
    println!(
        "rounds: {} (bound shape log³n = {:.1})",
        run.rounds, run.bound_rounds
    );

    // self-reduction: pin node 0 to color 2 and inspect the conditional
    // marginal of its neighbor — colors 0,1,3 only (Remark 2.2's lists)
    let mut tau = PartialConfig::empty(8);
    tau.pin(NodeId(0), Value(2));
    let pinned = Engine::builder()
        .model(ModelSpec::Coloring { q })
        .graph(g.clone())
        .pinning(tau.clone())
        .build()
        .expect("pinning one node keeps the instance feasible");
    let mu = pinned
        .run(Task::Infer {
            vertex: NodeId(1),
            value: Value(2),
        })
        .expect("valid task");
    println!(
        "\nconditional marginal at node 1 given node 0 = color 2: {:?}",
        mu.marginal().expect("inference task")
    );
    assert_eq!(
        mu.marginal().expect("inference task")[2],
        0.0,
        "neighbor cannot reuse the pinned color"
    );
    let lists = coloring::residual_list(&g, q, |u| tau.get(u), NodeId(1));
    println!("residual list at node 1 (Remark 2.2): {lists:?}");

    // the regime check rejects triangles and tight palettes at build time
    let k3 = generators::complete(3);
    println!(
        "\nK3 rejected: {}",
        Engine::builder()
            .model(ModelSpec::Coloring { q: 9 })
            .graph(k3)
            .build()
            .unwrap_err()
    );
}
