//! Serving: a bursty multi-client workload against the `lds-serve`
//! front-end.
//!
//! Simulates several client threads firing bursts of mixed
//! `SampleExact`/`Count` requests at one shared engine. Clients reuse a
//! small set of "hot" seeds (as retrying or fan-in clients do), so the
//! run exercises all three serving mechanisms at once: the coalescer
//! folds each burst into a few `run_batch` calls, the idempotency cache
//! answers repeated `(task, seed)` keys without re-executing, and
//! admission control sheds load when a burst outruns the queue. Prints
//! the final `ServerStats`.
//!
//! Run with: `cargo run --example serving --release`

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use lds::engine::{Engine, ModelSpec, Task};
use lds::graph::generators;
use lds::serve::{Server, ServerConfig, SubmitError};

const CLIENTS: u64 = 4;
const BURSTS: u64 = 3;
const REQUESTS_PER_BURST: u64 = 24;
const HOT_SEEDS: u64 = 6;

fn main() {
    let engine = Arc::new(
        Engine::builder()
            .model(ModelSpec::Hardcore { lambda: 1.0 })
            .graph(generators::cycle(14))
            .epsilon(0.001)
            .build()
            .expect("λ = 1 in regime on a cycle"),
    );
    println!(
        "engine: hardcore λ = 1 on C14, fingerprint {:#018x}, pool width {}",
        engine.fingerprint(),
        engine.threads()
    );

    let server = Arc::new(Server::new(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            coalesce_window: Duration::from_micros(500),
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    ));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let (mut served, mut shed) = (0u64, 0u64);
                for burst in 0..BURSTS {
                    let mut tickets = Vec::new();
                    for i in 0..REQUESTS_PER_BURST {
                        // zipf-ish mix: most requests hit the shared hot
                        // seeds, a few bring fresh ones
                        let n = burst * REQUESTS_PER_BURST + i;
                        let (task, seed) = if n % 4 == 3 {
                            (Task::Count, n % HOT_SEEDS)
                        } else if n % 7 == 6 {
                            (Task::SampleExact, 1_000 + c * 100 + n) // cold
                        } else {
                            (Task::SampleExact, n % HOT_SEEDS) // hot
                        };
                        match server.try_submit(task, seed) {
                            Ok(t) => tickets.push(t),
                            Err(SubmitError::Overloaded { .. }) => shed += 1,
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                    for t in tickets {
                        t.wait().expect("accepted request served");
                        served += 1;
                    }
                    // the lull between bursts
                    thread::sleep(Duration::from_millis(2));
                }
                (c, served, shed)
            })
        })
        .collect();

    for client in clients {
        let (c, served, shed) = client.join().expect("client thread");
        println!("client {c}: {served} served, {shed} shed by admission control");
    }

    let stats = server.stats();
    println!("\n--- ServerStats ---\n{stats}");
    println!(
        "\ncoalescing folded {} requests into {} engine executions \
         ({:.1}% answered without executing)",
        stats.completed,
        stats.engine_executions,
        100.0 * (1.0 - stats.engine_executions as f64 / stats.completed.max(1) as f64)
    );
}
