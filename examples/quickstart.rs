//! Quickstart: sample exactly from the hardcore model in the LOCAL model.
//!
//! Builds an `Engine` for a hardcore instance on a cycle — the
//! uniqueness-regime check runs once, at build time — then draws an
//! exact sample via the distributed JVV sampler (Theorem 4.2) and prints
//! the sampled independent set with its round cost.
//!
//! Run with: `cargo run --example quickstart --release`

use lds::engine::{Engine, ModelSpec, Task};
use lds::gibbs::models::hardcore;
use lds::graph::generators;

fn main() {
    let g = generators::cycle(16);
    let delta = g.max_degree();
    let lambda = 1.0;
    let engine = Engine::builder()
        .model(ModelSpec::Hardcore { lambda })
        .graph(g.clone())
        .epsilon(0.001)
        .seed(42)
        .build()
        .expect("λ below threshold");
    println!(
        "graph: C16 (Δ = {delta}), hardcore λ = {lambda}, oracle: {}",
        engine.oracle_name()
    );

    let run = engine.run(Task::SampleExact).expect("valid task");

    let config = run.config().expect("sampling task");
    let occupied = hardcore::occupied_set(config);
    println!("sampled independent set: {occupied:?}");
    println!("independent: {}", hardcore::is_independent_set(&g, config));
    println!(
        "rounds: {} (paper bound shape O(log³ n) = {:.1})",
        run.rounds, run.bound_rounds
    );
    println!(
        "all nodes succeeded: {} (exactness is conditional on success)",
        run.succeeded
    );
    println!(
        "rejection acceptance product: {:.3} (≥ e^{{-5n²ε}} = {:.3}); wall time {:?}",
        run.acceptance().expect("exact sampling task"),
        (-5.0 * 256.0 * 0.001f64).exp(),
        run.wall_time,
    );
}
