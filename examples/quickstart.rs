//! Quickstart: sample exactly from the hardcore model in the LOCAL model.
//!
//! Builds a cycle, checks the uniqueness regime, runs the distributed
//! JVV sampler (Theorem 4.2), and prints the sampled independent set with
//! its round cost.
//!
//! Run with: `cargo run --example quickstart --release`

use lds::core::{apps, complexity};
use lds::gibbs::models::hardcore;
use lds::graph::generators;

fn main() {
    let g = generators::cycle(16);
    let delta = g.max_degree();
    let lambda = 1.0;
    let lc = complexity::hardcore_uniqueness_threshold(delta);
    println!("graph: C16 (Δ = {delta}), hardcore λ = {lambda}, λ_c(Δ) = {lc}");

    let run = apps::sample_hardcore(&g, lambda, 0.001, 42).expect("λ below threshold");

    let occupied = hardcore::occupied_set(&run.output);
    println!("sampled independent set: {occupied:?}");
    println!(
        "independent: {}",
        hardcore::is_independent_set(&g, &run.output)
    );
    println!(
        "rounds: {} (paper bound shape O(log³ n) = {:.1})",
        run.rounds, run.bound_rounds
    );
    println!(
        "all nodes succeeded: {} (exactness is conditional on success)",
        run.succeeded
    );
    println!(
        "rejection acceptance product: {:.3} (≥ e^{{-5n²ε}} = {:.3})",
        run.acceptance(),
        (-5.0 * 256.0 * 0.001f64).exp()
    );
}
