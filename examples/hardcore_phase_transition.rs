//! The paper's headline result: the first computational phase transition
//! for distributed sampling, at the hardcore uniqueness threshold
//! `λ_c(Δ) = (Δ−1)^{Δ−1}/(Δ−2)^Δ`.
//!
//! Below `λ_c`, boundary influence decays exponentially (strong spatial
//! mixing) and `O(log³ n)`-round exact sampling exists (Corollary 5.3).
//! Above `λ_c`, long-range order survives to arbitrary distance, so any
//! sampler needs `Ω(diam)` rounds (Feng–Sun–Yin PODC'17). This example
//! measures both sides on the Δ-regular tree.
//!
//! Run with: `cargo run --example hardcore_phase_transition --release`

use lds::core::complexity;
use lds::engine::{Engine, EngineError, ModelSpec};
use lds::graph::generators;
use lds::ssm::{estimator, phase};

fn main() {
    let delta = 4usize;
    let lc = complexity::hardcore_uniqueness_threshold(delta);
    println!("hardcore model on the {delta}-regular tree; λ_c({delta}) = {lc:.4}\n");

    println!("boundary-to-root gap vs depth (exact scalar recursion):");
    println!("{:>10} {:>14} {:>14}", "depth", "λ=0.5·λ_c", "λ=2·λ_c");
    for depth in [2usize, 4, 8, 16, 32, 64] {
        let low = estimator::tree_gap_series(delta - 1, 0.5 * lc, depth);
        let high = estimator::tree_gap_series(delta - 1, 2.0 * lc, depth);
        println!(
            "{:>10} {:>14.3e} {:>14.3e}",
            depth,
            low.last().unwrap().gap,
            high.last().unwrap().gap
        );
    }

    println!("\nphase sweep (fitted decay rate and required radius for error 0.01):");
    println!(
        "{:>10} {:>14} {:>14} {:>16} {:>12}",
        "λ/λ_c", "fitted α", "theory α", "radius(0.01)", "regime"
    );
    let ratios = [0.3, 0.6, 0.9, 1.1, 1.5, 2.5];
    for p in phase::hardcore_tree_sweep(delta, &ratios, 300) {
        let alpha = p
            .fitted
            .as_ref()
            .map(|f| format!("{:.4}", f.alpha))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>10.2} {:>14} {:>14.4} {:>16} {:>12}",
            p.lambda_ratio,
            alpha,
            p.theory_rate,
            if p.required_radius.is_finite() {
                format!("{:.0}", p.required_radius)
            } else {
                "inf (Ω(diam))".into()
            },
            if p.unique { "unique" } else { "NON-unique" }
        );
    }
    println!(
        "\nThe radius needed by any LOCAL inference algorithm diverges at λ_c — \
         the tractable/intractable divide of distributed sampling."
    );

    // the engine enforces exactly this divide at build time: the same
    // λ that samples fine on one side of λ_c is rejected on the other,
    // with the violated threshold reported in structured form.
    let torus = generators::torus(4, 4); // Δ = 4, λ_c = 27/16
    let below = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 0.8 * lc })
        .graph(torus.clone())
        .build();
    let above = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.3 * lc })
        .graph(torus)
        .build();
    println!(
        "\nengine at 0.8·λ_c: built (rate {:.3})",
        below.expect("below threshold").rate()
    );
    match above.expect_err("above threshold") {
        EngineError::OutOfRegime(oor) => println!(
            "engine at 1.3·λ_c: rejected (computed λ = {:.4} vs critical λ_c = {:.4})",
            oor.computed, oor.critical
        ),
        other => panic!("expected OutOfRegime, got {other:?}"),
    }
}
