//! Property-based tests for Gibbs distribution invariants.

use lds_gibbs::models::{coloring, hardcore, ising, matching::MatchingInstance, two_spin};
use lds_gibbs::{distribution, metrics, PartialConfig, Value};
use lds_graph::{generators, NodeId};
use proptest::prelude::*;

fn small_graph(idx: usize) -> lds_graph::Graph {
    match idx % 5 {
        0 => generators::path(5),
        1 => generators::cycle(5),
        2 => generators::star(5),
        3 => generators::complete(4),
        _ => generators::grid(2, 3),
    }
}

proptest! {
    /// Chain rule: Z^{τ ∧ (v←c)} summed over c equals Z^τ.
    #[test]
    fn partition_function_chain_rule(
        gidx in 0usize..5,
        lambda in 0.1f64..3.0,
        v in 0usize..4,
    ) {
        let g = small_graph(gidx);
        let m = hardcore::model(&g, lambda);
        let tau = PartialConfig::empty(g.node_count());
        let v = NodeId::from_index(v % g.node_count());
        let z: f64 = distribution::partition_function(&m, &tau);
        let z_split: f64 = (0..2)
            .map(|c| {
                distribution::partition_function(&m, &tau.with_pin(v, Value(c)))
            })
            .sum();
        prop_assert!((z - z_split).abs() < 1e-9 * z.max(1.0));
    }

    /// Marginals from the chain rule match direct enumeration.
    #[test]
    fn marginal_is_conditional_z_ratio(
        gidx in 0usize..5,
        lambda in 0.1f64..3.0,
        v in 0usize..4,
    ) {
        let g = small_graph(gidx);
        let m = hardcore::model(&g, lambda);
        let tau = PartialConfig::empty(g.node_count());
        let v = NodeId::from_index(v % g.node_count());
        let mu = distribution::marginal(&m, &tau, v).unwrap();
        let z = distribution::partition_function(&m, &tau);
        for c in 0..2 {
            let zc = distribution::partition_function(&m, &tau.with_pin(v, Value(c)));
            prop_assert!((mu[c as usize] - zc / z).abs() < 1e-10);
        }
    }

    /// Marginals are probability vectors.
    #[test]
    fn marginals_normalize(
        gidx in 0usize..5,
        q in 3usize..5,
        v in 0usize..4,
    ) {
        let g = small_graph(gidx);
        let m = coloring::model(&g, q);
        let tau = PartialConfig::empty(g.node_count());
        let v = NodeId::from_index(v % g.node_count());
        if let Some(mu) = distribution::marginal(&m, &tau, v) {
            let total: f64 = mu.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-10);
            prop_assert!(mu.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    /// TV distance is a metric bounded by 1 and symmetric.
    #[test]
    fn tv_distance_is_a_metric(
        a in proptest::collection::vec(0.0f64..1.0, 4),
        b in proptest::collection::vec(0.0f64..1.0, 4),
    ) {
        let mut a = a; let mut b = b;
        prop_assume!(a.iter().sum::<f64>() > 0.0 && b.iter().sum::<f64>() > 0.0);
        metrics::normalize(&mut a);
        metrics::normalize(&mut b);
        let d = metrics::tv_distance(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        prop_assert!((d - metrics::tv_distance(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(metrics::tv_distance(&a, &a), 0.0);
    }

    /// Multiplicative error dominates TV distance scaled appropriately:
    /// err ≤ ε implies dTV ≤ (e^ε − 1)/2... we check the weaker sanity
    /// property: err = 0 iff identical support and values.
    #[test]
    fn multiplicative_err_zero_iff_equal(
        a in proptest::collection::vec(0.01f64..1.0, 3),
    ) {
        let mut a = a;
        metrics::normalize(&mut a);
        prop_assert_eq!(metrics::multiplicative_err(&a, &a), 0.0);
        let mut b = a.clone();
        b[0] *= 1.5;
        metrics::normalize(&mut b);
        prop_assert!(metrics::multiplicative_err(&a, &b) > 0.0);
    }

    /// Hardcore marginals are monotone in fugacity at a fixed vertex of a
    /// vertex-transitive graph (sanity: occupation probability grows with λ).
    #[test]
    fn hardcore_occupation_monotone_in_lambda(l1 in 0.1f64..2.0, dl in 0.1f64..2.0) {
        let g = generators::cycle(6);
        let m1 = hardcore::model(&g, l1);
        let m2 = hardcore::model(&g, l1 + dl);
        let tau = PartialConfig::empty(6);
        let p1 = distribution::marginal(&m1, &tau, NodeId(0)).unwrap()[1];
        let p2 = distribution::marginal(&m2, &tau, NodeId(0)).unwrap()[1];
        prop_assert!(p2 > p1);
    }

    /// Ising symmetry: with no field, the marginal is 1/2 everywhere.
    #[test]
    fn ising_zero_field_symmetry(beta in -1.0f64..1.0, gidx in 0usize..5) {
        let g = small_graph(gidx);
        let m = ising::model(&g, ising::IsingParams::new(beta, 0.0));
        let tau = PartialConfig::empty(g.node_count());
        let mu = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        prop_assert!((mu[0] - 0.5).abs() < 1e-9);
    }

    /// Two-spin with β=γ=1 is a product measure: marginal = λ/(1+λ).
    #[test]
    fn independent_two_spin_is_product(lambda in 0.1f64..4.0, gidx in 0usize..5) {
        let g = small_graph(gidx);
        let m = two_spin::model(&g, two_spin::TwoSpinParams::new(1.0, 1.0, lambda));
        let tau = PartialConfig::empty(g.node_count());
        let mu = distribution::marginal(&m, &tau, NodeId(1)).unwrap();
        prop_assert!((mu[1] - lambda / (1.0 + lambda)).abs() < 1e-9);
    }

    /// Matching instances: every feasible configuration decodes to a
    /// valid matching, and Z matches the matching polynomial degree bound.
    #[test]
    fn matching_feasible_configs_decode(gidx in 0usize..5, lambda in 0.2f64..2.0) {
        let g = small_graph(gidx);
        let inst = MatchingInstance::new(&g, lambda);
        let n = inst.model().node_count();
        if n <= 10 {
            let joint = distribution::joint_distribution(
                inst.model(), &PartialConfig::empty(n)).unwrap();
            for (c, _) in &joint {
                prop_assert!(inst.is_matching(&inst.edges_of(c)));
            }
        }
    }

    /// Exact sampling conditional consistency: pinning then sampling
    /// honors the pin.
    #[test]
    fn exact_sampler_honors_pins(seed in any::<u64>(), lambda in 0.3f64..2.0) {
        use rand::SeedableRng;
        let g = generators::cycle(5);
        let m = hardcore::model(&g, lambda);
        let mut tau = PartialConfig::empty(5);
        tau.pin(NodeId(2), Value(1));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sample = distribution::sample_exact(&m, &tau, &mut rng);
        prop_assert_eq!(sample.get(NodeId(2)), Value(1));
        prop_assert!(m.weight(&sample) > 0.0);
    }
}
