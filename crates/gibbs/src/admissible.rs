//! The *locally admissible* property (paper, Definition 2.5).
//!
//! A Gibbs distribution is locally admissible when every **locally
//! feasible** pinning (one violating no fully-pinned constraint) is also
//! **feasible** (extensible to a positive-weight full configuration). For
//! such models, constructing a feasible solution is trivial for a
//! sequential local oblivious procedure (Remark 2.3) — the property `(⋆⋆)`
//! that Theorem 5.1 requires.
//!
//! Exhaustive verification is exponential; it is intended for the small
//! instances used in tests and experiment sanity checks.

use lds_graph::NodeId;

use crate::{distribution, GibbsModel, PartialConfig, Value};

/// Exhaustively checks local admissibility: for **every** subset `Λ ⊆ V`
/// and **every** `σ ∈ Σ^Λ`, local feasibility implies feasibility.
///
/// Runs in time `O((q+1)^n ·` cost of a feasibility check`)`; use only on
/// small models.
///
/// Returns the first counterexample (a locally feasible but infeasible
/// pinning) or `None` if the model is locally admissible.
pub fn find_inadmissible_pinning(model: &GibbsModel) -> Option<PartialConfig> {
    let n = model.node_count();
    let q = model.alphabet_size();
    // iterate over all (q+1)^n partial configurations via mixed-radix count
    let mut digits = vec![0usize; n]; // 0 = unpinned, 1..=q = Value(d-1)
    loop {
        let mut p = PartialConfig::empty(n);
        for (i, &d) in digits.iter().enumerate() {
            if d > 0 {
                p.pin(NodeId::from_index(i), Value::from_index(d - 1));
            }
        }
        if model.is_locally_feasible(&p) && !distribution::is_feasible(model, &p) {
            return Some(p);
        }
        // increment mixed-radix counter
        let mut i = 0;
        loop {
            if i == n {
                return None;
            }
            digits[i] += 1;
            if digits[i] <= q {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

/// Returns `true` if the model is locally admissible (exhaustive check;
/// exponential time — small models only).
pub fn is_locally_admissible(model: &GibbsModel) -> bool {
    find_inadmissible_pinning(model).is_none()
}

/// Greedily extends `pinning` to a full locally feasible configuration by
/// scanning free nodes in id order and choosing, at each node, a value
/// that keeps the partial configuration locally feasible.
///
/// For locally admissible models this always succeeds from a feasible
/// pinning (this is the "sequential local oblivious" construction of
/// Remark 2.3); for general models it may fail, returning `None`.
pub fn greedy_feasible_extension(
    model: &GibbsModel,
    pinning: &PartialConfig,
) -> Option<PartialConfig> {
    let mut current = pinning.clone();
    if !model.is_locally_feasible(&current) {
        return None;
    }
    let free: Vec<NodeId> = current.free_nodes().collect();
    for v in free {
        let mut placed = false;
        for val in (0..model.alphabet_size()).map(Value::from_index) {
            let candidate = current.with_pin(v, val);
            if model.is_locally_feasible(&candidate) {
                current = candidate;
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{coloring, hardcore};
    use lds_graph::generators;

    #[test]
    fn hardcore_is_locally_admissible() {
        let g = generators::cycle(4);
        let m = hardcore::model(&g, 1.0);
        assert!(is_locally_admissible(&m));
    }

    #[test]
    fn colorings_with_enough_colors_are_admissible() {
        // (Δ+1)-coloring of a cycle: Δ = 2, q = 3
        let g = generators::cycle(4);
        let m = coloring::model(&g, 3);
        assert!(is_locally_admissible(&m));
    }

    #[test]
    fn two_coloring_of_even_cycle_is_not_admissible() {
        // proper 2-colorings of C4 exist, but pinning opposite corners
        // with the same color is locally feasible yet infeasible.
        let g = generators::cycle(4);
        let m = coloring::model(&g, 2);
        let bad = find_inadmissible_pinning(&m);
        assert!(bad.is_some());
        let bad = bad.unwrap();
        assert!(m.is_locally_feasible(&bad));
        assert!(!distribution::is_feasible(&m, &bad));
    }

    #[test]
    fn greedy_extension_works_for_admissible_models() {
        let g = generators::cycle(5);
        let m = hardcore::model(&g, 2.0);
        let mut p = PartialConfig::empty(5);
        p.pin(NodeId(0), Value(1));
        let full = greedy_feasible_extension(&m, &p).unwrap();
        assert!(full.is_complete());
        assert!(m.weight(&full.to_config()) > 0.0);
        assert_eq!(full.get(NodeId(0)), Some(Value(1)));
    }

    #[test]
    fn greedy_extension_fails_on_locally_infeasible_pinning() {
        let g = generators::path(2);
        let m = hardcore::model(&g, 1.0);
        let mut p = PartialConfig::empty(2);
        p.pin(NodeId(0), Value(1));
        p.pin(NodeId(1), Value(1));
        assert!(greedy_feasible_extension(&m, &p).is_none());
    }
}
