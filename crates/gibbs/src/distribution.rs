//! Exact computations on Gibbs distributions by pruned enumeration.
//!
//! These routines are the workspace's ground truth: partition functions
//! `Z`, (conditional) marginal distributions `μ_v^τ`, full joint
//! distributions, and exact chain-rule sampling. All run in time
//! exponential in the number of *free* nodes (with early pruning on hard
//! constraints), so they are meant for small instances and for the
//! restricted ball models used by the paper's local computations
//! (Lemma 4.1, Theorem 5.1).

use lds_graph::NodeId;
use rand::Rng;

use crate::{Config, GibbsModel, PartialConfig, Value};

/// Visits every feasible completion of `pinning` (weight > 0) in
/// lexicographic order of free-node values, calling `visit(values, weight)`.
///
/// Enumeration assigns nodes in id order and prunes as soon as a completed
/// factor evaluates to zero.
pub fn enumerate_feasible(
    model: &GibbsModel,
    pinning: &PartialConfig,
    mut visit: impl FnMut(&[Value], f64),
) {
    let n = model.node_count();
    assert_eq!(pinning.len(), n, "pinning size mismatch");
    let q = model.alphabet_size();
    let mut values = vec![Value(0); n];
    // weight accumulated after assigning prefix 0..=depth-1
    let mut prefix = vec![1.0f64; n + 1];

    // iterative DFS over depth 0..n
    #[derive(Clone, Copy)]
    enum Step {
        Enter(usize),
        Try(usize, u32),
    }
    let mut stack = vec![Step::Enter(0)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Enter(depth) => {
                if depth == n {
                    visit(&values, prefix[n]);
                    continue;
                }
                stack.push(Step::Try(depth, 0));
            }
            Step::Try(depth, k) => {
                let v = NodeId::from_index(depth);
                let pinned = pinning.get(v);
                // which values to try at this node
                let (val, next) = match pinned {
                    Some(val) => {
                        if k > 0 {
                            continue;
                        }
                        (val, u32::MAX) // only one branch
                    }
                    None => {
                        if k as usize >= q {
                            continue;
                        }
                        (Value(k), k + 1)
                    }
                };
                if next != u32::MAX {
                    stack.push(Step::Try(depth, next));
                } else if pinned.is_none() {
                    unreachable!();
                }
                values[depth] = val;
                let mut w = prefix[depth];
                for &fi in model.factors_completed_at(v) {
                    let f = &model.factors()[fi];
                    w *= f
                        .eval_partial(|s| (s.index() <= depth).then(|| values[s.index()]))
                        .expect("factor complete at this depth");
                    if w == 0.0 {
                        break;
                    }
                }
                if w > 0.0 {
                    prefix[depth + 1] = w;
                    stack.push(Step::Enter(depth + 1));
                }
            }
        }
    }
}

/// The (conditional) partition function
/// `Z^τ = Σ_{σ: σ_Λ = τ} w(σ)`.
pub fn partition_function(model: &GibbsModel, pinning: &PartialConfig) -> f64 {
    let mut z = 0.0;
    enumerate_feasible(model, pinning, |_, w| z += w);
    z
}

/// Number of feasible completions of the pinning.
pub fn feasible_count(model: &GibbsModel, pinning: &PartialConfig) -> usize {
    let mut c = 0usize;
    enumerate_feasible(model, pinning, |_, _| c += 1);
    c
}

/// Returns `true` if the pinning is feasible with respect to `μ`, i.e. has
/// at least one positive-weight completion. Short-circuits on the first
/// witness.
pub fn is_feasible(model: &GibbsModel, pinning: &PartialConfig) -> bool {
    // enumerate but bail on first hit via an early-exit search
    exists_feasible_rec(
        model,
        pinning,
        0,
        &mut vec![Value(0); model.node_count()],
        1.0,
    )
}

fn exists_feasible_rec(
    model: &GibbsModel,
    pinning: &PartialConfig,
    depth: usize,
    values: &mut Vec<Value>,
    prefix: f64,
) -> bool {
    let n = model.node_count();
    if depth == n {
        return prefix > 0.0;
    }
    let v = NodeId::from_index(depth);
    let candidates: Vec<Value> = match pinning.get(v) {
        Some(val) => vec![val],
        None => (0..model.alphabet_size()).map(Value::from_index).collect(),
    };
    for val in candidates {
        values[depth] = val;
        let mut w = prefix;
        for &fi in model.factors_completed_at(v) {
            let f = &model.factors()[fi];
            w *= f
                .eval_partial(|s| (s.index() <= depth).then(|| values[s.index()]))
                .expect("factor complete");
            if w == 0.0 {
                break;
            }
        }
        if w > 0.0 && exists_feasible_rec(model, pinning, depth + 1, values, w) {
            return true;
        }
    }
    false
}

/// The exact conditional marginal distribution `μ_v^τ` as a length-`q`
/// probability vector; `None` if the pinning is infeasible (`Z^τ = 0`).
///
/// If `v` is pinned by `τ`, the marginal is the point mass on `τ(v)`.
pub fn marginal(model: &GibbsModel, pinning: &PartialConfig, v: NodeId) -> Option<Vec<f64>> {
    let q = model.alphabet_size();
    let mut mass = vec![0.0f64; q];
    enumerate_feasible(model, pinning, |values, w| {
        mass[values[v.index()].index()] += w;
    });
    let z: f64 = mass.iter().sum();
    if z <= 0.0 {
        return None;
    }
    for m in &mut mass {
        *m /= z;
    }
    Some(mass)
}

/// The full joint distribution `μ^τ` as a list of `(configuration,
/// probability)` pairs over feasible completions; `None` if infeasible.
pub fn joint_distribution(
    model: &GibbsModel,
    pinning: &PartialConfig,
) -> Option<Vec<(Config, f64)>> {
    let mut items: Vec<(Config, f64)> = Vec::new();
    let mut z = 0.0;
    enumerate_feasible(model, pinning, |values, w| {
        items.push((Config::from_values(values.to_vec()), w));
        z += w;
    });
    if z <= 0.0 {
        return None;
    }
    for (_, p) in &mut items {
        *p /= z;
    }
    Some(items)
}

/// Draws one exact sample from `μ^τ` by two-pass enumeration (compute `Z`,
/// then walk the enumeration until the cumulative weight passes `u·Z`).
///
/// # Panics
///
/// Panics if the pinning is infeasible.
pub fn sample_exact<R: Rng + ?Sized>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    rng: &mut R,
) -> Config {
    let z = partition_function(model, pinning);
    assert!(z > 0.0, "infeasible pinning has no samples");
    let target = rng.gen_range(0.0..z);
    let mut acc = 0.0;
    let mut out: Option<Config> = None;
    enumerate_feasible(model, pinning, |values, w| {
        if out.is_none() {
            acc += w;
            if acc > target {
                out = Some(Config::from_values(values.to_vec()));
            }
        }
    });
    out.expect("cumulative weight reaches Z")
}

/// Samples a value from a probability vector.
///
/// # Panics
///
/// Panics if the vector does not sum to something positive.
pub fn sample_from_marginal<R: Rng + ?Sized>(marginal: &[f64], rng: &mut R) -> Value {
    let total: f64 = marginal.iter().sum();
    assert!(total > 0.0, "marginal has no mass");
    let mut target = rng.gen_range(0.0..total);
    for (i, &p) in marginal.iter().enumerate() {
        if target < p {
            return Value::from_index(i);
        }
        target -= p;
    }
    // numerical fallthrough: return the last positive entry
    let last = marginal
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("positive entry exists");
    Value::from_index(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::hardcore;
    use crate::Factor;
    use lds_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hardcore_cycle4_partition_function() {
        let g = generators::cycle(4);
        let m = hardcore::model(&g, 1.0);
        let z = partition_function(&m, &PartialConfig::empty(4));
        // independent sets of C4: {}, 4 singletons, 2 opposite pairs
        assert!((z - 7.0).abs() < 1e-12);
        assert_eq!(feasible_count(&m, &PartialConfig::empty(4)), 7);
    }

    #[test]
    fn hardcore_weighted_partition_function() {
        let g = generators::path(2);
        let m = hardcore::model(&g, 2.0);
        // Z = 1 + λ + λ = 5
        let z = partition_function(&m, &PartialConfig::empty(2));
        assert!((z - 5.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_partition_function() {
        let g = generators::cycle(4);
        let m = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(4);
        tau.pin(NodeId(0), Value(1));
        // configs with node 0 occupied: {0} and {0, 2}
        let z = partition_function(&m, &tau);
        assert!((z - 2.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_matches_hand_count() {
        let g = generators::cycle(4);
        let m = hardcore::model(&g, 1.0);
        let mu = marginal(&m, &PartialConfig::empty(4), NodeId(0)).unwrap();
        // node 0 occupied in {0} and {0,2}: 2 of 7
        assert!((mu[1] - 2.0 / 7.0).abs() < 1e-12);
        assert!((mu[0] - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_of_pinned_node_is_point_mass() {
        let g = generators::path(3);
        let m = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(3);
        tau.pin(NodeId(1), Value(1));
        let mu = marginal(&m, &tau, NodeId(1)).unwrap();
        assert_eq!(mu, vec![0.0, 1.0]);
        // neighbors are forced out
        let mu0 = marginal(&m, &tau, NodeId(0)).unwrap();
        assert_eq!(mu0, vec![1.0, 0.0]);
    }

    #[test]
    fn infeasible_pinning_detected() {
        let g = generators::path(2);
        let m = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(2);
        tau.pin(NodeId(0), Value(1));
        tau.pin(NodeId(1), Value(1));
        assert!(!is_feasible(&m, &tau));
        assert!(marginal(&m, &tau, NodeId(0)).is_none());
        assert!(joint_distribution(&m, &tau).is_none());
        let mut ok = PartialConfig::empty(2);
        ok.pin(NodeId(0), Value(1));
        assert!(is_feasible(&m, &ok));
    }

    #[test]
    fn joint_distribution_sums_to_one() {
        let g = generators::cycle(5);
        let m = hardcore::model(&g, 1.5);
        let joint = joint_distribution(&m, &PartialConfig::empty(5)).unwrap();
        let total: f64 = joint.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // all configs are independent sets
        for (c, p) in &joint {
            assert!(*p > 0.0);
            assert!(m.weight(c) > 0.0);
        }
    }

    #[test]
    fn exact_sampler_matches_distribution() {
        let g = generators::cycle(4);
        let m = hardcore::model(&g, 1.0);
        let empty = PartialConfig::empty(4);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = std::collections::HashMap::new();
        let trials = 70_000usize;
        for _ in 0..trials {
            let c = sample_exact(&m, &empty, &mut rng);
            *counts.entry(format!("{c:?}")).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 7);
        for &c in counts.values() {
            let freq = c as f64 / trials as f64;
            assert!((freq - 1.0 / 7.0).abs() < 0.01, "freq={freq}");
        }
    }

    #[test]
    fn sample_from_marginal_respects_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = vec![0.0, 0.25, 0.75];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[sample_from_marginal(&m, &mut rng).index()] += 1;
        }
        assert_eq!(counts[0], 0);
        let f1 = counts[1] as f64 / 20_000.0;
        assert!((f1 - 0.25).abs() < 0.02);
    }

    #[test]
    fn soft_factors_enumerate_correctly() {
        // Ising-like chain of 2 nodes: w(equal)=2, w(diff)=1; Z = 2+1+1+2
        let g = generators::path(2);
        let f = Factor::binary(NodeId(0), NodeId(1), 2, vec![2.0, 1.0, 1.0, 2.0]);
        let m = GibbsModel::new(g, 2, vec![f], "ising2");
        let z = partition_function(&m, &PartialConfig::empty(2));
        assert!((z - 6.0).abs() < 1e-12);
        let mu = marginal(&m, &PartialConfig::empty(2), NodeId(0)).unwrap();
        assert!((mu[0] - 0.5).abs() < 1e-12);
    }
}
