//! Gibbs distributions defined by local constraints.
//!
//! This crate implements the probabilistic objects of Feng & Yin,
//! *On Local Distributed Sampling and Counting* (PODC 2018):
//!
//! * [`Alphabet`] and [`Value`] — the alphabet `Σ` with `q = |Σ|`.
//! * [`Config`] and [`PartialConfig`] — configurations `σ ∈ Σ^V` and
//!   partially specified configurations `τ ∈ Σ^Λ` (the pinnings that make
//!   instances *self-reducible*, Definition 2.2 and Remark 2.2).
//! * [`Factor`] — a constraint `(f, S)` with scope `S ⊆ V` and a
//!   nonnegative weight table; hard constraints take the value 0 somewhere
//!   (Definition 2.3).
//! * [`GibbsModel`] — a Gibbs distribution `μ(σ) ∝ ∏_{(f,S)} f(σ_S)`
//!   (Definition 2.3), with its *locality* `ℓ = max scope diameter`
//!   (Definition 2.4) and restriction to balls.
//! * [`distribution`] — exact computation by enumeration with pruning:
//!   partition functions, (conditional) marginals, total joint
//!   distributions, and exact chain-rule sampling. These are the ground
//!   truth every approximate algorithm in the workspace is validated
//!   against.
//! * [`admissible`] — the *locally admissible* property (Definition 2.5):
//!   locally feasible pinnings are globally feasible.
//! * [`markov`] — the spatial Markov property / conditional independence
//!   (Proposition 2.1).
//! * [`metrics`] — total variation distance and the multiplicative error
//!   function `err(μ, μ̂) = max_x |ln μ(x) − ln μ̂(x)|` (paper, eq. (2)).
//! * [`models`] — the paper's application models: hardcore (weighted
//!   independent sets), Ising, general 2-spin systems, proper `q`- and
//!   list-colorings, monomer–dimer matchings (via line-graph duality) and
//!   weighted hypergraph matchings (via intersection-graph duality).
//!
//! # Example: hardcore model on a 4-cycle
//!
//! ```
//! use lds_gibbs::models::hardcore;
//! use lds_gibbs::{distribution, PartialConfig};
//! use lds_graph::{generators, NodeId};
//!
//! let g = generators::cycle(4);
//! let model = hardcore::model(&g, 1.0);
//! // Z = 1 (empty) + 4 (singletons) + 2 (diagonal pairs) = 7
//! let z = distribution::partition_function(&model, &PartialConfig::empty(4));
//! assert!((z - 7.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admissible;
mod config;
pub mod distribution;
mod factor;
pub mod markov;
pub mod metrics;
mod model;
pub mod models;
mod value;

pub use config::{Config, PartialConfig};
pub use factor::Factor;
pub use model::GibbsModel;
pub use value::{Alphabet, Value, EMPTY, OCCUPIED};
