use std::fmt;

use lds_graph::NodeId;

use crate::Value;

/// A full configuration `σ ∈ Σ^V`: one value per node.
///
/// # Example
///
/// ```
/// use lds_gibbs::{Config, Value};
/// use lds_graph::NodeId;
///
/// let mut c = Config::constant(3, Value(0));
/// c.set(NodeId(1), Value(1));
/// assert_eq!(c.get(NodeId(1)), Value(1));
/// assert_eq!(c.len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Config {
    values: Vec<Value>,
}

impl Config {
    /// A configuration assigning `value` to every node of an `n`-node graph.
    pub fn constant(n: usize, value: Value) -> Self {
        Config {
            values: vec![value; n],
        }
    }

    /// Builds a configuration from a value vector.
    pub fn from_values(values: Vec<Value>) -> Self {
        Config { values }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the configuration covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: NodeId) -> Value {
        self.values[v.index()]
    }

    /// Sets the value at node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn set(&mut self, v: NodeId, value: Value) {
        self.values[v.index()] = value;
    }

    /// The underlying value slice indexed by node id.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The restriction `σ_Λ` of this configuration to the nodes of `sub`
    /// (paper notation `σ(S)`).
    pub fn restrict(&self, sub: &[NodeId]) -> PartialConfig {
        let mut p = PartialConfig::empty(self.len());
        for &v in sub {
            p.pin(v, self.get(v));
        }
        p
    }

    /// Converts the full configuration into a fully pinned
    /// [`PartialConfig`].
    pub fn to_partial(&self) -> PartialConfig {
        PartialConfig {
            values: self.values.iter().map(|&v| Some(v)).collect(),
            pinned: self.values.len(),
        }
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Config[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", v.0)?;
        }
        write!(f, "]")
    }
}

/// A partially specified configuration `τ ∈ Σ^Λ` on a subset `Λ ⊆ V` — the
/// *pinning* of an instance `(G, x, τ)` (paper, Definition 2.2).
///
/// Pinnings are how self-reducibility enters: fixing a feasible `τ` turns
/// `μ` into the conditional distribution `μ^τ` over the free nodes
/// (Remark 2.2).
///
/// # Example
///
/// ```
/// use lds_gibbs::{PartialConfig, Value};
/// use lds_graph::NodeId;
///
/// let mut tau = PartialConfig::empty(4);
/// tau.pin(NodeId(2), Value(1));
/// assert_eq!(tau.get(NodeId(2)), Some(Value(1)));
/// assert_eq!(tau.get(NodeId(0)), None);
/// assert_eq!(tau.pinned_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct PartialConfig {
    values: Vec<Option<Value>>,
    pinned: usize,
}

impl PartialConfig {
    /// The empty pinning (`Λ = ∅`) over `n` nodes — always feasible by
    /// convention.
    pub fn empty(n: usize) -> Self {
        PartialConfig {
            values: vec![None; n],
            pinned: 0,
        }
    }

    /// Number of nodes (pinned or not).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the underlying node set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of pinned nodes `|Λ|`.
    pub fn pinned_count(&self) -> usize {
        self.pinned
    }

    /// The pinned value at `v`, or `None` if `v` is free.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<Value> {
        self.values[v.index()]
    }

    /// Returns `true` if `v` is pinned.
    #[inline]
    pub fn is_pinned(&self, v: NodeId) -> bool {
        self.values[v.index()].is_some()
    }

    /// Pins node `v` to `value` (overwrites a previous pin).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn pin(&mut self, v: NodeId, value: Value) {
        if self.values[v.index()].is_none() {
            self.pinned += 1;
        }
        self.values[v.index()] = Some(value);
    }

    /// Removes the pin at `v` if present.
    pub fn unpin(&mut self, v: NodeId) {
        if self.values[v.index()].is_some() {
            self.pinned -= 1;
        }
        self.values[v.index()] = None;
    }

    /// Returns a copy with `v` additionally pinned to `value` — the
    /// self-reduction step `τ ∧ (v ← c)`.
    pub fn with_pin(&self, v: NodeId, value: Value) -> Self {
        let mut c = self.clone();
        c.pin(v, value);
        c
    }

    /// Iterator over `(node, value)` pairs of the pinned set `Λ`.
    pub fn pins(&self) -> impl Iterator<Item = (NodeId, Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|val| (NodeId::from_index(i), val)))
    }

    /// Iterator over the free (unpinned) nodes.
    pub fn free_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Returns `true` if every node is pinned.
    pub fn is_complete(&self) -> bool {
        self.pinned == self.values.len()
    }

    /// Converts a fully pinned partial configuration into a [`Config`].
    ///
    /// # Panics
    ///
    /// Panics if any node is free.
    pub fn to_config(&self) -> Config {
        Config {
            values: self
                .values
                .iter()
                .map(|v| v.expect("configuration is not complete"))
                .collect(),
        }
    }

    /// Merges another pinning into this one; on overlap the other wins.
    pub fn extend_with(&mut self, other: &PartialConfig) {
        assert_eq!(self.len(), other.len(), "pinning size mismatch");
        for (v, val) in other.pins() {
            self.pin(v, val);
        }
    }

    /// Returns `true` if the two pinnings agree on the intersection of
    /// their domains.
    pub fn consistent_with(&self, other: &PartialConfig) -> bool {
        self.len() == other.len()
            && self.pins().all(|(v, val)| match other.get(v) {
                None => true,
                Some(o) => o == val,
            })
    }

    /// The set of nodes where both pinnings are defined but disagree
    /// (the set `D` of Definition 5.1, strong spatial mixing).
    pub fn disagreement(&self, other: &PartialConfig) -> Vec<NodeId> {
        assert_eq!(self.len(), other.len(), "pinning size mismatch");
        self.pins()
            .filter_map(|(v, val)| match other.get(v) {
                Some(o) if o != val => Some(v),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Debug for PartialConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pinning[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match v {
                Some(val) => write!(f, "{}", val.0)?,
                None => write!(f, "·")?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_unpin_counts() {
        let mut p = PartialConfig::empty(3);
        assert_eq!(p.pinned_count(), 0);
        p.pin(NodeId(0), Value(1));
        p.pin(NodeId(0), Value(2)); // overwrite, count unchanged
        assert_eq!(p.pinned_count(), 1);
        assert_eq!(p.get(NodeId(0)), Some(Value(2)));
        p.unpin(NodeId(0));
        p.unpin(NodeId(0)); // double unpin is a no-op
        assert_eq!(p.pinned_count(), 0);
    }

    #[test]
    fn with_pin_does_not_mutate() {
        let p = PartialConfig::empty(2);
        let q = p.with_pin(NodeId(1), Value(0));
        assert_eq!(p.pinned_count(), 0);
        assert_eq!(q.pinned_count(), 1);
    }

    #[test]
    fn free_nodes_and_pins_partition() {
        let mut p = PartialConfig::empty(4);
        p.pin(NodeId(1), Value(0));
        p.pin(NodeId(3), Value(1));
        let free: Vec<NodeId> = p.free_nodes().collect();
        assert_eq!(free, vec![NodeId(0), NodeId(2)]);
        let pins: Vec<(NodeId, Value)> = p.pins().collect();
        assert_eq!(pins, vec![(NodeId(1), Value(0)), (NodeId(3), Value(1))]);
    }

    #[test]
    fn complete_roundtrip() {
        let c = Config::from_values(vec![Value(0), Value(1), Value(2)]);
        let p = c.to_partial();
        assert!(p.is_complete());
        assert_eq!(p.to_config(), c);
    }

    #[test]
    #[should_panic(expected = "not complete")]
    fn to_config_requires_complete() {
        let p = PartialConfig::empty(2);
        let _ = p.to_config();
    }

    #[test]
    fn consistency_and_disagreement() {
        let mut a = PartialConfig::empty(3);
        let mut b = PartialConfig::empty(3);
        a.pin(NodeId(0), Value(1));
        b.pin(NodeId(0), Value(1));
        b.pin(NodeId(2), Value(0));
        assert!(a.consistent_with(&b));
        assert!(b.consistent_with(&a));
        assert!(a.disagreement(&b).is_empty());
        a.pin(NodeId(2), Value(1));
        assert!(!a.consistent_with(&b));
        assert_eq!(a.disagreement(&b), vec![NodeId(2)]);
    }

    #[test]
    fn restrict_extracts_subset() {
        let c = Config::from_values(vec![Value(5), Value(6), Value(7)]);
        let p = c.restrict(&[NodeId(0), NodeId(2)]);
        assert_eq!(p.get(NodeId(0)), Some(Value(5)));
        assert_eq!(p.get(NodeId(1)), None);
        assert_eq!(p.get(NodeId(2)), Some(Value(7)));
    }

    #[test]
    fn extend_with_merges() {
        let mut a = PartialConfig::empty(3);
        a.pin(NodeId(0), Value(0));
        let mut b = PartialConfig::empty(3);
        b.pin(NodeId(0), Value(1));
        b.pin(NodeId(1), Value(1));
        a.extend_with(&b);
        assert_eq!(a.get(NodeId(0)), Some(Value(1)));
        assert_eq!(a.get(NodeId(1)), Some(Value(1)));
        assert_eq!(a.pinned_count(), 2);
    }

    #[test]
    fn debug_formats() {
        let mut p = PartialConfig::empty(2);
        p.pin(NodeId(1), Value(3));
        assert_eq!(format!("{p:?}"), "Pinning[· 3]");
        let c = Config::from_values(vec![Value(0), Value(1)]);
        assert_eq!(format!("{c:?}"), "Config[0 1]");
    }
}
