use std::fmt;

use lds_graph::{traversal, Graph, NodeId, Subgraph};

use crate::{Config, Factor, PartialConfig};

/// A Gibbs distribution `μ(σ) ∝ w(σ) = ∏_{(f,S) ∈ F} f(σ_S)` specified by
/// `(G, Σ, F)` (paper, Definition 2.3).
///
/// The model's *locality* `ℓ` is the maximum diameter of a factor scope in
/// `G` (Definition 2.4); the model is a **local** Gibbs distribution when
/// `ℓ = O(1)`, which holds for every model family in [`crate::models`]
/// (all scopes are single vertices, edges, or hyperedge cliques).
///
/// # Example
///
/// ```
/// use lds_gibbs::{Config, Factor, GibbsModel, Value};
/// use lds_graph::{generators, NodeId};
///
/// let g = generators::path(2);
/// let model = GibbsModel::new(
///     g,
///     2,
///     vec![Factor::binary(NodeId(0), NodeId(1), 2, vec![1.0, 1.0, 1.0, 0.0])],
///     "tiny-hardcore",
/// );
/// let both = Config::from_values(vec![Value(1), Value(1)]);
/// assert_eq!(model.weight(&both), 0.0);
/// ```
#[derive(Clone)]
pub struct GibbsModel {
    graph: Graph,
    q: usize,
    factors: Vec<Factor>,
    /// For each node, the indices of factors whose scope contains it.
    by_node: Vec<Vec<usize>>,
    /// For each node v, indices of factors whose scope max (by id) is v —
    /// used for prefix-pruned enumeration in id order.
    completed_at: Vec<Vec<usize>>,
    locality: usize,
    name: String,
}

impl GibbsModel {
    /// Creates a model over `graph` with alphabet size `q` and the given
    /// factor list.
    ///
    /// # Panics
    ///
    /// Panics if a factor's alphabet size differs from `q`, or if a scope
    /// node is out of range.
    pub fn new(graph: Graph, q: usize, factors: Vec<Factor>, name: impl Into<String>) -> Self {
        let n = graph.node_count();
        let mut by_node = vec![Vec::new(); n];
        let mut completed_at = vec![Vec::new(); n];
        let mut locality = 0usize;
        for (i, f) in factors.iter().enumerate() {
            assert_eq!(f.alphabet_size(), q, "factor {i} alphabet mismatch");
            assert!(
                f.scope().iter().all(|v| v.index() < n),
                "factor {i} scope out of range"
            );
            for &v in f.scope() {
                by_node[v.index()].push(i);
            }
            let max = f.scope().iter().max().expect("nonempty scope");
            completed_at[max.index()].push(i);
            locality = locality.max(scope_diameter(&graph, f.scope()));
        }
        GibbsModel {
            graph,
            q,
            factors,
            by_node,
            completed_at,
            locality,
            name: name.into(),
        }
    }

    /// The underlying graph `G`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes `n = |V|`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Alphabet size `q = |Σ|`.
    pub fn alphabet_size(&self) -> usize {
        self.q
    }

    /// All factors `F`.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Indices of factors whose scope contains `v` — the constraints a
    /// node knows in the LOCAL model ("`x_v` includes the descriptions of
    /// all local constraints `(f, S)` with `v ∈ S`").
    pub fn factors_touching(&self, v: NodeId) -> &[usize] {
        &self.by_node[v.index()]
    }

    /// Indices of factors whose maximum scope node is `v` (for id-ordered
    /// enumeration with early pruning).
    pub fn factors_completed_at(&self, v: NodeId) -> &[usize] {
        &self.completed_at[v.index()]
    }

    /// The locality `ℓ`: maximum scope diameter in `G` (Definition 2.4).
    pub fn locality(&self) -> usize {
        self.locality
    }

    /// Human-readable model name (for experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The weight `w(σ) = ∏ f(σ_S)` (paper, eq. (1)).
    pub fn weight(&self, config: &Config) -> f64 {
        self.factors
            .iter()
            .map(|f| {
                f.eval_partial(|v| Some(config.get(v)))
                    .expect("full config")
            })
            .product()
    }

    /// Product of all factors whose scope is fully pinned by `p` — the
    /// onsite weight of Definition 2.5.
    pub fn partial_weight(&self, p: &PartialConfig) -> f64 {
        self.factors
            .iter()
            .filter_map(|f| f.eval_partial(|v| p.get(v)))
            .product()
    }

    /// Returns `true` if `p` is *locally feasible*: no fully pinned factor
    /// evaluates to zero (Definition 2.5).
    pub fn is_locally_feasible(&self, p: &PartialConfig) -> bool {
        self.factors
            .iter()
            .filter_map(|f| f.eval_partial(|v| p.get(v)))
            .all(|w| w > 0.0)
    }

    /// Restricts the model to the induced subgraph on `members`, keeping
    /// only factors with scope fully inside (the weight `w_B` used by the
    /// paper's local computations in Lemma 4.1 and Theorem 5.1). Factor
    /// scopes are remapped to local ids.
    pub fn restrict_to(&self, members: &[NodeId]) -> (GibbsModel, Subgraph) {
        let sub = Subgraph::induced(&self.graph, members);
        let mut kept = Vec::new();
        for f in &self.factors {
            if f.scope().iter().all(|&v| sub.contains(v)) {
                kept.push(f.remap(|v| sub.to_local(v)));
            }
        }
        let model = GibbsModel::new(sub.graph().clone(), self.q, kept, self.name.clone());
        (model, sub)
    }

    /// Translates a pinning on parent ids into one on the local ids of the
    /// restriction `sub`; pins outside `sub` are dropped.
    pub fn localize_pinning(sub: &Subgraph, p: &PartialConfig) -> PartialConfig {
        let mut local = PartialConfig::empty(sub.len());
        for (v, val) in p.pins() {
            if let Some(lv) = sub.to_local(v) {
                local.pin(lv, val);
            }
        }
        local
    }
}

/// Maximum pairwise distance of scope nodes in `g` (0 for singleton
/// scopes).
fn scope_diameter(g: &Graph, scope: &[NodeId]) -> usize {
    let mut diam = 0usize;
    for &u in scope {
        let d = traversal::bfs_distances(g, u);
        for &v in scope {
            let duv = d[v.index()];
            assert!(
                duv != traversal::UNREACHABLE,
                "factor scope spans disconnected nodes {u} and {v}"
            );
            diam = diam.max(duv as usize);
        }
    }
    diam
}

impl fmt::Debug for GibbsModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GibbsModel")
            .field("name", &self.name)
            .field("n", &self.node_count())
            .field("q", &self.q)
            .field("factors", &self.factors.len())
            .field("locality", &self.locality)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;
    use lds_graph::generators;

    fn hardcore_path3() -> GibbsModel {
        // path 0-1-2, hardcore with λ=2 on the middle vertex
        let g = generators::path(3);
        let hard = vec![1.0, 1.0, 1.0, 0.0];
        GibbsModel::new(
            g,
            2,
            vec![
                Factor::binary(NodeId(0), NodeId(1), 2, hard.clone()),
                Factor::binary(NodeId(1), NodeId(2), 2, hard),
                Factor::unary(NodeId(1), vec![1.0, 2.0]),
            ],
            "hc-path3",
        )
    }

    #[test]
    fn weight_products() {
        let m = hardcore_path3();
        let empty = Config::constant(3, Value(0));
        assert_eq!(m.weight(&empty), 1.0);
        let mid = Config::from_values(vec![Value(0), Value(1), Value(0)]);
        assert_eq!(m.weight(&mid), 2.0);
        let bad = Config::from_values(vec![Value(1), Value(1), Value(0)]);
        assert_eq!(m.weight(&bad), 0.0);
    }

    #[test]
    fn locality_of_edge_factors_is_one() {
        let m = hardcore_path3();
        assert_eq!(m.locality(), 1);
    }

    #[test]
    fn local_feasibility_checks_only_pinned_scopes() {
        let m = hardcore_path3();
        let mut p = PartialConfig::empty(3);
        p.pin(NodeId(0), Value(1));
        assert!(m.is_locally_feasible(&p));
        p.pin(NodeId(1), Value(1));
        assert!(!m.is_locally_feasible(&p));
    }

    #[test]
    fn partial_weight_counts_completed_factors() {
        let m = hardcore_path3();
        let mut p = PartialConfig::empty(3);
        p.pin(NodeId(1), Value(1));
        // only the unary factor on node 1 is complete
        assert_eq!(m.partial_weight(&p), 2.0);
    }

    #[test]
    fn restriction_drops_boundary_factors() {
        let m = hardcore_path3();
        let (rm, sub) = m.restrict_to(&[NodeId(0), NodeId(1)]);
        // kept: edge 0-1 and the unary on node 1; dropped: edge 1-2
        assert_eq!(rm.factors().len(), 2);
        assert_eq!(rm.node_count(), 2);
        assert!(sub.contains(NodeId(1)));
        let mut p = PartialConfig::empty(3);
        p.pin(NodeId(1), Value(1));
        p.pin(NodeId(2), Value(0));
        let local = GibbsModel::localize_pinning(&sub, &p);
        assert_eq!(local.pinned_count(), 1);
    }

    #[test]
    fn factors_indexing() {
        let m = hardcore_path3();
        assert_eq!(m.factors_touching(NodeId(1)).len(), 3);
        assert_eq!(m.factors_touching(NodeId(0)).len(), 1);
        // factor with scope {1,2} completes at node 2; unary(1) at node 1
        assert_eq!(m.factors_completed_at(NodeId(2)).len(), 1);
        assert_eq!(m.factors_completed_at(NodeId(1)).len(), 2);
    }

    #[test]
    fn debug_shows_name() {
        let m = hardcore_path3();
        assert!(format!("{m:?}").contains("hc-path3"));
    }
}
