use std::fmt;

/// A value (spin/color/occupation) from an alphabet `Σ`, stored as a dense
/// index `0..q`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub u32);

impl Value {
    /// Returns the value as a `usize` index into the alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a value from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Value(u32::try_from(index).expect("value index exceeds u32::MAX"))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An alphabet `Σ` of size `q`, with the paper's standing assumption
/// `q = |Σ| ≤ poly(n)`.
///
/// # Example
///
/// ```
/// use lds_gibbs::{Alphabet, Value};
/// let colors = Alphabet::new(3);
/// assert_eq!(colors.size(), 3);
/// assert!(colors.contains(Value(2)));
/// assert!(!colors.contains(Value(3)));
/// let all: Vec<Value> = colors.values().collect();
/// assert_eq!(all.len(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Alphabet {
    q: usize,
}

impl Alphabet {
    /// Creates an alphabet of size `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(q: usize) -> Self {
        assert!(q > 0, "alphabet must be nonempty");
        Alphabet { q }
    }

    /// The binary alphabet `{0, 1}` used by spin systems (0 = unoccupied /
    /// minus, 1 = occupied / plus).
    pub fn binary() -> Self {
        Alphabet { q: 2 }
    }

    /// Alphabet size `q = |Σ|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.q
    }

    /// Returns `true` if `v` is a member of the alphabet.
    #[inline]
    pub fn contains(&self, v: Value) -> bool {
        v.index() < self.q
    }

    /// Iterator over all values of the alphabet.
    pub fn values(&self) -> impl Iterator<Item = Value> + Clone {
        (0..self.q).map(Value::from_index)
    }
}

/// The occupation value `1` of spin systems (occupied / in the independent
/// set / in the matching).
pub const OCCUPIED: Value = Value(1);

/// The vacancy value `0` of spin systems.
pub const EMPTY: Value = Value(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_membership() {
        let a = Alphabet::new(4);
        assert!(a.contains(Value(0)));
        assert!(a.contains(Value(3)));
        assert!(!a.contains(Value(4)));
    }

    #[test]
    fn binary_alphabet() {
        let b = Alphabet::binary();
        assert_eq!(b.size(), 2);
        assert!(b.contains(OCCUPIED));
        assert!(b.contains(EMPTY));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_empty_alphabet() {
        let _ = Alphabet::new(0);
    }

    #[test]
    fn values_iterates_all() {
        let a = Alphabet::new(3);
        let vals: Vec<Value> = a.values().collect();
        assert_eq!(vals, vec![Value(0), Value(1), Value(2)]);
    }

    #[test]
    fn value_display() {
        assert_eq!(format!("{}", Value(5)), "#5");
        assert_eq!(format!("{:?}", Value(5)), "#5");
    }
}
