//! The monomer–dimer model (weighted matchings) via line-graph duality.
//!
//! A matching of `G` is a set of pairwise non-adjacent edges; with edge
//! weight `λ` the distribution is `μ(M) ∝ λ^{|M|}`. Matchings of `G` are
//! exactly the independent sets of the line graph `L(G)`, so the model is
//! the [hardcore model](crate::models::hardcore) on `L(G)`. The paper's
//! Corollary 5.3 uses exactly this duality ("in the case of edge models
//! ... represented as such joint distributions through dualities of
//! graphs/hypergraphs, which preserve the distances") to obtain an
//! `O(√Δ log³ n)`-round exact sampler from the
//! Bayati–Gamarnik–Katz–Nair–Tetali SSM of matchings.

use lds_graph::{line::LineGraph, EdgeId, Graph, NodeId};

use crate::models::hardcore;
use crate::{Config, GibbsModel, Value};

/// A matching instance: the base graph, its line graph, and the hardcore
/// model over line-graph vertices (one per base edge).
///
/// # Example
///
/// ```
/// use lds_gibbs::models::matching::MatchingInstance;
/// use lds_gibbs::{distribution, PartialConfig};
/// use lds_graph::generators;
///
/// let g = generators::path(3); // edges 0-1 and 1-2 share node 1
/// let inst = MatchingInstance::new(&g, 1.0);
/// // matchings: {}, {01}, {12} -> Z = 3
/// let z = distribution::partition_function(
///     inst.model(), &PartialConfig::empty(2));
/// assert!((z - 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct MatchingInstance {
    base: Graph,
    line: LineGraph,
    model: GibbsModel,
}

impl MatchingInstance {
    /// Builds the monomer–dimer model on `g` with uniform edge weight `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `λ` is negative or non-finite.
    pub fn new(g: &Graph, lambda: f64) -> Self {
        let line = LineGraph::of(g);
        let mut model = hardcore::model(line.graph(), lambda);
        model = GibbsModel::new(
            line.graph().clone(),
            2,
            model.factors().to_vec(),
            "matching",
        );
        MatchingInstance {
            base: g.clone(),
            line,
            model,
        }
    }

    /// The base graph `G`.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The line graph `L(G)`; its node `i` is base edge `EdgeId(i)`.
    pub fn line(&self) -> &LineGraph {
        &self.line
    }

    /// The hardcore model over `L(G)` representing the matching
    /// distribution. Configurations index line-graph nodes = base edges.
    pub fn model(&self) -> &GibbsModel {
        &self.model
    }

    /// Decodes a configuration over line-graph nodes into the matched base
    /// edges.
    pub fn edges_of(&self, config: &Config) -> Vec<EdgeId> {
        (0..config.len())
            .filter(|&i| config.get(NodeId::from_index(i)) == Value(1))
            .map(EdgeId::from_index)
            .collect()
    }

    /// Returns `true` if `edges` is a matching of the base graph (no two
    /// edges share an endpoint).
    pub fn is_matching(&self, edges: &[EdgeId]) -> bool {
        let mut used = vec![false; self.base.node_count()];
        for &e in edges {
            let edge = self.base.edge(e);
            if used[edge.u.index()] || used[edge.v.index()] {
                return false;
            }
            used[edge.u.index()] = true;
            used[edge.v.index()] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distribution, PartialConfig};
    use lds_graph::generators;

    #[test]
    fn matchings_of_cycle4() {
        // matchings of C4: {}, 4 single edges, 2 perfect matchings -> 7
        let g = generators::cycle(4);
        let inst = MatchingInstance::new(&g, 1.0);
        let z = distribution::partition_function(
            inst.model(),
            &PartialConfig::empty(inst.model().node_count()),
        );
        assert!((z - 7.0).abs() < 1e-12);
    }

    #[test]
    fn matching_polynomial_of_path() {
        // P3 has edges e0, e1 sharing the middle node:
        // Z(λ) = 1 + 2λ
        let g = generators::path(3);
        let inst = MatchingInstance::new(&g, 3.0);
        let z = distribution::partition_function(inst.model(), &PartialConfig::empty(2));
        assert!((z - 7.0).abs() < 1e-12);
    }

    #[test]
    fn all_feasible_configs_are_matchings() {
        let g = generators::complete(4);
        let inst = MatchingInstance::new(&g, 1.5);
        let joint = distribution::joint_distribution(
            inst.model(),
            &PartialConfig::empty(inst.model().node_count()),
        )
        .unwrap();
        for (c, p) in &joint {
            assert!(*p > 0.0);
            let edges = inst.edges_of(c);
            assert!(inst.is_matching(&edges));
        }
        // matchings of K4: 1 empty + 6 single + 3 perfect = 10
        assert_eq!(joint.len(), 10);
    }

    #[test]
    fn non_matching_is_rejected() {
        let g = generators::path(3);
        let inst = MatchingInstance::new(&g, 1.0);
        // both edges share node 1
        assert!(!inst.is_matching(&[EdgeId(0), EdgeId(1)]));
        assert!(inst.is_matching(&[EdgeId(0)]));
        assert!(inst.is_matching(&[]));
    }

    #[test]
    fn line_graph_degree_bound_respected() {
        let g = generators::random_regular(12, 4, &mut {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(2)
        });
        let inst = MatchingInstance::new(&g, 1.0);
        assert!(inst.model().graph().max_degree() <= 2 * g.max_degree() - 2);
    }
}
