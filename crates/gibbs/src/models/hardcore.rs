//! The hardcore model (weighted independent sets).
//!
//! Configurations are `{0, 1}`-valued; a configuration is feasible iff the
//! occupied set is an independent set, and `w(σ) = λ^{|σ|}` where `|σ|` is
//! the number of occupied vertices. The uniqueness threshold on graphs of
//! maximum degree `Δ` is `λ_c(Δ) = (Δ−1)^{Δ−1}/(Δ−2)^Δ`; sampling is
//! `O(log³ n)`-round local below it (Corollary 5.3) and requires
//! `Ω(diam)` rounds above it [Feng–Sun–Yin PODC'17].

use lds_graph::{Graph, NodeId};

use crate::{Config, Factor, GibbsModel, Value};

/// The hard edge constraint: both endpoints occupied is forbidden.
fn edge_factor(u: NodeId, v: NodeId) -> Factor {
    Factor::binary(u, v, 2, vec![1.0, 1.0, 1.0, 0.0])
}

/// Builds the hardcore model on `g` with uniform fugacity `λ`.
///
/// # Panics
///
/// Panics if `λ` is negative or non-finite.
///
/// # Example
///
/// ```
/// use lds_gibbs::models::hardcore;
/// use lds_graph::generators;
///
/// let g = generators::cycle(5);
/// let m = hardcore::model(&g, 1.0);
/// assert_eq!(m.alphabet_size(), 2);
/// assert_eq!(m.locality(), 1);
/// ```
pub fn model(g: &Graph, lambda: f64) -> GibbsModel {
    model_with_activities(g, &vec![lambda; g.node_count()])
}

/// Builds the hardcore model with per-vertex fugacities `λ_v` (the
/// self-reducible generalization needed for conditioning arguments).
///
/// # Panics
///
/// Panics if `activities.len() != n` or any activity is negative or
/// non-finite.
pub fn model_with_activities(g: &Graph, activities: &[f64]) -> GibbsModel {
    assert_eq!(activities.len(), g.node_count(), "one activity per vertex");
    assert!(
        activities.iter().all(|l| l.is_finite() && *l >= 0.0),
        "fugacities must be finite and nonnegative"
    );
    let mut factors = Vec::with_capacity(g.node_count() + g.edge_count());
    for v in g.nodes() {
        factors.push(Factor::unary(v, vec![1.0, activities[v.index()]]));
    }
    for e in g.edges() {
        factors.push(edge_factor(e.u, e.v));
    }
    GibbsModel::new(g.clone(), 2, factors, "hardcore")
}

/// The set of occupied vertices of a configuration.
pub fn occupied_set(config: &Config) -> Vec<NodeId> {
    (0..config.len())
        .map(NodeId::from_index)
        .filter(|&v| config.get(v) == Value(1))
        .collect()
}

/// Returns `true` if the occupied set of `config` is an independent set of
/// `g`.
pub fn is_independent_set(g: &Graph, config: &Config) -> bool {
    g.edges()
        .iter()
        .all(|e| !(config.get(e.u) == Value(1) && config.get(e.v) == Value(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distribution, PartialConfig};
    use lds_graph::generators;

    #[test]
    fn weight_is_lambda_to_occupied_count() {
        let g = generators::path(3);
        let m = model(&g, 3.0);
        let c = Config::from_values(vec![Value(1), Value(0), Value(1)]);
        assert_eq!(m.weight(&c), 9.0);
        assert!(is_independent_set(&g, &c));
        assert_eq!(occupied_set(&c), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn blocked_configurations_have_zero_weight() {
        let g = generators::path(2);
        let m = model(&g, 1.0);
        let c = Config::from_values(vec![Value(1), Value(1)]);
        assert_eq!(m.weight(&c), 0.0);
        assert!(!is_independent_set(&g, &c));
    }

    #[test]
    fn partition_function_of_path3() {
        // independent sets of P3: {}, {0}, {1}, {2}, {0,2} -> Z(λ=1) = 5
        let g = generators::path(3);
        let m = model(&g, 1.0);
        let z = distribution::partition_function(&m, &PartialConfig::empty(3));
        assert!((z - 5.0).abs() < 1e-12);
    }

    #[test]
    fn per_vertex_activities() {
        let g = generators::path(2);
        let m = model_with_activities(&g, &[2.0, 3.0]);
        // Z = 1 + 2 + 3
        let z = distribution::partition_function(&m, &PartialConfig::empty(2));
        assert!((z - 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_fugacity_forces_empty() {
        let g = generators::cycle(4);
        let m = model(&g, 0.0);
        // only the empty set carries positive weight
        assert_eq!(
            distribution::feasible_count(&m, &PartialConfig::empty(4)),
            1
        );
        let mu = distribution::marginal(&m, &PartialConfig::empty(4), NodeId(0)).unwrap();
        assert_eq!(mu[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_fugacity() {
        let g = generators::path(2);
        let _ = model(&g, -1.0);
    }
}
