//! The Ising model.
//!
//! `w(σ) = exp(β · #{agreeing edges} − β · #{disagreeing edges})
//!        · exp(h · (#plus − #minus))`
//! over `{0, 1}`-configurations (0 = minus, 1 = plus). Equivalently a
//! [two-spin system](crate::models::two_spin) with
//! `β_edge = γ_edge = e^{2β}` after normalizing edge weights, and vertex
//! activity `λ = e^{2h}`.
//!
//! Antiferromagnetic for `β < 0`; on max-degree-`Δ` graphs the
//! antiferromagnetic Ising model is in the uniqueness regime iff
//! `e^{2|β|} < Δ/(Δ−2)` (the threshold used by experiment E6d).

use lds_graph::Graph;

use crate::models::two_spin::{self, TwoSpinParams};
use crate::GibbsModel;

/// Parameters of the Ising model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsingParams {
    /// Inverse-temperature coupling; negative = antiferromagnetic.
    pub beta: f64,
    /// External field; positive favors value `1`.
    pub field: f64,
}

impl IsingParams {
    /// Creates Ising parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-finite.
    pub fn new(beta: f64, field: f64) -> Self {
        assert!(
            beta.is_finite() && field.is_finite(),
            "parameters must be finite"
        );
        IsingParams { beta, field }
    }

    /// The equivalent two-spin parameters `(e^{2β}, e^{2β}, e^{2h})`
    /// (edge weights normalized so disagreeing edges weigh 1).
    pub fn to_two_spin(self) -> TwoSpinParams {
        let b = (2.0 * self.beta).exp();
        TwoSpinParams::new(b, b, (2.0 * self.field).exp())
    }

    /// Returns `true` if antiferromagnetic (`β < 0`).
    pub fn is_antiferromagnetic(&self) -> bool {
        self.beta < 0.0
    }

    /// Uniqueness condition for the antiferromagnetic Ising model on
    /// graphs of maximum degree `Δ`: `e^{2|β|} < Δ/(Δ−2)`.
    ///
    /// Ferromagnetic parameters (`β ≥ 0`) return `true` only when the same
    /// bound holds (the symmetric condition), matching the tree-uniqueness
    /// criterion `e^{2|β|} < Δ/(Δ−2)` for `Δ ≥ 3`; for `Δ ≤ 2`
    /// uniqueness always holds.
    pub fn is_unique(&self, delta: usize) -> bool {
        if delta <= 2 {
            return true;
        }
        (2.0 * self.beta.abs()).exp() < delta as f64 / (delta as f64 - 2.0)
    }
}

/// Builds the Ising model on `g` via its two-spin representation.
///
/// # Example
///
/// ```
/// use lds_gibbs::models::ising::{self, IsingParams};
/// use lds_graph::generators;
///
/// let g = generators::torus(3, 3);
/// let m = ising::model(&g, IsingParams::new(-0.2, 0.0));
/// assert_eq!(m.alphabet_size(), 2);
/// ```
pub fn model(g: &Graph, params: IsingParams) -> GibbsModel {
    two_spin::model(g, params.to_two_spin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distribution, PartialConfig};
    use lds_graph::{generators, NodeId};

    #[test]
    fn zero_coupling_is_product_measure() {
        let g = generators::cycle(4);
        let m = model(&g, IsingParams::new(0.0, 0.0));
        let p = PartialConfig::empty(4);
        let mu = distribution::marginal(&m, &p, NodeId(0)).unwrap();
        assert!((mu[0] - 0.5).abs() < 1e-12);
        // conditioning changes nothing
        let mut tau = p.clone();
        tau.pin(NodeId(2), crate::Value(1));
        let mu_c = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        assert!((mu_c[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ferromagnetic_coupling_aligns_neighbors() {
        let g = generators::path(2);
        let m = model(&g, IsingParams::new(0.5, 0.0));
        let mut tau = PartialConfig::empty(2);
        tau.pin(NodeId(0), crate::Value(1));
        let mu = distribution::marginal(&m, &tau, NodeId(1)).unwrap();
        assert!(mu[1] > 0.5);
    }

    #[test]
    fn antiferromagnetic_coupling_repels_neighbors() {
        let g = generators::path(2);
        let m = model(&g, IsingParams::new(-0.5, 0.0));
        let mut tau = PartialConfig::empty(2);
        tau.pin(NodeId(0), crate::Value(1));
        let mu = distribution::marginal(&m, &tau, NodeId(1)).unwrap();
        assert!(mu[1] < 0.5);
    }

    #[test]
    fn field_biases_marginal() {
        let g = generators::path(2);
        let m = model(&g, IsingParams::new(0.0, 0.3));
        let mu = distribution::marginal(&m, &PartialConfig::empty(2), NodeId(0)).unwrap();
        assert!(mu[1] > 0.5);
    }

    #[test]
    fn uniqueness_threshold() {
        // Δ=4: unique iff e^{2|β|} < 2, i.e. |β| < ln(2)/2 ≈ 0.3466
        let unique = IsingParams::new(-0.3, 0.0);
        let nonunique = IsingParams::new(-0.4, 0.0);
        assert!(unique.is_unique(4));
        assert!(!nonunique.is_unique(4));
        // degree ≤ 2 always unique
        assert!(nonunique.is_unique(2));
    }
}
