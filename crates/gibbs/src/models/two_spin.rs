//! General two-spin systems.
//!
//! A two-spin system `(β, γ, λ)` on a graph `G` assigns each edge the
//! interaction matrix `[[β, 1], [1, γ]]` (indexed by the endpoint values
//! in `{0, 1}`) and each vertex the activity `λ` for value `1`:
//!
//! `w(σ) = β^{m_00(σ)} · γ^{m_11(σ)} · λ^{|σ|}`.
//!
//! * hardcore model = `(1, 0, λ)`,
//! * Ising model with edge weight `b = e^{2β'}` is `(b, b, λ)`.
//!
//! The system is **antiferromagnetic** iff `βγ < 1` — the regime of
//! Corollary 5.3's "anti-ferromagnetic 2-spin model in the uniqueness
//! regime" (Li–Lu–Yin SODA'13 provide the SSM the paper plugs in).

use lds_graph::Graph;

use crate::{Factor, GibbsModel};

/// Parameters of a two-spin system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoSpinParams {
    /// Weight of an edge with both endpoints `0`.
    pub beta: f64,
    /// Weight of an edge with both endpoints `1`.
    pub gamma: f64,
    /// Vertex activity of value `1`.
    pub lambda: f64,
}

impl TwoSpinParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite.
    pub fn new(beta: f64, gamma: f64, lambda: f64) -> Self {
        for (name, x) in [("beta", beta), ("gamma", gamma), ("lambda", lambda)] {
            assert!(x.is_finite() && x >= 0.0, "{name} must be finite and >= 0");
        }
        TwoSpinParams {
            beta,
            gamma,
            lambda,
        }
    }

    /// The hardcore specialization `(1, 0, λ)`.
    pub fn hardcore(lambda: f64) -> Self {
        TwoSpinParams::new(1.0, 0.0, lambda)
    }

    /// Returns `true` if the system is antiferromagnetic (`βγ < 1`).
    pub fn is_antiferromagnetic(&self) -> bool {
        self.beta * self.gamma < 1.0
    }
}

/// Builds the two-spin model on `g`.
///
/// # Example
///
/// ```
/// use lds_gibbs::models::two_spin::{self, TwoSpinParams};
/// use lds_graph::generators;
///
/// let g = generators::cycle(4);
/// let m = two_spin::model(&g, TwoSpinParams::hardcore(1.0));
/// assert_eq!(m.alphabet_size(), 2);
/// ```
pub fn model(g: &Graph, params: TwoSpinParams) -> GibbsModel {
    let mut factors = Vec::with_capacity(g.node_count() + g.edge_count());
    for v in g.nodes() {
        factors.push(Factor::unary(v, vec![1.0, params.lambda]));
    }
    for e in g.edges() {
        factors.push(Factor::binary(
            e.u,
            e.v,
            2,
            vec![params.beta, 1.0, 1.0, params.gamma],
        ));
    }
    GibbsModel::new(g.clone(), 2, factors, "two-spin")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::hardcore;
    use crate::{distribution, PartialConfig};
    use lds_graph::generators;

    #[test]
    fn hardcore_specialization_matches_hardcore_model() {
        let g = generators::cycle(5);
        let ts = model(&g, TwoSpinParams::hardcore(1.7));
        let hc = hardcore::model(&g, 1.7);
        let p = PartialConfig::empty(5);
        let z1 = distribution::partition_function(&ts, &p);
        let z2 = distribution::partition_function(&hc, &p);
        assert!((z1 - z2).abs() < 1e-10);
        for v in g.nodes() {
            let m1 = distribution::marginal(&ts, &p, v).unwrap();
            let m2 = distribution::marginal(&hc, &p, v).unwrap();
            assert!((m1[1] - m2[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn antiferromagnetic_classification() {
        assert!(TwoSpinParams::hardcore(2.0).is_antiferromagnetic());
        assert!(TwoSpinParams::new(0.5, 0.5, 1.0).is_antiferromagnetic());
        assert!(!TwoSpinParams::new(2.0, 2.0, 1.0).is_antiferromagnetic());
    }

    #[test]
    fn soft_two_spin_partition_function() {
        // single edge, β=2, γ=3, λ=1:
        // w(00)=2, w(01)=w(10)=1, w(11)=3 -> Z=7
        let g = generators::path(2);
        let m = model(&g, TwoSpinParams::new(2.0, 3.0, 1.0));
        let z = distribution::partition_function(&m, &PartialConfig::empty(2));
        assert!((z - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "beta must be finite")]
    fn rejects_bad_params() {
        let _ = TwoSpinParams::new(f64::NAN, 0.0, 1.0);
    }
}
