//! Proper `q`-colorings and list-colorings.
//!
//! The uniform distribution over proper (list-)colorings is the paradigm
//! example running through the paper: self-reduction pins a partial
//! coloring `τ` and the conditional distribution is a list-coloring of the
//! remaining graph with lists `L_v = [q] \ {τ_u : uv ∈ E}` (Remark 2.2).
//! Corollary 5.3 gives `O(log³ n)`-round exact sampling for triangle-free
//! graphs when `q ≥ αΔ` with `α > α* ≈ 1.763` (Gamarnik–Katz–Misra SSM).

use lds_graph::{Graph, NodeId};

use crate::{Config, Factor, GibbsModel, Value};

/// The disequality edge factor over `q` colors.
fn diff_factor(u: NodeId, v: NodeId, q: usize) -> Factor {
    let mut table = vec![1.0; q * q];
    for c in 0..q {
        table[c * q + c] = 0.0;
    }
    Factor::binary(u, v, q, table)
}

/// Builds the uniform distribution over proper `q`-colorings of `g`.
///
/// # Panics
///
/// Panics if `q == 0`.
///
/// # Example
///
/// ```
/// use lds_gibbs::models::coloring;
/// use lds_gibbs::{distribution, PartialConfig};
/// use lds_graph::generators;
///
/// let g = generators::path(2);
/// let m = coloring::model(&g, 3);
/// // 3 * 2 proper colorings of an edge
/// let z = distribution::partition_function(&m, &PartialConfig::empty(2));
/// assert!((z - 6.0).abs() < 1e-12);
/// ```
pub fn model(g: &Graph, q: usize) -> GibbsModel {
    assert!(q > 0, "need at least one color");
    let factors = g.edges().iter().map(|e| diff_factor(e.u, e.v, q)).collect();
    GibbsModel::new(g.clone(), q, factors, "coloring")
}

/// Builds the uniform distribution over proper list-colorings: node `v`
/// may only receive colors in `lists[v]` (subsets of `0..q`).
///
/// # Panics
///
/// Panics if `lists.len() != n`, or if some list is empty or mentions a
/// color `>= q`.
pub fn list_model(g: &Graph, q: usize, lists: &[Vec<usize>]) -> GibbsModel {
    assert_eq!(lists.len(), g.node_count(), "one list per vertex");
    let mut factors: Vec<Factor> = g.edges().iter().map(|e| diff_factor(e.u, e.v, q)).collect();
    for v in g.nodes() {
        let list = &lists[v.index()];
        assert!(!list.is_empty(), "empty color list at {v}");
        let mut allow = vec![0.0; q];
        for &c in list {
            assert!(c < q, "color {c} out of range at {v}");
            allow[c] = 1.0;
        }
        factors.push(Factor::unary(v, allow));
    }
    GibbsModel::new(g.clone(), q, factors, "list-coloring")
}

/// Returns `true` if `config` is a proper coloring of `g`.
pub fn is_proper(g: &Graph, config: &Config) -> bool {
    g.edges().iter().all(|e| config.get(e.u) != config.get(e.v))
}

/// The residual list of colors available at `v` given the pinned colors of
/// its neighbors — the self-reduction lists `L_v = [q] \ {τ_u : uv ∈ E}`.
pub fn residual_list(
    g: &Graph,
    q: usize,
    pinned: impl Fn(NodeId) -> Option<Value>,
    v: NodeId,
) -> Vec<usize> {
    let mut allowed = vec![true; q];
    for &u in g.neighbors(v) {
        if let Some(c) = pinned(u) {
            allowed[c.index()] = false;
        }
    }
    (0..q).filter(|&c| allowed[c]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distribution, PartialConfig};
    use lds_graph::generators;

    #[test]
    fn chromatic_polynomial_of_triangle() {
        // P(K3, q) = q(q-1)(q-2)
        let g = generators::complete(3);
        for q in 3..6 {
            let m = model(&g, q);
            let z = distribution::partition_function(&m, &PartialConfig::empty(3));
            let expect = (q * (q - 1) * (q - 2)) as f64;
            assert!((z - expect).abs() < 1e-9, "q={q}");
        }
    }

    #[test]
    fn chromatic_polynomial_of_cycle() {
        // P(C_n, q) = (q-1)^n + (-1)^n (q-1)
        let g = generators::cycle(5);
        let q = 3usize;
        let m = model(&g, q);
        let z = distribution::partition_function(&m, &PartialConfig::empty(5));
        let expect = ((q - 1) as f64).powi(5) - (q - 1) as f64;
        assert!((z - expect).abs() < 1e-9);
    }

    #[test]
    fn two_colorings_of_odd_cycle_are_infeasible() {
        let g = generators::cycle(5);
        let m = model(&g, 2);
        assert!(!distribution::is_feasible(&m, &PartialConfig::empty(5)));
    }

    #[test]
    fn list_coloring_restricts_colors() {
        let g = generators::path(2);
        // node 0 may be {0}, node 1 may be {0,1} -> only coloring (0,1)
        let m = list_model(&g, 2, &[vec![0], vec![0, 1]]);
        assert_eq!(
            distribution::feasible_count(&m, &PartialConfig::empty(2)),
            1
        );
        let joint = distribution::joint_distribution(&m, &PartialConfig::empty(2)).unwrap();
        assert_eq!(joint[0].0.get(NodeId(0)), Value(0));
        assert_eq!(joint[0].0.get(NodeId(1)), Value(1));
    }

    #[test]
    fn residual_lists_follow_remark_2_2() {
        let g = generators::path(3);
        let mut tau = PartialConfig::empty(3);
        tau.pin(NodeId(0), Value(2));
        let l1 = residual_list(&g, 3, |u| tau.get(u), NodeId(1));
        assert_eq!(l1, vec![0, 1]);
        let l2 = residual_list(&g, 3, |u| tau.get(u), NodeId(2));
        assert_eq!(l2, vec![0, 1, 2]);
    }

    #[test]
    fn proper_check() {
        let g = generators::path(3);
        assert!(is_proper(
            &g,
            &Config::from_values(vec![Value(0), Value(1), Value(0)])
        ));
        assert!(!is_proper(
            &g,
            &Config::from_values(vec![Value(0), Value(0), Value(1)])
        ));
    }

    #[test]
    fn conditioning_matches_list_model() {
        // pin a color and compare marginals with the residual list model
        let g = generators::path(3);
        let q = 3;
        let m = model(&g, q);
        let mut tau = PartialConfig::empty(3);
        tau.pin(NodeId(0), Value(0));
        let mu = distribution::marginal(&m, &tau, NodeId(1)).unwrap();
        // node 1 can be 1 or 2 with equal probability (by symmetry of node 2's lists)
        assert!((mu[0] - 0.0).abs() < 1e-12);
        assert!((mu[1] - 0.5).abs() < 1e-12);
        assert!((mu[2] - 0.5).abs() < 1e-12);
    }
}
