//! Weighted hypergraph matchings via the intersection-graph duality.
//!
//! A matching of a hypergraph `H` is a set of pairwise disjoint
//! hyperedges; with weight `λ` per hyperedge, `μ(M) ∝ λ^{|M|}`. Matchings
//! of `H` are independent sets of its intersection graph, so the model is
//! again the hardcore model on a derived graph. Corollary 5.3 samples
//! these in `O(log³ n)` rounds below the uniqueness threshold
//! `λ_c(r, Δ) = (Δ−1)^{Δ−1} / ((r−1)(Δ−2)^Δ)` (Song–Yin–Zhao RANDOM'16).

use lds_graph::{Graph, HyperEdgeId, Hypergraph, NodeId};

use crate::models::hardcore;
use crate::{Config, GibbsModel, Value};

/// A hypergraph-matching instance: the hypergraph, its intersection graph,
/// and the hardcore model over intersection-graph vertices (one per
/// hyperedge).
///
/// # Example
///
/// ```
/// use lds_gibbs::models::hypergraph_matching::HypergraphMatchingInstance;
/// use lds_gibbs::{distribution, PartialConfig};
/// use lds_graph::{Hypergraph, NodeId};
///
/// let h = Hypergraph::new(4, vec![
///     vec![NodeId(0), NodeId(1), NodeId(2)],
///     vec![NodeId(2), NodeId(3)],
/// ]);
/// let inst = HypergraphMatchingInstance::new(&h, 1.0);
/// // matchings: {}, {h0}, {h1} (h0 and h1 intersect) -> Z = 3
/// let z = distribution::partition_function(
///     inst.model(), &PartialConfig::empty(2));
/// assert!((z - 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct HypergraphMatchingInstance {
    hypergraph: Hypergraph,
    intersection: Graph,
    model: GibbsModel,
}

impl HypergraphMatchingInstance {
    /// Builds the weighted hypergraph-matching model with uniform
    /// hyperedge weight `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `λ` is negative or non-finite.
    pub fn new(h: &Hypergraph, lambda: f64) -> Self {
        let intersection = h.intersection_graph();
        let base = hardcore::model(&intersection, lambda);
        let model = GibbsModel::new(
            intersection.clone(),
            2,
            base.factors().to_vec(),
            "hypergraph-matching",
        );
        HypergraphMatchingInstance {
            hypergraph: h.clone(),
            intersection,
            model,
        }
    }

    /// The underlying hypergraph `H`.
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// The intersection graph; node `i` is hyperedge `HyperEdgeId(i)`.
    pub fn intersection_graph(&self) -> &Graph {
        &self.intersection
    }

    /// The hardcore model over the intersection graph.
    pub fn model(&self) -> &GibbsModel {
        &self.model
    }

    /// Decodes a configuration into the matched hyperedges.
    pub fn hyperedges_of(&self, config: &Config) -> Vec<HyperEdgeId> {
        (0..config.len())
            .filter(|&i| config.get(NodeId::from_index(i)) == Value(1))
            .map(HyperEdgeId::from_index)
            .collect()
    }

    /// Returns `true` if `edges` are pairwise disjoint hyperedges.
    pub fn is_matching(&self, edges: &[HyperEdgeId]) -> bool {
        let mut used = vec![false; self.hypergraph.node_count()];
        for &e in edges {
            for &v in self.hypergraph.edge(e) {
                if used[v.index()] {
                    return false;
                }
                used[v.index()] = true;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distribution, PartialConfig};

    fn triangle_hypergraph() -> Hypergraph {
        // three 2-element hyperedges forming a "path": h0={0,1}, h1={1,2}, h2={2,3}
        Hypergraph::new(
            4,
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3)],
            ],
        )
    }

    #[test]
    fn matches_graph_matchings_when_rank_two() {
        // rank-2 hypergraph matchings == graph matchings of P4: Z = 1+3λ+λ²
        let inst = HypergraphMatchingInstance::new(&triangle_hypergraph(), 2.0);
        let z = distribution::partition_function(inst.model(), &PartialConfig::empty(3));
        assert!((z - (1.0 + 6.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn feasible_configs_are_matchings() {
        let h = Hypergraph::new(
            5,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3), NodeId(4)],
                vec![NodeId(0), NodeId(4)],
            ],
        );
        let inst = HypergraphMatchingInstance::new(&h, 1.0);
        let joint =
            distribution::joint_distribution(inst.model(), &PartialConfig::empty(3)).unwrap();
        for (c, _) in &joint {
            let edges = inst.hyperedges_of(c);
            assert!(inst.is_matching(&edges));
        }
        // {}, {h0}, {h1}, {h2}, {h0 with h1}? no (share 2). {h0,h2}? share 0. {h1,h2}? share 4.
        assert_eq!(joint.len(), 4);
    }

    #[test]
    fn disjointness_check() {
        let inst = HypergraphMatchingInstance::new(&triangle_hypergraph(), 1.0);
        assert!(inst.is_matching(&[HyperEdgeId(0), HyperEdgeId(2)]));
        assert!(!inst.is_matching(&[HyperEdgeId(0), HyperEdgeId(1)]));
    }
}
