//! The paper's application models (Corollary 5.3).
//!
//! Every family here is a **local Gibbs distribution** (factor scopes are
//! vertices or edges, so locality `ℓ ≤ 1` on the model's carrier graph):
//!
//! * [`hardcore`] — weighted independent sets with fugacity `λ`; the
//!   model of the paper's headline computational phase transition at
//!   `λ_c(Δ) = (Δ−1)^{Δ−1}/(Δ−2)^Δ`.
//! * [`ising`] — the Ising model with edge interaction `β` and external
//!   field `h` (antiferromagnetic for `β < 0`).
//! * [`two_spin`] — general two-spin systems `(β, γ, λ)` subsuming both.
//! * [`coloring`] — proper `q`-colorings and list-colorings.
//! * [`matching`] — monomer–dimer (weighted matchings) via the line-graph
//!   duality: matchings of `G` are independent sets of `L(G)`.
//! * [`hypergraph_matching`] — weighted hypergraph matchings via the
//!   intersection-graph duality.

pub mod coloring;
pub mod hardcore;
pub mod hypergraph_matching;
pub mod ising;
pub mod matching;
pub mod two_spin;
