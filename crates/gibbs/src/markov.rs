//! The spatial Markov property of Gibbs distributions
//! (paper, Proposition 2.1).
//!
//! Let `H = (V, F)` be the constraint hypergraph with a hyperedge per
//! factor scope. If `C` separates `A` from `B` in `H`, then `Y_A ⫫ Y_B`
//! given any feasible pinning of `C`. This property is what makes the
//! paper's *local self-reductions* (Section 4) sound: marginals inside a
//! ball are fully determined once the ball's frontier is pinned.

use std::collections::HashSet;
use std::collections::VecDeque;

use lds_graph::{Hypergraph, NodeId};

use crate::{distribution, GibbsModel, PartialConfig, Value};

/// The constraint hypergraph of the model: one hyperedge per factor scope.
pub fn constraint_hypergraph(model: &GibbsModel) -> Hypergraph {
    Hypergraph::new(
        model.node_count(),
        model.factors().iter().map(|f| f.scope().to_vec()).collect(),
    )
}

/// Returns `true` if removing `C` disconnects every node of `A` from every
/// node of `B` in the constraint hypergraph (vertices are connected when
/// they share a hyperedge).
pub fn is_separator(model: &GibbsModel, a: &[NodeId], b: &[NodeId], c: &[NodeId]) -> bool {
    let blocked: HashSet<NodeId> = c.iter().copied().collect();
    let bset: HashSet<NodeId> = b.iter().copied().collect();
    // BFS over the clique expansion of the hypergraph, skipping C
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &s in a {
        if blocked.contains(&s) {
            continue;
        }
        if seen.insert(s) {
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        if bset.contains(&v) {
            return false;
        }
        for &fi in model.factors_touching(v) {
            for &w in model.factors()[fi].scope() {
                if !blocked.contains(&w) && seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
    }
    true
}

/// Measures the worst violation of conditional independence
/// `Pr[Y_A = σ_A ∧ Y_B = σ_B | Y_C = σ_C] =
///  Pr[Y_A = σ_A | Y_C] · Pr[Y_B = σ_B | Y_C]`
/// over all value assignments to `A` and `B`, given the pinning `sigma_c`
/// on `C`. Exact (by enumeration); small models only.
///
/// Returns the maximum absolute difference between the two sides, or
/// `None` if `sigma_c` is infeasible.
///
/// # Panics
///
/// Panics if `A`, `B` overlap each other or `C`.
pub fn conditional_independence_violation(
    model: &GibbsModel,
    a: &[NodeId],
    b: &[NodeId],
    sigma_c: &PartialConfig,
) -> Option<f64> {
    let aset: HashSet<NodeId> = a.iter().copied().collect();
    assert!(b.iter().all(|v| !aset.contains(v)), "A and B overlap");
    assert!(
        a.iter().chain(b.iter()).all(|&v| !sigma_c.is_pinned(v)),
        "A/B overlap the pinned separator"
    );
    if !distribution::is_feasible(model, sigma_c) {
        return None;
    }
    let q = model.alphabet_size();
    let mut worst = 0.0f64;
    let mut assignment_a = vec![Value(0); a.len()];
    let mut assignment_b = vec![Value(0); b.len()];
    // enumerate assignments to A and B by mixed-radix counters
    loop {
        loop {
            let p_ab = conditional_prob(model, sigma_c, a, &assignment_a, b, &assignment_b);
            let p_a = conditional_prob(model, sigma_c, a, &assignment_a, &[], &[]);
            let p_b = conditional_prob(model, sigma_c, b, &assignment_b, &[], &[]);
            worst = worst.max((p_ab - p_a * p_b).abs());
            if !increment(&mut assignment_b, q) {
                break;
            }
        }
        if !increment(&mut assignment_a, q) {
            break;
        }
    }
    Some(worst)
}

fn increment(values: &mut [Value], q: usize) -> bool {
    for v in values.iter_mut() {
        if v.index() + 1 < q {
            *v = Value::from_index(v.index() + 1);
            return true;
        }
        *v = Value(0);
    }
    false
}

fn conditional_prob(
    model: &GibbsModel,
    base: &PartialConfig,
    s1: &[NodeId],
    v1: &[Value],
    s2: &[NodeId],
    v2: &[Value],
) -> f64 {
    let mut pinned = base.clone();
    for (&s, &v) in s1.iter().zip(v1) {
        pinned.pin(s, v);
    }
    for (&s, &v) in s2.iter().zip(v2) {
        pinned.pin(s, v);
    }
    let z_cond = distribution::partition_function(model, &pinned);
    let z_base = distribution::partition_function(model, base);
    if z_base == 0.0 {
        0.0
    } else {
        z_cond / z_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::hardcore;
    use lds_graph::generators;

    #[test]
    fn hypergraph_mirrors_factor_scopes() {
        let g = generators::path(3);
        let m = hardcore::model(&g, 1.0);
        let h = constraint_hypergraph(&m);
        // 2 edge factors + 3 vertex factors
        assert_eq!(h.edge_count(), 5);
        assert_eq!(h.node_count(), 3);
    }

    #[test]
    fn middle_of_path_separates_ends() {
        let g = generators::path(3);
        let m = hardcore::model(&g, 1.0);
        assert!(is_separator(&m, &[NodeId(0)], &[NodeId(2)], &[NodeId(1)]));
        assert!(!is_separator(&m, &[NodeId(0)], &[NodeId(2)], &[]));
    }

    #[test]
    fn cycle_needs_two_cut_nodes() {
        let g = generators::cycle(6);
        let m = hardcore::model(&g, 1.0);
        assert!(!is_separator(&m, &[NodeId(0)], &[NodeId(3)], &[NodeId(1)]));
        assert!(is_separator(
            &m,
            &[NodeId(0)],
            &[NodeId(3)],
            &[NodeId(1), NodeId(5)]
        ));
    }

    #[test]
    fn conditional_independence_holds_across_separator() {
        // path 0-1-2-3-4, C = {2} separates {0,1} from {3,4}
        let g = generators::path(5);
        let m = hardcore::model(&g, 1.3);
        for val in [Value(0), Value(1)] {
            let mut c = PartialConfig::empty(5);
            c.pin(NodeId(2), val);
            let viol = conditional_independence_violation(
                &m,
                &[NodeId(0), NodeId(1)],
                &[NodeId(3), NodeId(4)],
                &c,
            )
            .unwrap();
            assert!(viol < 1e-12, "violation {viol} for separator value {val:?}");
        }
    }

    #[test]
    fn dependence_without_separator_is_detected() {
        // path 0-1-2 with nothing pinned: ends are correlated through the middle
        let g = generators::path(3);
        let m = hardcore::model(&g, 5.0);
        let c = PartialConfig::empty(3);
        let viol = conditional_independence_violation(&m, &[NodeId(0)], &[NodeId(2)], &c).unwrap();
        assert!(viol > 1e-3, "expected correlation, got {viol}");
    }

    #[test]
    fn infeasible_separator_pinning_returns_none() {
        let g = generators::path(3);
        let m = hardcore::model(&g, 1.0);
        let mut c = PartialConfig::empty(3);
        c.pin(NodeId(1), Value(1));
        // pin neighbor 0 occupied too -> infeasible base
        c.pin(NodeId(0), Value(1));
        assert!(conditional_independence_violation(&m, &[], &[NodeId(2)], &c).is_none());
    }
}
