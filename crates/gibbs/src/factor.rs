use std::fmt;

use lds_graph::NodeId;

use crate::Value;

/// A constraint `(f, S)` of a Gibbs distribution (paper, Definition 2.3):
/// a nonnegative function `f : Σ^S → R≥0` on a scope `S ⊆ V`, stored as a
/// dense row-major table.
///
/// The table index of an assignment `(c_0, ..., c_{k-1})` to the scope
/// `(s_0, ..., s_{k-1})` is `((c_0 · q + c_1) · q + c_2) · q + ...`, i.e.
/// the first scope node varies slowest.
///
/// A factor is *soft* if strictly positive everywhere, otherwise *hard*.
///
/// # Example
///
/// ```
/// use lds_gibbs::{Factor, Value};
/// use lds_graph::NodeId;
///
/// // hardcore edge constraint: forbid both endpoints occupied
/// let f = Factor::new(vec![NodeId(0), NodeId(1)], 2,
///                     vec![1.0, 1.0, 1.0, 0.0]);
/// assert!(f.is_hard());
/// assert_eq!(f.eval(&[Value(1), Value(1)]), 0.0);
/// assert_eq!(f.eval(&[Value(1), Value(0)]), 1.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Factor {
    scope: Vec<NodeId>,
    q: usize,
    table: Vec<f64>,
}

impl Factor {
    /// Creates a factor over `scope` with alphabet size `q` and the given
    /// dense `table` of length `q^|scope|`.
    ///
    /// # Panics
    ///
    /// Panics if the table length is not `q^|scope|`, if any entry is
    /// negative or non-finite, or if the scope contains duplicates.
    pub fn new(scope: Vec<NodeId>, q: usize, table: Vec<f64>) -> Self {
        let expect = q
            .checked_pow(u32::try_from(scope.len()).expect("scope too large"))
            .expect("table size overflow");
        assert_eq!(
            table.len(),
            expect,
            "table length {} != q^|S| = {}",
            table.len(),
            expect
        );
        assert!(
            table.iter().all(|&x| x.is_finite() && x >= 0.0),
            "factor entries must be finite and nonnegative"
        );
        let mut sorted = scope.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), scope.len(), "scope contains duplicates");
        Factor { scope, q, table }
    }

    /// A unary factor (vertex activity) on node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != q` (with `q` inferred from the length)
    /// — i.e. never; the length *defines* `q`. Panics on negative entries.
    pub fn unary(v: NodeId, weights: Vec<f64>) -> Self {
        let q = weights.len();
        Factor::new(vec![v], q, weights)
    }

    /// A binary factor on the edge `{u, v}` from a `q × q` matrix in
    /// row-major order (`row` = value of `u`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `q × q` or has negative entries.
    pub fn binary(u: NodeId, v: NodeId, q: usize, matrix: Vec<f64>) -> Self {
        Factor::new(vec![u, v], q, matrix)
    }

    /// The scope `S` of the factor, in table order.
    pub fn scope(&self) -> &[NodeId] {
        &self.scope
    }

    /// Alphabet size the table is defined over.
    pub fn alphabet_size(&self) -> usize {
        self.q
    }

    /// Evaluates the factor on an assignment to its scope (in scope order).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != |S|` or any value is out of range.
    pub fn eval(&self, assignment: &[Value]) -> f64 {
        assert_eq!(assignment.len(), self.scope.len(), "assignment arity");
        let mut idx = 0usize;
        for &v in assignment {
            debug_assert!(v.index() < self.q, "value {v:?} out of range");
            idx = idx * self.q + v.index();
        }
        self.table[idx]
    }

    /// Evaluates the factor on a full or partial assignment indexed by
    /// node id; returns `None` if some scope node is unassigned.
    pub fn eval_partial(&self, get: impl Fn(NodeId) -> Option<Value>) -> Option<f64> {
        let mut idx = 0usize;
        for &s in &self.scope {
            idx = idx * self.q + get(s)?.index();
        }
        Some(self.table[idx])
    }

    /// Returns `true` if the factor is hard (takes the value 0 somewhere).
    pub fn is_hard(&self) -> bool {
        self.table.contains(&0.0)
    }

    /// Remaps scope node ids through `f` (used when restricting a model to
    /// a subgraph with local ids).
    ///
    /// # Panics
    ///
    /// Panics if `f` returns `None` for a scope node.
    pub fn remap(&self, f: impl Fn(NodeId) -> Option<NodeId>) -> Factor {
        Factor {
            scope: self
                .scope
                .iter()
                .map(|&s| f(s).expect("scope node missing from remap"))
                .collect(),
            q: self.q,
            table: self.table.clone(),
        }
    }

    /// The raw table (row-major, first scope node slowest).
    pub fn table(&self) -> &[f64] {
        &self.table
    }
}

impl fmt::Debug for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Factor")
            .field("scope", &self.scope)
            .field("q", &self.q)
            .field("hard", &self.is_hard())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_and_binary_shapes() {
        let u = Factor::unary(NodeId(3), vec![1.0, 0.5]);
        assert_eq!(u.scope(), &[NodeId(3)]);
        assert_eq!(u.eval(&[Value(1)]), 0.5);
        assert!(!u.is_hard());

        let b = Factor::binary(NodeId(0), NodeId(1), 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.eval(&[Value(0), Value(1)]), 2.0);
        assert_eq!(b.eval(&[Value(1), Value(0)]), 3.0);
    }

    #[test]
    fn eval_partial_requires_full_scope() {
        let b = Factor::binary(NodeId(0), NodeId(1), 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.eval_partial(|_| Some(Value(1))), Some(4.0));
        assert_eq!(
            b.eval_partial(|v| (v == NodeId(0)).then_some(Value(0))),
            None
        );
    }

    #[test]
    fn remap_renames_scope() {
        let b = Factor::binary(NodeId(5), NodeId(9), 2, vec![1.0, 1.0, 1.0, 0.0]);
        let r = b.remap(|v| Some(NodeId(v.0 - 5)));
        assert_eq!(r.scope(), &[NodeId(0), NodeId(4)]);
        assert_eq!(r.eval(&[Value(1), Value(1)]), 0.0);
    }

    #[test]
    #[should_panic(expected = "table length")]
    fn rejects_bad_table_size() {
        let _ = Factor::new(vec![NodeId(0)], 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_entries() {
        let _ = Factor::unary(NodeId(0), vec![1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicate_scope() {
        let _ = Factor::new(vec![NodeId(0), NodeId(0)], 2, vec![1.0; 4]);
    }
}
