//! Distance measures between distributions.
//!
//! * [`tv_distance`] — total variation distance
//!   `d_TV(μ, ν) = ½‖μ − ν‖₁` (paper, Section 2).
//! * [`multiplicative_err`] — the multiplicative error function
//!   `err(μ, μ̂) = max_x |ln μ(x) − ln μ̂(x)|` with the paper's conventions
//!   `0/0 = 1` and `ln(0/0) = 0` (paper, eq. (2)).

use std::collections::HashMap;

use crate::Config;

/// Total variation distance between two probability vectors over the same
/// alphabet.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn tv_distance(mu: &[f64], nu: &[f64]) -> f64 {
    assert_eq!(mu.len(), nu.len(), "distributions over different alphabets");
    0.5 * mu
        .iter()
        .zip(nu.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// The multiplicative error `err(μ, μ̂) = max_x |ln μ(x) − ln μ̂(x)|`
/// (paper, eq. (2)).
///
/// Conventions follow the paper: if both entries are zero the term
/// contributes zero; if exactly one is zero the error is `+∞`.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn multiplicative_err(mu: &[f64], hat: &[f64]) -> f64 {
    assert_eq!(
        mu.len(),
        hat.len(),
        "distributions over different alphabets"
    );
    let mut worst = 0.0f64;
    for (&a, &b) in mu.iter().zip(hat.iter()) {
        let e = if a == 0.0 && b == 0.0 {
            0.0
        } else if a == 0.0 || b == 0.0 {
            f64::INFINITY
        } else {
            (a.ln() - b.ln()).abs()
        };
        worst = worst.max(e);
    }
    worst
}

/// Total variation distance between two joint distributions given as
/// `(configuration, probability)` lists (missing configurations count as
/// probability zero).
pub fn tv_distance_joint(mu: &[(Config, f64)], nu: &[(Config, f64)]) -> f64 {
    let mut diff: HashMap<Vec<crate::Value>, f64> = HashMap::new();
    for (c, p) in mu {
        *diff.entry(c.values().to_vec()).or_insert(0.0) += p;
    }
    for (c, p) in nu {
        *diff.entry(c.values().to_vec()).or_insert(0.0) -= p;
    }
    0.5 * diff.values().map(|d| d.abs()).sum::<f64>()
}

/// Normalizes a nonnegative vector into a probability vector in place.
///
/// # Panics
///
/// Panics if the total mass is not positive.
pub fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    assert!(total > 0.0, "cannot normalize zero mass");
    for x in v {
        *x /= total;
    }
}

/// Builds an empirical distribution over configurations from samples.
pub fn empirical_distribution(samples: &[Config]) -> Vec<(Config, f64)> {
    let mut counts: HashMap<Vec<crate::Value>, usize> = HashMap::new();
    for s in samples {
        *counts.entry(s.values().to_vec()).or_insert(0) += 1;
    }
    let n = samples.len() as f64;
    counts
        .into_iter()
        .map(|(vals, c)| (Config::from_values(vals), c as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn tv_of_identical_is_zero() {
        let p = vec![0.3, 0.7];
        assert_eq!(tv_distance(&p, &p), 0.0);
    }

    #[test]
    fn tv_of_disjoint_is_one() {
        assert!((tv_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn tv_simple_value() {
        assert!((tv_distance(&[0.5, 0.5], &[0.25, 0.75]) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn multiplicative_err_conventions() {
        // 0/0 contributes nothing
        assert_eq!(multiplicative_err(&[0.0, 1.0], &[0.0, 1.0]), 0.0);
        // single-sided zero is infinite
        assert_eq!(multiplicative_err(&[0.0, 1.0], &[0.5, 0.5]), f64::INFINITY);
        // symmetric ratio bound
        let e = multiplicative_err(&[0.5, 0.5], &[0.25, 0.75]);
        assert!((e - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn joint_tv_handles_missing_configs() {
        let a = vec![(Config::from_values(vec![Value(0)]), 1.0)];
        let b = vec![(Config::from_values(vec![Value(1)]), 1.0)];
        assert!((tv_distance_joint(&a, &b) - 1.0).abs() < 1e-15);
        assert_eq!(tv_distance_joint(&a, &a), 0.0);
    }

    #[test]
    fn empirical_distribution_counts() {
        let samples = vec![
            Config::from_values(vec![Value(0)]),
            Config::from_values(vec![Value(0)]),
            Config::from_values(vec![Value(1)]),
            Config::from_values(vec![Value(0)]),
        ];
        let emp = empirical_distribution(&samples);
        let p0 = emp
            .iter()
            .find(|(c, _)| c.get(lds_graph::NodeId(0)) == Value(0))
            .unwrap()
            .1;
        assert!((p0 - 0.75).abs() < 1e-15);
    }

    #[test]
    fn normalize_rescales() {
        let mut v = vec![1.0, 3.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "zero mass")]
    fn normalize_rejects_zero() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
    }
}
