//! Unified observability for the workspace: a process-wide metrics
//! registry, a lightweight span/event tracer, and the round-complexity
//! ledger that checks measured LOCAL rounds against the paper's bounds.
//!
//! The paper's central claims are *round-complexity* statements, so the
//! quantities this crate makes observable are not generic server
//! counters but the simulation costs the theorems bound: chromatic
//! scheduler rounds against the `O(log² n)`-flavored upper bounds
//! ([`RoundLedger`]), Glauber sweep counts against their certified
//! plans, and — below those — the mechanical health of every layer
//! that executes them (pool steals, halo bytes, queue depths, wire
//! latencies).
//!
//! Design constraints, in order:
//!
//! 1. **Dependency-free.** `lds-runtime` is dependency-free and must be
//!    instrumentable, so this crate sits at the very bottom of the
//!    workspace graph and uses `std` only.
//! 2. **Lock-free hot path.** Counters, gauges, and histogram
//!    recordings are single relaxed atomic operations on pre-resolved
//!    handles. Name lookup (the only locking operation) happens once at
//!    registration; hot paths hold `Arc` handles.
//! 3. **~Zero cost when idle.** Event tracing is off by default; the
//!    disabled path is one relaxed load and a branch
//!    ([`trace::emit`]), so width-1 microbenchmarks pay nothing
//!    measurable.
//!
//! The registry is process-global ([`global`]) so the live `NetServer`
//! (`Op::Metrics`) and the bench harness (`perf_telemetry`) read the
//! same numbers by construction. Independent registries can still be
//! created for tests ([`MetricsRegistry::new`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod ledger;
mod registry;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use ledger::{LedgerSummary, ObservableKind, RoundLedger, RoundObservation};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};

use std::sync::OnceLock;

/// The process-wide registry every instrumented layer records into.
///
/// `Op::Metrics` snapshots this registry; `perf_telemetry` reads it;
/// [`MetricsSnapshot::render_text`] renders it for scraping.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// The process-wide round ledger (see [`RoundLedger`]). Engine runs
/// record their measured rounds/sweeps here; tests and telemetry check
/// it for bound violations.
pub fn ledger() -> &'static RoundLedger {
    static LEDGER: OnceLock<RoundLedger> = OnceLock::new();
    LEDGER.get_or_init(RoundLedger::new)
}
