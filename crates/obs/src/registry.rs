//! The named-metric registry and its snapshot/exposition forms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter. Bumping is one relaxed
/// `fetch_add` on a pre-resolved handle.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `by` to the counter.
    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous signed level (queue depth, in-flight
/// count). All operations are single relaxed atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `by` (may be negative).
    pub fn add(&self, by: i64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Registration (name → handle) takes a lock once; the returned `Arc`
/// handles are lock-free to operate. Handles for one name are shared:
/// registering `"pool_jobs"` twice yields the same counter, so layers
/// can resolve their handles independently without coordination.
///
/// Most code uses the process-wide instance ([`crate::global`]);
/// independent instances exist for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("metrics registry lock")
                .entry(name)
                .or_default(),
        )
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("metrics registry lock")
                .entry(name)
                .or_default(),
        )
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("metrics registry lock")
                .entry(name)
                .or_default(),
        )
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name. Concurrent recordings land on one side of the snapshot or
    /// the other, never half-applied per metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry lock")
            .iter()
            .map(|(&name, c)| (name.to_owned(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry lock")
            .iter()
            .map(|(&name, g)| (name.to_owned(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry lock")
            .iter()
            .map(|(&name, h)| (name.to_owned(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]: plain data, sorted
/// by name, safe to ship across threads or the wire (`Op::Metrics`)
/// and to render for scraping ([`MetricsSnapshot::render_text`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every registered gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every registered histogram, sorted by
    /// name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The level of a gauge by name, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A histogram snapshot by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as quantile summaries with `_sum`/`_count`.
    /// Deterministic (sorted by name) so two snapshots compare equal
    /// iff their renderings do.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in [0.5, 0.9, 0.99] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("hits").get(), 3);

        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("depth").get(), 3);

        reg.histogram("lat").record(42);
        assert_eq!(reg.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(2);
        reg.gauge("mid").set(-7);
        reg.histogram("lat").record(100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.counter("alpha"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("mid"), Some(-7));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn text_exposition_round_trips_equality() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs").add(7);
        reg.gauge("depth").set(2);
        let h = reg.histogram("lat");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.render_text();
        assert!(text.contains("# TYPE jobs counter"));
        assert!(text.contains("jobs 7"));
        assert!(text.contains("depth 2"));
        assert!(text.contains("lat{quantile=\"0.5\"} 20"));
        assert!(text.contains("lat_count 3"));
        assert!(text.contains("lat_sum 60"));
        // deterministic: equal snapshots render identically
        assert_eq!(text, reg.snapshot().render_text());
    }
}
