//! Lightweight span/event tracing: per-thread ring buffers of typed
//! events with monotonic timestamps and request-id correlation.
//!
//! Tracing is **off by default**. The disabled emit path is one
//! relaxed atomic load and a branch, so instrumented hot loops (the
//! width-1 serving path, pool steal loops) pay ~nothing until a test
//! or operator turns sampling on with [`set_sampling`]. With sampling
//! `k`, every `k`-th emitted event (per thread) is recorded into that
//! thread's fixed-size ring; [`drain`] collects the rings from every
//! thread that ever recorded, in timestamp order.
//!
//! Correlation: layers that serve one logical request (serve dispatch,
//! net sessions) wrap the work in [`with_request_id`], and every event
//! recorded inside carries that id — following one request across
//! engine → serve → net is a filter, not a join.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events the instrumented layers emit. Variants are intentionally
/// plain (copyable, no heap) so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A chromatic color round began (`color` index).
    RoundStart {
        /// Color index within the schedule.
        color: u32,
    },
    /// A chromatic color round finished.
    RoundEnd {
        /// Color index within the schedule.
        color: u32,
        /// Clusters simulated in this round.
        clusters: u32,
    },
    /// One cluster was dispatched to a pool worker.
    ClusterDispatch {
        /// Color index within the schedule.
        color: u32,
        /// Cluster index within the color.
        cluster: u32,
        /// Size of the cluster's halo (nodes shipped).
        halo: u32,
    },
    /// A request entered a serving queue (depth after enqueue).
    QueueEnqueue {
        /// Queue depth after the enqueue.
        depth: u32,
    },
    /// A request left a serving queue (depth after dequeue).
    QueueDequeue {
        /// Queue depth after the dequeue.
        depth: u32,
    },
    /// An idempotency-cache hit.
    CacheHit,
    /// An idempotency-cache miss.
    CacheMiss,
    /// A wire frame was encoded (payload bytes).
    WireEncode {
        /// Encoded payload length.
        bytes: u32,
    },
    /// A wire frame was decoded (payload bytes).
    WireDecode {
        /// Decoded payload length.
        bytes: u32,
    },
    /// A named span opened (pair with `SpanEnd` by name + thread).
    SpanStart {
        /// Static span name.
        name: &'static str,
    },
    /// A named span closed.
    SpanEnd {
        /// Static span name.
        name: &'static str,
    },
}

/// One recorded event: what, when (monotonic ns since the process's
/// first trace use), and for which request (0 = none).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the process trace epoch (monotonic).
    pub at_ns: u64,
    /// The request id in scope when the event fired (0 = none).
    pub request_id: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Events retained per thread; older events are overwritten.
const RING_CAPACITY: usize = 4096;

struct Ring {
    records: Vec<TraceRecord>,
    next: usize,
}

impl Ring {
    fn push(&mut self, r: TraceRecord) {
        if self.records.len() < RING_CAPACITY {
            self.records.push(r);
        } else {
            self.records[self.next] = r;
            self.next = (self.next + 1) % RING_CAPACITY;
        }
    }
}

/// Sampling knob: 0 = disabled, k = record every k-th event per thread.
static SAMPLING: AtomicU32 = AtomicU32::new(0);
/// Monotonically growing request-id source for layers that need one.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
    static LOCAL_SKIP: Cell<u32> = const { Cell::new(0) };
    static REQUEST_ID: Cell<u64> = const { Cell::new(0) };
}

/// Sets the sampling rate: `0` disables tracing (the default), `1`
/// records every event, `k` records every `k`-th event per thread.
pub fn set_sampling(every: u32) {
    SAMPLING.store(every, Ordering::Relaxed);
}

/// The current sampling rate (0 = disabled).
pub fn sampling() -> u32 {
    SAMPLING.load(Ordering::Relaxed)
}

/// A fresh process-unique request id (never 0).
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Runs `f` with `id` as the thread's current request id; events
/// emitted inside carry it. Restores the previous id on exit (nesting
/// is fine).
pub fn with_request_id<R>(id: u64, f: impl FnOnce() -> R) -> R {
    let prev = REQUEST_ID.with(|r| r.replace(id));
    let out = f();
    REQUEST_ID.with(|r| r.set(prev));
    out
}

/// The request id currently in scope on this thread (0 = none).
pub fn current_request_id() -> u64 {
    REQUEST_ID.with(|r| r.get())
}

/// Emits one event. With sampling disabled this is one relaxed load
/// and a branch; with sampling `k` every `k`-th call per thread locks
/// the thread's own (uncontended) ring and records.
#[inline]
pub fn emit(event: TraceEvent) {
    let every = SAMPLING.load(Ordering::Relaxed);
    if every == 0 {
        return;
    }
    let due = LOCAL_SKIP.with(|s| {
        let n = s.get() + 1;
        if n >= every {
            s.set(0);
            true
        } else {
            s.set(n);
            false
        }
    });
    if !due {
        return;
    }
    let record = TraceRecord {
        at_ns: epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64,
        request_id: current_request_id(),
        event,
    };
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring {
                records: Vec::new(),
                next: 0,
            }));
            rings()
                .lock()
                .expect("trace ring registry lock")
                .push(Arc::clone(&ring));
            ring
        });
        ring.lock().expect("trace ring lock").push(record);
    });
}

/// Collects and clears every thread's recorded events, in timestamp
/// order. Threads recording concurrently may land events after the
/// drain; each recorded event is returned exactly once.
pub fn drain() -> Vec<TraceRecord> {
    let rings = rings().lock().expect("trace ring registry lock");
    let mut out: Vec<TraceRecord> = Vec::new();
    for ring in rings.iter() {
        let mut ring = ring.lock().expect("trace ring lock");
        out.append(&mut ring.records);
        ring.next = 0;
    }
    out.sort_by_key(|r| r.at_ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // the sampling knob and rings are process-global; serialize the
    // tests that flip them
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = lock();
        set_sampling(0);
        drain();
        emit(TraceEvent::CacheHit);
        emit(TraceEvent::CacheMiss);
        assert!(drain().is_empty());
    }

    #[test]
    fn sampling_one_records_everything_in_order() {
        let _g = lock();
        set_sampling(1);
        drain();
        emit(TraceEvent::RoundStart { color: 0 });
        emit(TraceEvent::ClusterDispatch {
            color: 0,
            cluster: 2,
            halo: 9,
        });
        emit(TraceEvent::RoundEnd {
            color: 0,
            clusters: 3,
        });
        set_sampling(0);
        let events = drain();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(events[0].event, TraceEvent::RoundStart { color: 0 });
        assert_eq!(
            events[1].event,
            TraceEvent::ClusterDispatch {
                color: 0,
                cluster: 2,
                halo: 9
            }
        );
        // a second drain is empty
        assert!(drain().is_empty());
    }

    #[test]
    fn sampling_k_keeps_every_kth() {
        let _g = lock();
        set_sampling(3);
        drain();
        for _ in 0..9 {
            emit(TraceEvent::CacheHit);
        }
        set_sampling(0);
        assert_eq!(drain().len(), 3);
    }

    #[test]
    fn request_ids_correlate_and_nest() {
        let _g = lock();
        set_sampling(1);
        drain();
        assert_eq!(current_request_id(), 0);
        with_request_id(7, || {
            emit(TraceEvent::CacheHit);
            with_request_id(8, || emit(TraceEvent::CacheMiss));
            emit(TraceEvent::CacheHit);
        });
        set_sampling(0);
        let ids: Vec<u64> = drain().iter().map(|r| r.request_id).collect();
        assert_eq!(ids, [7, 8, 7]);
        assert_eq!(current_request_id(), 0);
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn cross_thread_events_are_all_collected() {
        let _g = lock();
        set_sampling(1);
        drain();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10 {
                        emit(TraceEvent::SpanStart { name: "t" });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_sampling(0);
        assert_eq!(drain().len(), 30);
    }
}
