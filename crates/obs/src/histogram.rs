//! A lock-free log-linear histogram for latency-style values.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave: values within one power of two are resolved
/// to 16 linear steps, bounding the relative quantile error at ~6%.
const SUB: usize = 16;
/// Values below `SUB` get exact unit buckets.
const LINEAR: usize = SUB;
/// Octaves covered above the linear range (`2^4 ..= 2^63`).
const OCTAVES: usize = 60;
/// Total bucket count.
const BUCKETS: usize = LINEAR + OCTAVES * SUB;

/// The bucket index for a value: exact below [`LINEAR`], then 16
/// linear sub-buckets per power of two.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // ≥ 4
    let sub = ((v >> (exp - 4)) & (SUB as u64 - 1)) as usize;
    LINEAR + (exp - 4) * SUB + sub
}

/// The smallest value mapping to a bucket index.
fn bucket_lower(i: usize) -> u64 {
    if i < LINEAR {
        return i as u64;
    }
    let oct = (i - LINEAR) / SUB;
    let sub = (i - LINEAR) % SUB;
    let exp = oct + 4;
    (1u64 << exp) + ((sub as u64) << (exp - 4))
}

/// The representative value reported for a bucket: its midpoint (the
/// bucket's lower bound for the exact unit buckets).
fn bucket_mid(i: usize) -> u64 {
    if i < LINEAR {
        return i as u64;
    }
    let exp = (i - LINEAR) / SUB + 4;
    let width = 1u64 << (exp - 4);
    bucket_lower(i).saturating_add(width / 2)
}

/// A lock-free log-linear histogram of `u64` observations (typically
/// nanoseconds). Recording is one relaxed `fetch_add` into a bucket
/// plus count/sum/max maintenance — safe from any thread, no locking,
/// no allocation. Quantiles are derived from the bucket counts on
/// demand (p50/p90/p99 within ~6% relative error) via
/// [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts. Concurrent recordings
    /// may land in either side of the snapshot; each observation is
    /// counted at most once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_mid(i), n))
            })
            .collect();
        // derive count from the captured buckets so the snapshot is
        // internally consistent even under concurrent recording
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: the non-empty buckets as
/// `(representative value, count)` pairs in increasing value order,
/// plus count/sum/max. This is the form that crosses the wire in
/// `Op::Metrics` and the form quantiles are computed from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations in `buckets`.
    pub count: u64,
    /// Sum of all recorded values (for the mean).
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// Non-empty buckets: `(representative value, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]`: the representative value of
    /// the bucket containing the `⌈q · count⌉`-th smallest observation
    /// (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(value, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return value;
            }
        }
        self.buckets.last().map(|&(v, _)| v).unwrap_or(0)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_monotone_and_consistent() {
        // every value maps into a bucket whose [lower, lower+width)
        // range contains it, and indices are monotone in the value
        let mut prev = 0;
        for v in (0..4096u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            assert!(bucket_lower(i) <= v, "lower bound above value at {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_lower(i + 1) > v, "value past bucket end at {v}");
            }
            assert!(bucket_mid(i) >= bucket_lower(i));
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 15] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 15);
        assert_eq!(s.max, 15);
        assert_eq!(s.sum, 21);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        for (q, expect) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = s.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.07, "q{q}: got {got}, want ~{expect} (rel {rel:.3})");
        }
        assert_eq!(s.max, 10_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
    }
}
