//! The round-complexity ledger: measured LOCAL costs against the
//! paper's predicted bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which theorem-backed observable an entry checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObservableKind {
    /// Simulated chromatic-scheduler rounds against the model's round
    /// bound (`RunReport::rounds` vs `RunReport::bound_rounds`).
    /// Violated when `measured > bound`.
    ChromaticRounds,
    /// Glauber sweeps actually executed against the sweep count the
    /// certified plan resolved at build time. The plan *is* the
    /// execution schedule, so any inequality is a violation.
    GlauberSweeps,
}

/// One recorded observation: a measured cost, the predicted bound, and
/// the rule that relates them.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundObservation {
    /// What is being checked.
    pub kind: ObservableKind,
    /// A short label for the run's model (e.g. `"hardcore"`).
    pub label: &'static str,
    /// The measured cost (rounds or sweeps).
    pub measured: f64,
    /// The predicted bound (round bound or planned sweeps).
    pub bound: f64,
}

impl RoundObservation {
    /// `measured / bound` (`∞` against a zero bound).
    pub fn ratio(&self) -> f64 {
        if self.bound == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.bound
        }
    }

    /// `true` when the observation breaks its kind's rule.
    pub fn violates(&self) -> bool {
        match self.kind {
            ObservableKind::ChromaticRounds => self.measured > self.bound,
            ObservableKind::GlauberSweeps => self.measured != self.bound,
        }
    }
}

/// Aggregate view of a ledger: what tests and telemetry gate on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LedgerSummary {
    /// Observations recorded.
    pub observations: u64,
    /// Observations that broke their bound.
    pub violations: u64,
    /// The largest `measured / bound` ratio seen (0 when empty).
    pub max_ratio: f64,
}

/// Accumulates [`RoundObservation`]s across runs and flags bound
/// violations.
///
/// The engine records every sampling run's measured rounds (and, for
/// Glauber-served runs, sweeps) into the process ledger
/// ([`crate::ledger`]); `tests/round_ledger.rs` and `perf_telemetry`
/// treat a nonzero violation count as a hard error — a run that beats
/// its own paper bound is working evidence, one that exceeds it is a
/// broken theorem mapping, never noise.
#[derive(Debug, Default)]
pub struct RoundLedger {
    observations: Mutex<Vec<RoundObservation>>,
    recorded: AtomicU64,
    violations: AtomicU64,
}

/// Observations retained for inspection; aggregate counters keep
/// counting beyond this.
const RETAINED: usize = 4096;

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Records one observation; returns `false` (and counts a
    /// violation) when it breaks its bound.
    pub fn record(&self, obs: RoundObservation) -> bool {
        let ok = !obs.violates();
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        let mut retained = self.observations.lock().expect("round ledger lock");
        if retained.len() < RETAINED {
            retained.push(obs);
        } else {
            // keep the window moving: overwrite round-robin by count
            let i = (self.recorded.load(Ordering::Relaxed) as usize - 1) % RETAINED;
            retained[i] = obs;
        }
        ok
    }

    /// Convenience: record a chromatic-rounds check.
    pub fn record_rounds(&self, label: &'static str, measured: usize, bound: f64) -> bool {
        self.record(RoundObservation {
            kind: ObservableKind::ChromaticRounds,
            label,
            measured: measured as f64,
            bound,
        })
    }

    /// Convenience: record a Glauber sweeps-vs-plan check.
    pub fn record_sweeps(&self, label: &'static str, measured: u64, planned: u64) -> bool {
        self.record(RoundObservation {
            kind: ObservableKind::GlauberSweeps,
            label,
            measured: measured as f64,
            bound: planned as f64,
        })
    }

    /// Observations that broke their bound so far.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// The retained observations (most recent `RETAINED`).
    pub fn observations(&self) -> Vec<RoundObservation> {
        self.observations.lock().expect("round ledger lock").clone()
    }

    /// Aggregates the ledger into the numbers gates consume.
    pub fn summary(&self) -> LedgerSummary {
        let max_ratio = self
            .observations
            .lock()
            .expect("round ledger lock")
            .iter()
            .map(RoundObservation::ratio)
            .fold(0.0, f64::max);
        LedgerSummary {
            observations: self.recorded.load(Ordering::Relaxed),
            violations: self.violations(),
            max_ratio,
        }
    }

    /// `Err` with the violating observations when any bound broke —
    /// the hard-error form tests use.
    pub fn check(&self) -> Result<(), Vec<RoundObservation>> {
        if self.violations() == 0 {
            return Ok(());
        }
        Err(self
            .observations()
            .into_iter()
            .filter(RoundObservation::violates)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_bound_observations_are_clean() {
        let ledger = RoundLedger::new();
        assert!(ledger.record_rounds("hardcore", 40, 64.0));
        assert!(ledger.record_rounds("ising", 64, 64.0)); // boundary is ok
        assert!(ledger.record_sweeps("glauber", 12, 12));
        assert_eq!(ledger.violations(), 0);
        assert!(ledger.check().is_ok());
        let s = ledger.summary();
        assert_eq!(s.observations, 3);
        assert!((s.max_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn violations_are_flagged_as_hard_errors() {
        let ledger = RoundLedger::new();
        assert!(!ledger.record_rounds("coloring", 65, 64.0));
        assert!(!ledger.record_sweeps("glauber", 11, 12)); // != plan, even below
        assert!(ledger.record_rounds("matching", 10, 64.0));
        assert_eq!(ledger.violations(), 2);
        let broken = ledger.check().unwrap_err();
        assert_eq!(broken.len(), 2);
        assert!(broken.iter().all(RoundObservation::violates));
        let s = ledger.summary();
        assert_eq!(s.observations, 3);
        assert_eq!(s.violations, 2);
        assert!(s.max_ratio > 1.0);
    }

    #[test]
    fn ratio_handles_zero_bounds() {
        let zero = RoundObservation {
            kind: ObservableKind::ChromaticRounds,
            label: "z",
            measured: 0.0,
            bound: 0.0,
        };
        assert_eq!(zero.ratio(), 0.0);
        assert!(!zero.violates());
        let inf = RoundObservation {
            measured: 3.0,
            ..zero.clone()
        };
        assert!(inf.ratio().is_infinite());
        assert!(inf.violates());
    }

    #[test]
    fn retention_caps_memory_but_not_counts() {
        let ledger = RoundLedger::new();
        for i in 0..(RETAINED as u64 + 100) {
            ledger.record_rounds("bulk", i as usize % 10, 100.0);
        }
        assert_eq!(ledger.summary().observations, RETAINED as u64 + 100);
        assert_eq!(ledger.observations().len(), RETAINED);
    }
}
