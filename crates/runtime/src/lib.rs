//! Deterministic parallel runtime for the lds workspace.
//!
//! The paper's SLOCAL→LOCAL transformation (Lemma 3.1) is defined by
//! *parallel* simulation of same-color clusters, and every multi-seed
//! workload (batched sampling, Monte Carlo marginal reconstruction,
//! boosted-inference trials) consists of independent executions. This
//! crate supplies the two ingredients that let the workspace exploit that
//! parallelism without giving up reproducibility:
//!
//! * [`ThreadPool`] — a `std::thread` work-stealing pool (instrumented
//!   through `lds-obs`, the only dependency).
//!   Workers self-schedule by stealing the next unclaimed item index from
//!   a shared atomic counter; results are gathered **in input order**, so
//!   [`ThreadPool::par_map`] is a drop-in replacement for a sequential
//!   `map` regardless of how the OS schedules the workers.
//! * [`channel::bounded`] — a blocking bounded MPMC channel. The pool
//!   parks workers on an unbounded `std::sync::mpsc` job channel; a
//!   serving front-end needs the inverse: a bounded request queue whose
//!   "full" state is an admission-control signal (`try_send` →
//!   overload rejection) and whose `recv_timeout` is the coalescing
//!   window. `lds-serve` builds on this.
//! * [`CancelToken`] — cooperative cancellation checked *between*
//!   units of work (color rounds, sweeps). A check consumes no
//!   randomness, so deadline-bounded runs that complete are
//!   bit-identical to unbounded ones; `lds-engine` maps a cancelled
//!   run into its typed `DeadlineExceeded`.
//! * [`ShutdownSignal`] — a cloneable level-triggered stop flag with
//!   parked waiting, the broadcast bit a network front door
//!   (`lds-net`) uses to stop accepting, drain in-flight sessions, and
//!   exit without busy-waiting.
//! * [`StreamRng`] — counter-based derivation of independent RNG streams
//!   from `(seed, label, label, ...)` paths. Because every parallel task
//!   derives its own stream instead of sharing mutable RNG state, the
//!   bits a task consumes are a pure function of the master seed and the
//!   task's identity — never of thread interleaving. This is what makes
//!   every result of the workspace **bit-identical across thread
//!   counts** (locked down by `tests/determinism.rs`).
//!
//! The pool width is configured explicitly (e.g.
//! `EngineBuilder::threads(n)` in `lds-engine`); [`ThreadPool::from_env`]
//! honors the `LDS_THREADS` environment variable used by the CI matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
pub mod channel;
mod phase;
mod pool;
mod shutdown;
mod stream;

pub use cancel::{CancelToken, Cancelled};
pub use phase::Phase;
pub use pool::ThreadPool;
pub use shutdown::ShutdownSignal;
pub use stream::{splitmix64, streams, StreamRng};
