//! Cooperative shutdown signaling.
//!
//! A serving process needs one broadcast bit — "stop taking new work,
//! drain, exit" — observable from many threads: an acceptor loop polling
//! a listener, session threads parked on read timeouts, drain loops
//! waiting for in-flight work. [`ShutdownSignal`] is that bit as a
//! dependency-free primitive: an `Arc`-shared flag plus a condvar so
//! pollers can *sleep* between checks instead of spinning, and be woken
//! the instant the signal trips.
//!
//! The signal is level-triggered and idempotent: once tripped it stays
//! tripped, every clone observes it, and further [`ShutdownSignal::trigger`]
//! calls are no-ops. `lds-net` uses it to stop its accept loop and to
//! tell per-connection sessions to finish in-flight requests and close.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A cloneable, level-triggered shutdown flag with parked waiting.
///
/// # Example
///
/// ```
/// use lds_runtime::ShutdownSignal;
/// use std::time::Duration;
///
/// let signal = ShutdownSignal::new();
/// let observer = signal.clone();
/// assert!(!observer.is_triggered());
/// // a poller sleeps up to the timeout, waking early on trigger
/// assert!(!observer.wait_timeout(Duration::from_millis(1)));
/// signal.trigger();
/// assert!(observer.is_triggered());
/// assert!(observer.wait_timeout(Duration::from_secs(60))); // returns now
/// ```
#[derive(Clone, Debug, Default)]
pub struct ShutdownSignal {
    shared: Arc<Shared>,
}

#[derive(Debug, Default)]
struct Shared {
    triggered: Mutex<bool>,
    wake: Condvar,
}

impl ShutdownSignal {
    /// A fresh, untriggered signal.
    pub fn new() -> Self {
        ShutdownSignal::default()
    }

    /// Trips the signal and wakes every parked waiter. Idempotent.
    pub fn trigger(&self) {
        let mut t = self.shared.triggered.lock().expect("shutdown poisoned");
        if !*t {
            *t = true;
            self.shared.wake.notify_all();
        }
    }

    /// Whether the signal has been tripped.
    pub fn is_triggered(&self) -> bool {
        *self.shared.triggered.lock().expect("shutdown poisoned")
    }

    /// Parks the caller until the signal trips or `timeout` elapses;
    /// returns whether the signal is tripped. This is the accept-loop
    /// primitive: poll a non-blocking resource, then sleep here instead
    /// of busy-waiting, waking immediately on shutdown.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.shared.triggered.lock().expect("shutdown poisoned");
        if *guard {
            return true;
        }
        let (guard, _) = self
            .shared
            .wake
            .wait_timeout(guard, timeout)
            .expect("shutdown poisoned");
        *guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn trigger_is_broadcast_and_idempotent() {
        let signal = ShutdownSignal::new();
        assert!(!signal.is_triggered());
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let s = signal.clone();
                thread::spawn(move || s.wait_timeout(Duration::from_secs(30)))
            })
            .collect();
        signal.trigger();
        signal.trigger(); // idempotent
        for w in waiters {
            assert!(w.join().unwrap(), "waiter must observe the trigger");
        }
        assert!(signal.is_triggered());
        // once tripped, waits return immediately
        assert!(signal.wait_timeout(Duration::ZERO));
    }

    #[test]
    fn wait_times_out_while_untriggered() {
        let signal = ShutdownSignal::new();
        assert!(!signal.wait_timeout(Duration::from_millis(2)));
    }
}
