//! The work-stealing thread pool.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic `std::thread` work-stealing pool.
///
/// The pool is a *width*, not a set of live threads: each
/// [`par_map`](ThreadPool::par_map) call spawns scoped workers (so
/// closures may borrow from the caller without `'static` bounds) that
/// self-schedule by stealing the next unclaimed item index from a shared
/// atomic counter. An idle worker always steals the globally next item,
/// so load imbalance between items is absorbed without any per-worker
/// queues — and because every result lands in the slot of its input
/// index, the output order is the input order no matter which worker ran
/// which item.
///
/// Determinism contract: `par_map(items, f)` returns exactly
/// `items.iter().map(f).collect()` provided `f` is a pure function of
/// its item (no shared mutable state). All the workspace's parallel call
/// sites derive per-task RNG streams via [`crate::StreamRng`] to satisfy
/// this, which is what `tests/determinism.rs` locks down.
///
/// # Example
///
/// ```
/// use lds_runtime::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    /// Same as [`ThreadPool::from_env`].
    fn default() -> Self {
        ThreadPool::from_env()
    }
}

impl ThreadPool {
    /// A pool of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        ThreadPool { threads }
    }

    /// The single-threaded pool: every `par_map` runs inline on the
    /// caller's thread. This recovers exactly the pre-runtime sequential
    /// behavior.
    pub fn sequential() -> Self {
        ThreadPool::new(1)
    }

    /// A pool as wide as the machine (`std::thread::available_parallelism`).
    pub fn available() -> Self {
        ThreadPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Pool width from the `LDS_THREADS` environment variable, falling
    /// back to [`ThreadPool::available`] when unset or unparsable. This
    /// is the knob the CI determinism matrix turns.
    pub fn from_env() -> Self {
        match std::env::var("LDS_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(n) if n > 0 => ThreadPool::new(n),
            _ => ThreadPool::available(),
        }
    }

    /// The pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if `par_map` runs inline (width 1).
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, fanning the work across the pool and
    /// gathering the results **in input order**.
    ///
    /// With width 1 (or at most one item) this runs inline with no
    /// thread spawns. A panic in `f` is resumed on the caller's thread
    /// after the remaining workers drain.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let workers = self.threads.min(items.len());
        let next = AtomicUsize::new(0);
        let f = &f;
        let next = &next;
        let harvested: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            // steal the next unclaimed index
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(item)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| panic::resume_unwind(e)))
                .collect()
        });
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in harvested.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.par_map(&items, |&x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(pool.par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // one huge item plus many tiny ones: all results still in order
        let items: Vec<u64> = (0..64).collect();
        let pool = ThreadPool::new(4);
        let out = pool.par_map(&items, |&x| {
            if x == 0 {
                (0..200_000u64).fold(0u64, |a, b| a.wrapping_add(b)) % 2 + x
            } else {
                x
            }
        });
        assert_eq!(out[0], 0);
        assert_eq!(&out[1..], &items[1..]);
    }

    #[test]
    fn closures_may_borrow_locals() {
        let base = vec![10u64, 20, 30];
        let pool = ThreadPool::new(2);
        let out = pool.par_map(&[0usize, 1, 2], |&i| base[i]);
        assert_eq!(out, base);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(2);
        let _ = pool.par_map(&[1u64, 2, 3, 4], |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn env_override_parses() {
        // from_env falls back to available() on unset/garbage; explicit
        // construction is what the engine uses, so just sanity-check
        // the width accessors.
        assert!(ThreadPool::available().threads() >= 1);
        assert!(ThreadPool::sequential().is_sequential());
        assert_eq!(ThreadPool::new(5).threads(), 5);
    }
}
