//! The persistent work-stealing thread pool.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

/// A job shipped to a parked worker: a boxed `'static` closure, so no
/// borrow from any caller's stack ever crosses into a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool observability handles, resolved against the process metrics
/// registry once. Every operation on them is a single relaxed atomic,
/// and they are touched **only on the fan-out path** — the width-1 /
/// single-item inline path of [`ThreadPool::par_map`] stays exactly
/// `items.iter().map(f).collect()` with zero instrumentation, which is
/// what keeps the microbenchmark gates honest.
struct PoolMetrics {
    /// Helper jobs enqueued to parked workers (one per lane fanned out).
    jobs: Arc<lds_obs::Counter>,
    /// Items claimed by helper lanes (the caller's own claims are the
    /// remainder of the per-call item count).
    steals: Arc<lds_obs::Counter>,
    /// Times a worker began waiting for a job (parked).
    parks: Arc<lds_obs::Counter>,
    /// Times a worker woke with a job (unparked).
    unparks: Arc<lds_obs::Counter>,
    /// Helper jobs currently enqueued but not yet picked up.
    queue_depth: Arc<lds_obs::Gauge>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = lds_obs::global();
        PoolMetrics {
            jobs: reg.counter("pool_jobs"),
            steals: reg.counter("pool_steals"),
            parks: reg.counter("pool_parks"),
            unparks: reg.counter("pool_unparks"),
            queue_depth: reg.gauge("pool_queue_depth"),
        }
    })
}

/// A deterministic persistent `std::thread` work-stealing pool.
///
/// Construction spawns `width − 1` long-lived workers parked on a shared
/// job channel (the calling thread is always the pool's remaining lane —
/// see below); [`par_map`](ThreadPool::par_map) ships each call's work to
/// them as `'static` closures instead of spawning scoped threads per
/// call, so a schedule with many small colors pays the thread-spawn cost
/// **once per pool**, not once per color.
///
/// Within one `par_map` call the workers self-schedule by stealing the
/// next unclaimed item index from a shared atomic counter. An idle
/// worker always steals the globally next item, so load imbalance
/// between items is absorbed without any per-worker queues — and because
/// every result lands in the slot of its input index, the output order
/// is the input order no matter which worker ran which item.
///
/// **The caller is a worker too.** After enqueuing the helper jobs, the
/// calling thread runs the same steal loop on the same counter. This
/// guarantees progress even when every parked worker is busy with other
/// work (e.g. an accidentally nested `par_map` on the same pool degrades
/// to an inline scan instead of deadlocking), and it means a pool of
/// width `w` uses exactly `w` lanes: `w − 1` parked workers plus the
/// caller.
///
/// Determinism contract: `par_map(items, f)` returns exactly
/// `items.iter().map(f).collect()` provided `f` is a pure function
/// of its item (no shared mutable state). All the workspace's parallel
/// call sites derive per-task RNG streams via [`crate::StreamRng`] to
/// satisfy this — the same counter discipline at every width — which is
/// what `tests/determinism.rs` locks down.
///
/// Cloning a `ThreadPool` is cheap and **shares** the same workers (the
/// clone is another handle, not another set of threads); the engine
/// hands one pool to batch fan-out, chromatic kernels, and boosting
/// trials this way. The workers exit when the last handle drops.
///
/// # Example
///
/// ```
/// use lds_runtime::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
    /// `None` at width 1 (fully inline, no threads at all).
    inner: Option<Arc<PoolInner>>,
}

/// The shared state of a pool's worker threads.
///
/// Workers are **detached**: shutdown is signalled purely by closing the
/// job channel, never by joining. This matters because the last
/// `Arc<PoolInner>` may be dropped *by a worker itself* — a job closure
/// can own the handle transitively (e.g. a batch job capturing an
/// `Arc`-shared engine that owns the pool), and joining from inside a
/// worker would self-deadlock (`EDEADLK`). With channel-only shutdown
/// the dropping thread — caller or worker — just closes the sender;
/// every parked worker wakes with a recv error and exits on its own.
struct PoolInner {
    sender: Mutex<Option<Sender<Job>>>,
}

impl std::fmt::Debug for PoolInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolInner").finish_non_exhaustive()
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        // closing the channel wakes every parked worker with a recv
        // error (after draining any queued jobs); they exit on their own
        if let Ok(mut sender) = self.sender.lock() {
            sender.take();
        }
    }
}

/// The parked-worker loop: pull a job, run it with panics contained (a
/// panicking job must not kill the long-lived worker — the panic payload
/// travels back to the caller through the job's result channel), repeat
/// until the pool closes the channel.
fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    let metrics = pool_metrics();
    loop {
        metrics.parks.inc();
        let job = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            guard.recv()
        };
        match job {
            Ok(job) => {
                metrics.unparks.inc();
                metrics.queue_depth.add(-1);
                let _ = panic::catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // pool dropped
        }
    }
}

impl Default for ThreadPool {
    /// Same as [`ThreadPool::from_env`].
    fn default() -> Self {
        ThreadPool::from_env()
    }
}

impl ThreadPool {
    /// A pool of the given width. Width `0` clamps to `1` (a pool cannot
    /// be narrower than its own caller, who is always one of the lanes),
    /// so e.g. `LDS_THREADS=0` degrades to sequential instead of
    /// panicking or deadlocking.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return ThreadPool {
                threads,
                inner: None,
            };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..threads - 1 {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("lds-pool-{i}"))
                .spawn(move || worker_loop(rx))
                .expect("spawn pool worker");
        }
        ThreadPool {
            threads,
            inner: Some(Arc::new(PoolInner {
                sender: Mutex::new(Some(tx)),
            })),
        }
    }

    /// The single-threaded pool: every `par_map` runs inline on the
    /// caller's thread. This recovers exactly the pre-runtime sequential
    /// behavior.
    pub fn sequential() -> Self {
        ThreadPool::new(1)
    }

    /// A pool as wide as the machine (`std::thread::available_parallelism`).
    pub fn available() -> Self {
        ThreadPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Pool width from the `LDS_THREADS` environment variable, falling
    /// back to [`ThreadPool::available`] when unset or unparsable. This
    /// is the knob the CI determinism matrix turns. An explicit `0`
    /// clamps to width 1 (see [`ThreadPool::new`]).
    pub fn from_env() -> Self {
        match Self::parse_width(std::env::var("LDS_THREADS").ok().as_deref()) {
            Some(n) => ThreadPool::new(n),
            None => ThreadPool::available(),
        }
    }

    /// Parses an `LDS_THREADS`-style width: `None`/garbage means "no
    /// explicit width" (fall back to the machine), a parsed number is
    /// used as-is — `0` included, which [`ThreadPool::new`] clamps to 1.
    fn parse_width(value: Option<&str>) -> Option<usize> {
        value.and_then(|s| s.trim().parse::<usize>().ok())
    }

    /// The pool width (parked workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if `par_map` runs inline (width 1).
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, fanning the work across the pool's parked
    /// workers (plus the calling thread) and gathering the results **in
    /// input order**.
    ///
    /// With width 1 (or at most one item) this is *exactly*
    /// `items.iter().map(f).collect()` — no synchronization, no clone,
    /// byte-for-byte the pre-pool sequential behavior. At width > 1 the
    /// items are cloned once into an `Arc` so the jobs shipped to the
    /// parked workers are `'static` (no borrow from the caller's stack
    /// ever crosses a thread boundary); one `Vec` clone per call is the
    /// entire price of persistence, against a thread spawn+join per call
    /// for the scoped strategy it replaced.
    ///
    /// A panic in `f` is resumed on the caller's thread after the
    /// in-flight items drain; the workers survive it (they are
    /// long-lived).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Clone + Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        self.par_map_bounded(items, f, usize::MAX)
    }

    /// [`par_map`](ThreadPool::par_map) with the fan-out capped at
    /// `max_lanes` lanes (the caller plus at most `max_lanes − 1` parked
    /// workers). A cap of 1 runs inline.
    ///
    /// The outputs are bit-identical to `par_map` at any cap — only the
    /// number of lanes claiming items changes, never the item→slot
    /// mapping. Throughput-oriented call sites use this to avoid
    /// oversubscribing the *machine*: fanning a CPU-bound batch across
    /// more lanes than the host has cores buys no parallelism and pays
    /// real context-switch overhead per item (measured ~45% on the batch
    /// serving path at width 4 on a 1-core host), while correctness
    /// paths (chromatic kernels, boosting trials) keep the pool's full
    /// explicit width.
    pub fn par_map_bounded<T, R, F>(&self, items: &[T], f: F, max_lanes: usize) -> Vec<R>
    where
        T: Clone + Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let lanes = self.threads.min(max_lanes.max(1));
        if n <= 1 || lanes == 1 || self.inner.is_none() {
            return items.iter().map(f).collect();
        }
        let inner = self.inner.as_ref().expect("checked above");

        // Shared steal state: the items, the claim counter, and a
        // channel carrying (index, result) pairs — or the panic payload
        // of a failed item — back to the caller.
        type Outcome<R> = (usize, std::thread::Result<R>);
        let shared: Arc<Vec<T>> = Arc::new(items.to_vec());
        let next = Arc::new(AtomicUsize::new(0));
        let f = Arc::new(f);
        let (tx, rx) = channel::<Outcome<R>>();

        // the steal loop both helpers and the caller run; helper lanes
        // count their claims as steals (the caller's claims are its own
        // work, not stolen from anyone)
        let steal = {
            let shared = Arc::clone(&shared);
            let next = Arc::clone(&next);
            let f = Arc::clone(&f);
            move |tx: Sender<Outcome<R>>, helper: bool| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = shared.get(i) else { break };
                if helper {
                    pool_metrics().steals.inc();
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(item)));
                if tx.send((i, result)).is_err() {
                    break; // caller gone — stop pulling work
                }
            }
        };

        // enqueue lanes − 1 helper jobs; the caller is the final lane
        let helpers = (lanes - 1).min(n.saturating_sub(1));
        if let Ok(sender) = inner.sender.lock() {
            if let Some(sender) = sender.as_ref() {
                let metrics = pool_metrics();
                for _ in 0..helpers {
                    let steal = steal.clone();
                    let tx = tx.clone();
                    if sender.send(Box::new(move || steal(tx, true))).is_ok() {
                        metrics.jobs.inc();
                        metrics.queue_depth.add(1);
                    }
                }
            }
        }
        steal(tx, false);

        // Gather in input order. Every claimed index sends exactly one
        // outcome, so exactly `n` messages arrive — counting them (rather
        // than waiting for the channel to close) means the caller never
        // blocks on a stale helper job that is still queued behind other
        // callers' work. A panic is resumed only after all items drain,
        // like the scoped version did.
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..n {
            let (i, result) = rx.recv().expect("every claimed index reports");
            match result {
                Ok(r) => out[i] = Some(r),
                Err(payload) => {
                    panicked.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panicked {
            panic::resume_unwind(payload);
        }
        out.into_iter()
            .map(|s| s.expect("every index is claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.par_map(&items, |&x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn fan_out_is_observable() {
        // the global registry is shared across parallel tests, so only
        // monotone lower bounds on the deltas are assertable
        let reg = lds_obs::global();
        let jobs = reg.counter("pool_jobs").get();
        let unparks = reg.counter("pool_unparks").get();
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..64).collect();
        let out = pool.par_map(&items, |&x| {
            std::thread::yield_now();
            x
        });
        assert_eq!(out, items);
        // 3 helper jobs were enqueued for a width-4 fan-out
        assert!(reg.counter("pool_jobs").get() >= jobs + 3);
        // parked workers woke to take them (some may still be queued if
        // the caller drained everything, but the send itself landed)
        assert!(reg.counter("pool_unparks").get() >= unparks);
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(pool.par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // one huge item plus many tiny ones: all results still in order
        let items: Vec<u64> = (0..64).collect();
        let pool = ThreadPool::new(4);
        let out = pool.par_map(&items, |&x| {
            if x == 0 {
                (0..200_000u64).fold(0u64, |a, b| a.wrapping_add(b)) % 2 + x
            } else {
                x
            }
        });
        assert_eq!(out[0], 0);
        assert_eq!(&out[1..], &items[1..]);
    }

    #[test]
    fn workers_persist_across_calls() {
        // many consecutive calls on one pool: all correct, no respawn
        // needed for correctness (the spawn-cost win is measured in the
        // pool bench, not asserted here)
        let pool = ThreadPool::new(4);
        for round in 0..100u64 {
            let out = pool.par_map(&(0..16u64).collect::<Vec<_>>(), move |&x| x + round);
            let expect: Vec<u64> = (0..16).map(|x| x + round).collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn clones_share_workers_and_drop_cleanly() {
        let pool = ThreadPool::new(3);
        let clone = pool.clone();
        assert_eq!(clone.threads(), 3);
        let a = pool.par_map(&[1u64, 2, 3], |&x| x * 2);
        let b = clone.par_map(&[1u64, 2, 3], |&x| x * 2);
        assert_eq!(a, b);
        drop(pool);
        // surviving handle still works after the sibling drops
        let c = clone.par_map(&[5u64, 6], |&x| x + 1);
        assert_eq!(c, vec![6, 7]);
    }

    #[test]
    fn width_zero_clamps_to_one() {
        // regression: LDS_THREADS=0 must not panic or deadlock
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_sequential());
        assert_eq!(pool.par_map(&[1u64, 2, 3], |&x| x * x), vec![1, 4, 9]);
        assert_eq!(ThreadPool::parse_width(Some("0")), Some(0));
    }

    #[test]
    fn env_width_parsing() {
        assert_eq!(ThreadPool::parse_width(None), None);
        assert_eq!(ThreadPool::parse_width(Some("garbage")), None);
        assert_eq!(ThreadPool::parse_width(Some("")), None);
        assert_eq!(ThreadPool::parse_width(Some("4")), Some(4));
        assert_eq!(ThreadPool::parse_width(Some(" 2 ")), Some(2));
        assert!(ThreadPool::available().threads() >= 1);
        assert!(ThreadPool::sequential().is_sequential());
        assert_eq!(ThreadPool::new(5).threads(), 5);
    }

    #[test]
    fn bounded_fan_out_matches_unbounded_bitwise() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7 + 3).collect();
        let pool = ThreadPool::new(8);
        for cap in [1usize, 2, 4, 8, usize::MAX] {
            assert_eq!(
                pool.par_map_bounded(&items, |&x| x * 7 + 3, cap),
                expect,
                "cap {cap}"
            );
        }
    }

    #[test]
    fn bounded_to_one_lane_runs_inline() {
        // cap 1 must be the zero-synchronization inline path even on a
        // wide pool: thread-local state set by the closure proves every
        // item ran on the calling thread
        thread_local! {
            static HITS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
        }
        HITS.with(|h| h.set(0));
        let pool = ThreadPool::new(4);
        let out = pool.par_map_bounded(
            &(0..32u64).collect::<Vec<_>>(),
            |&x| {
                HITS.with(|h| h.set(h.get() + 1));
                x
            },
            1,
        );
        assert_eq!(out.len(), 32);
        assert_eq!(HITS.with(|h| h.get()), 32, "an item ran off-thread");
        // cap 0 clamps to 1 (a fan-out cannot exclude its own caller)
        assert_eq!(pool.par_map_bounded(&[1u64, 2], |&x| x, 0), vec![1, 2]);
    }

    #[test]
    fn nested_par_map_degrades_instead_of_deadlocking() {
        // every worker lane busy with the outer call; inner calls run on
        // their calling lane via caller participation
        let pool = ThreadPool::new(2);
        let inner = pool.clone();
        let items: Vec<u64> = (0..8).collect();
        let out = pool.par_map(&items, move |&x| {
            inner.par_map(&[x, x + 1], |&y| y * 10).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8).map(|x| 10 * x + 10 * (x + 1)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(2);
        let _ = pool.par_map(&[1u64, 2, 3, 4], |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn pool_survives_a_panicking_call() {
        let pool = ThreadPool::new(3);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(&[1u64, 2, 3, 4, 5, 6], |&x| {
                if x == 2 {
                    panic!("transient");
                }
                x
            })
        }));
        assert!(result.is_err());
        // the same workers serve the next call
        assert_eq!(pool.par_map(&[1u64, 2, 3], |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn last_handle_dropped_by_worker_is_safe() {
        // a job closure may transitively own a handle to its own pool
        // (e.g. a batch job capturing an Arc-shared engine); the worker
        // that drops the last Arc<F> then drops that handle. Shutdown is
        // channel-only, so this must neither deadlock nor panic — the
        // old join-on-drop strategy hit EDEADLK here.
        for _ in 0..50 {
            let pool = ThreadPool::new(2);
            let held = pool.clone();
            let items: Vec<u64> = (0..4).collect();
            let out = pool.par_map(&items, move |&x| {
                let _own_pool = &held;
                x
            });
            assert_eq!(out, items);
            drop(pool); // the worker may now hold the last handle
        }
    }

    #[test]
    fn captured_state_is_shared_not_borrowed() {
        // jobs are 'static: captured context travels by Arc, not borrow
        let base = Arc::new(vec![10u64, 20, 30]);
        let pool = ThreadPool::new(2);
        let captured = Arc::clone(&base);
        let out = pool.par_map(&[0usize, 1, 2], move |&i| captured[i]);
        assert_eq!(out, *base);
    }
}
