//! Per-phase execution accounting.

use std::time::Duration;

/// One timed phase of a task execution: a name, its wall-clock time, and
/// the simulated LOCAL rounds charged to it.
///
/// The engine attaches a `Vec<Phase>` to every `RunReport` so callers
/// can see where time went (schedule construction vs. the algorithm's
/// passes) without re-instrumenting the internals. Round accounting is
/// an invariant: the phase rounds of a report sum to its total `rounds`.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Phase name (`"schedule"`, `"ground"`, `"sample"`, `"reject"`,
    /// `"scan"`, `"oracle"`, ...).
    pub name: &'static str,
    /// Wall-clock time spent in this phase.
    pub wall_time: Duration,
    /// Simulated LOCAL rounds charged to this phase.
    pub rounds: usize,
}

impl Phase {
    /// Creates a phase record.
    pub fn new(name: &'static str, wall_time: Duration, rounds: usize) -> Self {
        Phase {
            name,
            wall_time,
            rounds,
        }
    }
}
