//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] is checked *between* units of work (color rounds,
//! Glauber sweeps, sequential scan steps) — never inside one — so a
//! cancelled computation stops at a clean boundary and returns a typed
//! [`Cancelled`] instead of a partial result. Crucially for this
//! workspace, a cancellation check consumes **no randomness**: a run
//! that completes under a deadline is bit-identical to the same run
//! without one.
//!
//! The token is deliberately cheap when absent: [`CancelToken::never`]
//! carries no allocation, and its [`check`](CancelToken::check) is a
//! single `Option` branch, so every pre-existing call path threads a
//! token at no measurable cost.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The unit error of a cancelled computation. Callers map it into their
/// own typed error (`EngineError::DeadlineExceeded` at the engine
/// boundary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    /// Absolute wall-clock deadline, if this token carries one.
    deadline: Option<Instant>,
    /// Set by [`CancelToken::cancel`]; checked alongside the deadline.
    flag: AtomicBool,
}

/// A cloneable cancellation handle threaded through kernel runners.
///
/// Three constructors cover the use sites:
///
/// * [`CancelToken::never`] — the default for every legacy entry point;
///   checks are a branch on `None` and always pass.
/// * [`CancelToken::with_deadline`] — cancelled once `Instant::now()`
///   passes the deadline (how serve enforces per-request budgets).
/// * [`CancelToken::manual`] — cancelled explicitly via
///   [`CancelToken::cancel`] (tests, administrative aborts).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels. Free to clone and check.
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token that cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                deadline: Some(deadline),
                flag: AtomicBool::new(false),
            })),
        }
    }

    /// [`CancelToken::with_deadline`] when a deadline is present,
    /// [`CancelToken::never`] otherwise — the shape serve's optional
    /// per-request budget produces.
    pub fn with_deadline_opt(deadline: Option<Instant>) -> CancelToken {
        match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        }
    }

    /// A token cancelled only by an explicit [`CancelToken::cancel`].
    pub fn manual() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                deadline: None,
                flag: AtomicBool::new(false),
            })),
        }
    }

    /// Cancels the token (and every clone of it). No-op on a
    /// [`CancelToken::never`] token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// The deadline this token enforces, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// `true` once the token is cancelled (flag set or deadline
    /// passed).
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The cooperative checkpoint: `Err(Cancelled)` once cancelled.
    /// Consumes no randomness and takes no locks, so sprinkling it
    /// between rounds preserves bit-identical determinism.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_always_passes() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(t.check().is_ok());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn manual_cancel_reaches_every_clone() {
        let t = CancelToken::manual();
        let clone = t.clone();
        assert!(clone.check().is_ok());
        t.cancel();
        assert_eq!(clone.check(), Err(Cancelled));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_cancels_immediately() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_in_the_future_passes_until_it_arrives() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(t.check().is_ok());
        // explicit cancel still wins over a future deadline
        t.cancel();
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn with_deadline_opt_none_is_never() {
        let t = CancelToken::with_deadline_opt(None);
        assert!(t.inner.is_none());
        assert!(t.check().is_ok());
    }
}
