//! Counter-based RNG stream derivation.
//!
//! The LOCAL model gives every node "an arbitrarily long private random
//! bit string" (paper, Section 2), and the Lemma 3.1 transformation
//! requires the decomposition's randomness to be **independent of the
//! algorithm's randomness** (Proposition 4.3). Both requirements are
//! met by deriving, rather than sharing, RNG state: a [`StreamRng`] is a
//! key built by mixing a master seed with a path of labels
//! (`domain`, `stream`, `node id`, ...) through SplitMix64, and two
//! distinct paths yield uncorrelated generators. Derivation is pure —
//! no mutable RNG state ever crosses a task boundary — so parallel
//! tasks consume exactly the bits they would consume sequentially.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer (Steele–Lea–Flood): a bijective 64-bit mixer
/// whose increments decorrelate consecutive keys. This is the single
/// mixing primitive of the workspace's seeding scheme — node seeds in
/// `lds-localnet` and every [`StreamRng`] derivation go through it.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reserved top-level domain labels, one per independent randomness
/// consumer. Deriving with distinct domains is what keeps decomposition
/// randomness independent of algorithm randomness (Proposition 4.3)
/// under one master seed.
pub mod streams {
    /// Network-decomposition randomness (the chromatic scheduler).
    pub const DECOMPOSITION: u64 = 0xdec0;
    /// Per-node private randomness of LOCAL nodes.
    pub const NODE: u64 = 0x0de5;
    /// Instance/workload generation (random graphs in benches, tests).
    pub const WORKLOAD: u64 = 0x3019;
    /// Fault-injection schedules (the `lds-chaos` fail-point registry).
    /// A distinct domain so armed chaos plans can never perturb the
    /// randomness any algorithm consumes.
    pub const CHAOS: u64 = 0xc4a0;
}

/// A derivation key for an independent RNG stream.
///
/// Keys form a tree: [`StreamRng::root`] makes the root from a master
/// seed, [`StreamRng::substream`] descends one labeled edge, and
/// [`StreamRng::rng`] instantiates the generator at the current path.
/// The same `(seed, labels...)` path always yields the same generator;
/// sibling paths are uncorrelated.
///
/// # Example
///
/// ```
/// use lds_runtime::{streams, StreamRng};
///
/// let a = StreamRng::derive(42, streams::DECOMPOSITION);
/// let b = StreamRng::derive(42, streams::NODE);
/// assert_ne!(a.state(), b.state());
/// assert_eq!(a.state(), StreamRng::derive(42, streams::DECOMPOSITION).state());
/// let _rng = a.substream(3).rng();
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamRng {
    key: u64,
}

impl StreamRng {
    /// The root key of a master seed.
    pub fn root(seed: u64) -> Self {
        StreamRng {
            key: splitmix64(seed ^ 0x1d5_0c0d_e5ee_d000),
        }
    }

    /// Shorthand for `root(seed).substream(label)` — the common
    /// "seed + domain" derivation.
    pub fn derive(seed: u64, label: u64) -> Self {
        StreamRng::root(seed).substream(label)
    }

    /// Descends one labeled edge: a counter-based mix of the current key
    /// with `label`. Distinct labels give uncorrelated child keys.
    pub fn substream(self, label: u64) -> Self {
        StreamRng {
            key: splitmix64(self.key ^ label.wrapping_mul(0x2545_f491_4f6c_dd1d)),
        }
    }

    /// The derived 64-bit key (usable as a seed for any generator).
    pub fn state(self) -> u64 {
        self.key
    }

    /// Instantiates the stream's generator.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn paths_are_deterministic_and_distinct() {
        let a = StreamRng::root(7).substream(1).substream(2);
        let b = StreamRng::root(7).substream(1).substream(2);
        assert_eq!(a, b);
        assert_ne!(a, StreamRng::root(7).substream(2).substream(1));
        assert_ne!(a, StreamRng::root(8).substream(1).substream(2));
    }

    #[test]
    fn domains_separate() {
        let d = StreamRng::derive(123, streams::DECOMPOSITION);
        let n = StreamRng::derive(123, streams::NODE);
        assert_ne!(d.state(), n.state());
    }

    #[test]
    fn streams_look_independent() {
        // crude correlation check: bits of sibling streams disagree
        // about half the time
        let mut agree = 0u32;
        for label in 0..64u64 {
            let x = StreamRng::derive(9, label).rng().gen::<u64>();
            let y = StreamRng::derive(9, label + 1).rng().gen::<u64>();
            agree += (x ^ y).count_zeros();
        }
        let frac = agree as f64 / (64.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.05, "agreement {frac}");
    }
}
