//! A blocking bounded MPMC channel.
//!
//! `std::sync::mpsc` gives us the unbounded single-consumer channel the
//! [`crate::ThreadPool`] parks its workers on, but a serving front-end
//! needs the opposite shape: a **bounded** queue that multiple producers
//! (client sessions) push into and multiple consumers (worker sessions)
//! drain, where a full queue is an *admission-control signal* rather
//! than an allocation. This module is that primitive: a
//! `Mutex<VecDeque>` + two condvars, nothing clever — the queue is a
//! backpressure valve, not a hot loop.
//!
//! Semantics:
//!
//! * [`Sender::try_send`] never blocks: a full queue returns
//!   [`TrySendError::Full`] with the item handed back, which is what a
//!   server turns into an `Overloaded` rejection.
//! * [`Sender::send`] blocks until space frees up (or every receiver is
//!   gone).
//! * [`Receiver::recv`] blocks until an item arrives (or every sender is
//!   gone **and** the queue has drained — queued items are never lost to
//!   a disconnect).
//! * [`Receiver::recv_timeout`] is `recv` with a deadline; it is what
//!   lets a coalescing worker wait a bounded window for more compatible
//!   requests before dispatching a batch.
//! * Both ends are [`Clone`]; the channel disconnects when either side's
//!   count reaches zero.
//!
//! The channel also tracks a high-watermark of observed queue depth
//! ([`Sender::peak_depth`]) so a server can report how close to
//! overload it has run.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Creates a bounded blocking MPMC channel with room for `capacity`
/// queued items. A capacity of `0` is clamped to `1` (a rendezvous
/// channel would make `try_send` always fail, which turns admission
/// control into a total outage).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            peak: 0,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    peak: usize,
}

/// The producing half of a [`bounded`] channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a [`bounded`] channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error of [`Sender::try_send`], returning the unsent item.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at its limit; the caller should shed load. Carries
    /// the unsent item and the queue depth observed **under the
    /// rejection lock** (re-reading [`Sender::len`] afterwards could
    /// see a drained queue and misreport why admission failed).
    Full(T, usize),
    /// Every receiver is gone; nothing will ever drain the queue.
    Disconnected(T),
}

/// Error of [`Sender::send`]: every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error of [`Receiver::recv`]: every sender is gone and the queue has
/// drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error of [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// Every sender is gone and the queue has drained.
    Disconnected,
}

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the queue still empty.
    Timeout,
    /// Every sender is gone and the queue has drained.
    Disconnected,
}

impl<T> Sender<T> {
    /// Enqueues without blocking. A full queue hands the item back as
    /// [`TrySendError::Full`] — the admission-control path.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        self.try_send_below(item, self.shared.capacity)
    }

    /// Enqueues without blocking, but only while the queue depth is
    /// below `limit` (clamped to the capacity) — the **atomic**
    /// check-and-enqueue a soft admission watermark needs. Reading
    /// [`Sender::len`] first and then calling [`Sender::try_send`]
    /// would let concurrent producers all observe a below-watermark
    /// depth and overshoot it together; here the depth check and the
    /// push happen under one lock, so the queue never exceeds `limit`
    /// through this call.
    pub fn try_send_below(&self, item: T, limit: usize) -> Result<(), TrySendError<T>> {
        let limit = limit.min(self.shared.capacity);
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(item));
        }
        if inner.queue.len() >= limit {
            let depth = inner.queue.len();
            return Err(TrySendError::Full(item, depth));
        }
        inner.queue.push_back(item);
        inner.peak = inner.peak.max(inner.queue.len());
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is at capacity.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(item));
            }
            if inner.queue.len() < self.shared.capacity {
                inner.queue.push_back(item);
                inner.peak = inner.peak.max(inner.queue.len());
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel poisoned");
        }
    }

    /// Current queue depth (racy by nature; a watermark check, not a
    /// synchronization primitive).
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// `true` if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// High-watermark of queue depth observed since creation.
    pub fn peak_depth(&self) -> usize {
        self.shared.inner.lock().expect("channel poisoned").peak
    }
}

impl<T> Receiver<T> {
    /// Dequeues, blocking while the queue is empty. Returns
    /// [`RecvError`] only once every sender is gone **and** the queue
    /// has drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if let Some(item) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(item);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeues, blocking at most `timeout`. This is the coalescing
    /// window primitive: a worker that already holds one request waits
    /// here for more compatible ones before dispatching the batch.
    ///
    /// The deadline is computed **once** and every re-wait after a
    /// wakeup (spurious or racing — another receiver may have taken the
    /// item that woke us) uses the *remaining* time, so repeated
    /// wakeups can never stretch the total wait beyond `timeout`. A
    /// `timeout` too large to represent as an absolute `Instant`
    /// (e.g. `Duration::MAX`) degrades to waiting without a deadline
    /// instead of panicking on `Instant` overflow.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(deadline) = deadline else {
                // unrepresentable deadline: effectively recv()
                inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
                continue;
            };
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, result) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .expect("channel poisoned");
            inner = guard;
            if result.timed_out() && inner.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Current queue depth (racy; see [`Sender::len`]).
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// `true` if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-watermark of queue depth observed since creation.
    pub fn peak_depth(&self) -> usize {
        self.shared.inner.lock().expect("channel poisoned").peak
    }

    /// The queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // wake every parked receiver so it can observe the drain
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.receivers -= 1;
        let disconnected = inner.receivers == 0;
        drop(inner);
        if disconnected {
            // wake every parked sender so it can fail fast
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_within_one_producer() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_reports_full_and_hands_the_item_back() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3, 2)));
        assert_eq!(tx.len(), 2);
        assert_eq!(tx.peak_depth(), 2);
        // draining one slot readmits
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_send_below_enforces_the_limit_atomically() {
        let (tx, rx) = bounded(8);
        tx.try_send_below(1, 2).unwrap();
        tx.try_send_below(2, 2).unwrap();
        // the soft limit governs even though the queue has room
        assert_eq!(tx.try_send_below(3, 2), Err(TrySendError::Full(3, 2)));
        assert_eq!(tx.len(), 2);
        // plain try_send still admits up to the hard capacity
        tx.try_send(3).unwrap();
        // a limit above capacity clamps to capacity
        for i in 4..=8 {
            tx.try_send_below(i, 100).unwrap();
        }
        assert_eq!(tx.try_send_below(9, 100), Err(TrySendError::Full(9, 8)));
        assert_eq!(rx.recv(), Ok(1));
        // draining readmits under the soft limit only below it
        assert_eq!(tx.try_send_below(9, 2), Err(TrySendError::Full(9, 7)));
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let (tx, _rx) = bounded(0);
        assert_eq!(tx.capacity(), 1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2, 1)));
    }

    #[test]
    fn queued_items_survive_sender_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        tx.try_send(7).unwrap();
        tx.try_send(8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_when_receivers_are_gone() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = bounded(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.try_send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(42));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_does_not_drift_under_repeated_wakeups() {
        // Regression shape for the classic condvar bug where each
        // wakeup restarts the *full* timeout. A receiver waits 60 ms on
        // a channel that a producer notifies every 5 ms for ~500 ms
        // while a stealing consumer keeps the queue empty: if re-waits
        // used the full timeout, the wait would be pushed out to the
        // end of the notification storm (~560 ms). With remaining-time
        // re-waits it ends within the timeout (or earlier, if this
        // receiver happens to win an item race — equally fine).
        let (tx, rx) = bounded::<u64>(64);
        let thief = rx.clone();
        let stealer = thread::spawn(move || while thief.recv().is_ok() {});
        let producer = {
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..100u64 {
                    if tx.send(i).is_err() {
                        break;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let start = Instant::now();
        let _ = rx.recv_timeout(Duration::from_millis(60));
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(250),
            "recv_timeout(60ms) took {elapsed:?} under notification storm — timeout drift"
        );
        producer.join().unwrap();
        drop(tx);
        drop(rx);
        stealer.join().unwrap();
    }

    #[test]
    fn recv_timeout_with_unrepresentable_deadline_does_not_panic() {
        // Duration::MAX overflows `Instant + Duration`; the wait must
        // degrade to "no deadline", not panic.
        let (tx, rx) = bounded::<u32>(4);
        tx.try_send(11).unwrap();
        assert_eq!(rx.recv_timeout(Duration::MAX), Ok(11));
        // empty queue + disconnected sender exercises the wait path
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::MAX),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocking_send_unblocks_when_a_slot_frees() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        let producer = thread::spawn(move || tx.send(2));
        // the producer is parked on a full queue until this recv
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        producer.join().unwrap().unwrap();
    }

    #[test]
    fn mpmc_every_item_arrives_exactly_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..50u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(x) = rx.recv() {
                        got.push(x);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..3u64)
            .flat_map(|p| (0..50u64).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
