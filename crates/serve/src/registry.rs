//! Multi-tenant engine registry: many models behind one process.
//!
//! A serving process with one `ModelSpec` per process does not scale to
//! many models — the ROADMAP's "millions of users" are not all sampling
//! the same hardcore cycle. The registry turns the serving layer
//! multi-tenant: a map from [`Engine::fingerprint`] to a **live
//! tenant** — the engine wrapped in its own [`Server`] (own bounded
//! queue, own coalescing sessions, own idempotency cache, own
//! [`ServerStats`]) — with LRU eviction of cold tenants at a capacity
//! cap.
//!
//! The fingerprint is the routing key *and* the identity contract:
//! because it pins everything that determines task outputs (spec bits,
//! topology, pinning, error targets), two processes that register the
//! same model derive the same key, and a `(fingerprint, task, seed)`
//! request is idempotent **across processes** — the property `lds-net`
//! relies on to serve over the wire.
//!
//! Eviction is graceful by construction: removing a tenant from the map
//! drops the registry's handle, but sessions still holding the
//! `Arc<Server>` keep being served; the server drains its accepted
//! queue when the last handle drops. A fingerprint that was evicted
//! simply re-registers on next use.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use lds_engine::Engine;

use crate::server::{Server, ServerConfig};
use crate::stats::ServerStats;

/// Tuning knobs of an [`EngineRegistry`].
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Most tenants kept live at once (default 8, clamped to ≥ 1).
    /// Registering beyond it evicts the least-recently-used tenant.
    pub capacity: usize,
    /// Per-tenant [`Server`] configuration (every registered engine
    /// gets its own queue/workers/cache built from this template).
    pub server: ServerConfig,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            capacity: 8,
            server: ServerConfig::default(),
        }
    }
}

/// One live tenant: the engine's server plus registry bookkeeping.
struct Tenant {
    server: Arc<Server>,
    /// Logical clock value of the last lookup/registration — the LRU
    /// ordering key (a counter, not wall clock: cheap and total).
    last_used: u64,
    /// Baseline snapshot for [`EngineRegistry::interval_stats_of`]
    /// (`snapshot_and_reset` semantics: each interval query differences
    /// against this and replaces it).
    interval_base: ServerStats,
}

struct Inner {
    tenants: HashMap<u64, Tenant>,
    clock: u64,
    registrations: u64,
    evictions: u64,
    hits: u64,
    misses: u64,
}

/// Registry-level counters (tenant churn and routing outcomes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    /// Tenants currently live.
    pub live: usize,
    /// Successful registrations (first-time and idempotent re-registers).
    pub registrations: u64,
    /// Tenants evicted by the LRU capacity cap.
    pub evictions: u64,
    /// Lookups that found a live tenant.
    pub hits: u64,
    /// Lookups for an unknown (never registered or evicted) fingerprint.
    pub misses: u64,
}

/// A map from [`Engine::fingerprint`] to live, serving engines.
///
/// ```
/// use std::sync::Arc;
/// use lds_engine::{Engine, ModelSpec, Task};
/// use lds_graph::generators;
/// use lds_serve::{EngineRegistry, RegistryConfig};
///
/// let registry = EngineRegistry::new(RegistryConfig::default());
/// let engine = Engine::builder()
///     .model(ModelSpec::Hardcore { lambda: 1.0 })
///     .graph(generators::cycle(8))
///     .build()
///     .unwrap();
/// let fp = registry.register(engine);
/// let tenant = registry.get(fp).expect("just registered");
/// let report = tenant.run(Task::SampleExact, 7).unwrap();
/// assert_eq!(report.config().unwrap().len(), 8);
/// ```
pub struct EngineRegistry {
    inner: Mutex<Inner>,
    config: RegistryConfig,
}

impl EngineRegistry {
    /// An empty registry with the given configuration.
    pub fn new(config: RegistryConfig) -> Self {
        EngineRegistry {
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                clock: 0,
                registrations: 0,
                evictions: 0,
                hits: 0,
                misses: 0,
            }),
            config: RegistryConfig {
                capacity: config.capacity.max(1),
                ..config
            },
        }
    }

    /// An empty registry with [`RegistryConfig::default`].
    pub fn with_defaults() -> Self {
        EngineRegistry::new(RegistryConfig::default())
    }

    /// The registry configuration (capacity already clamped).
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Registers an engine under its own fingerprint and returns that
    /// fingerprint. Idempotent: re-registering an already-live
    /// fingerprint keeps the existing tenant (its cache and stats
    /// survive) and merely refreshes its LRU position. Registering past
    /// the capacity cap evicts the least-recently-used *other* tenant.
    pub fn register(&self, engine: Engine) -> u64 {
        let fingerprint = engine.fingerprint();
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.clock += 1;
        inner.registrations += 1;
        let now = inner.clock;
        if let Some(tenant) = inner.tenants.get_mut(&fingerprint) {
            tenant.last_used = now;
            return fingerprint;
        }
        let server = Arc::new(Server::new(Arc::new(engine), self.config.server.clone()));
        let interval_base = server.stats();
        inner.tenants.insert(
            fingerprint,
            Tenant {
                server,
                last_used: now,
                interval_base,
            },
        );
        while inner.tenants.len() > self.config.capacity {
            // evict the coldest tenant that is not the one just added
            let coldest = inner
                .tenants
                .iter()
                .filter(|(fp, _)| **fp != fingerprint)
                .min_by_key(|(_, t)| t.last_used)
                .map(|(fp, _)| *fp);
            match coldest {
                Some(fp) => {
                    inner.tenants.remove(&fp);
                    inner.evictions += 1;
                }
                None => break, // capacity 1 and only the new tenant left
            }
        }
        fingerprint
    }

    /// Looks up a live tenant, refreshing its LRU position. `None` for
    /// fingerprints never registered or already evicted — the caller
    /// turns this into a typed "unknown fingerprint" error, never a
    /// panic.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<Server>> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.clock += 1;
        let now = inner.clock;
        match inner.tenants.get_mut(&fingerprint) {
            Some(tenant) => {
                tenant.last_used = now;
                let server = Arc::clone(&tenant.server);
                inner.hits += 1;
                Some(server)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether a fingerprint is currently live (no LRU refresh).
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.inner
            .lock()
            .expect("registry poisoned")
            .tenants
            .contains_key(&fingerprint)
    }

    /// Number of live tenants.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").tenants.len()
    }

    /// `true` if no tenant is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live fingerprints, hottest (most recently used) first.
    pub fn fingerprints(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut fps: Vec<(u64, u64)> = inner
            .tenants
            .iter()
            .map(|(fp, t)| (t.last_used, *fp))
            .collect();
        fps.sort_unstable_by_key(|&(used, _)| std::cmp::Reverse(used));
        fps.into_iter().map(|(_, fp)| fp).collect()
    }

    /// Process-lifetime [`ServerStats`] of one tenant (no LRU refresh —
    /// scraping stats must not keep a cold tenant warm).
    pub fn stats_of(&self, fingerprint: u64) -> Option<ServerStats> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.tenants.get(&fingerprint).map(|t| t.server.stats())
    }

    /// The tenant's **interval** stats: everything since the previous
    /// `interval_stats_of` call (or registration), via
    /// [`ServerStats::since`], and resets the interval baseline — the
    /// `snapshot_and_reset` pattern. Two monitoring consumers should
    /// not share one registry interval; scrape [`stats_of`] and
    /// difference externally instead.
    ///
    /// [`stats_of`]: EngineRegistry::stats_of
    pub fn interval_stats_of(&self, fingerprint: u64) -> Option<ServerStats> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let tenant = inner.tenants.get_mut(&fingerprint)?;
        let now = tenant.server.stats();
        let delta = now.since(&tenant.interval_base);
        tenant.interval_base = now;
        Some(delta)
    }

    /// Registry-level counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry poisoned");
        RegistryStats {
            live: inner.tenants.len(),
            registrations: inner.registrations,
            evictions: inner.evictions,
            hits: inner.hits,
            misses: inner.misses,
        }
    }

    /// Evicts one tenant by hand; returns whether it was live. Sessions
    /// still holding its `Arc<Server>` finish normally — the server
    /// drains when the last handle drops.
    pub fn evict(&self, fingerprint: u64) -> bool {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let evicted = inner.tenants.remove(&fingerprint).is_some();
        if evicted {
            inner.evictions += 1;
        }
        evicted
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry poisoned");
        f.debug_struct("EngineRegistry")
            .field("live", &inner.tenants.len())
            .field("capacity", &self.config.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_engine::{ModelSpec, Task};
    use lds_graph::generators;

    fn engine(n: usize) -> Engine {
        Engine::builder()
            .model(ModelSpec::Hardcore { lambda: 1.0 })
            .graph(generators::cycle(n))
            .epsilon(0.01)
            .threads(1)
            .build()
            .expect("in regime")
    }

    #[test]
    fn register_routes_and_is_idempotent() {
        let registry = EngineRegistry::with_defaults();
        let fp = registry.register(engine(8));
        assert_eq!(registry.register(engine(8)), fp, "same spec, same key");
        assert_eq!(registry.len(), 1, "idempotent registration");
        let tenant = registry.get(fp).unwrap();
        let direct = engine(8).run_with_seed(Task::SampleExact, 3).unwrap();
        let served = tenant.run(Task::SampleExact, 3).unwrap();
        assert_eq!(
            served.config().unwrap().values(),
            direct.config().unwrap().values()
        );
        assert!(registry.get(fp ^ 1).is_none(), "unknown key routes nowhere");
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.registrations, 2);
    }

    #[test]
    fn lru_eviction_at_capacity_and_reregistration() {
        let registry = EngineRegistry::new(RegistryConfig {
            capacity: 2,
            ..RegistryConfig::default()
        });
        let fp_a = registry.register(engine(6));
        let fp_b = registry.register(engine(8));
        // touch A so B is the LRU tenant
        registry.get(fp_a).unwrap();
        let fp_c = registry.register(engine(10));
        assert!(registry.contains(fp_a), "recently used survives");
        assert!(!registry.contains(fp_b), "LRU tenant evicted");
        assert!(registry.contains(fp_c));
        assert_eq!(registry.stats().evictions, 1);
        // the evicted fingerprint re-registers cleanly
        assert_eq!(registry.register(engine(8)), fp_b);
        assert!(registry.contains(fp_b));
        assert!(!registry.contains(fp_a), "A became LRU and made room");
        assert_eq!(registry.fingerprints(), vec![fp_b, fp_c]);
    }

    #[test]
    fn eviction_with_inflight_handle_still_serves() {
        let registry = EngineRegistry::new(RegistryConfig {
            capacity: 1,
            ..RegistryConfig::default()
        });
        let fp_a = registry.register(engine(6));
        let held = registry.get(fp_a).unwrap();
        let _fp_b = registry.register(engine(8)); // evicts A from the map
        assert!(!registry.contains(fp_a));
        // the held handle keeps serving; the server drains when dropped
        assert!(held.run(Task::SampleExact, 1).is_ok());
    }

    #[test]
    fn interval_stats_reset_between_queries() {
        let registry = EngineRegistry::with_defaults();
        let fp = registry.register(engine(8));
        let tenant = registry.get(fp).unwrap();
        tenant.run(Task::SampleExact, 1).unwrap();
        tenant.run(Task::SampleExact, 2).unwrap();
        let first = registry.interval_stats_of(fp).unwrap();
        assert_eq!(first.completed, 2);
        // nothing happened since: the next interval is empty, while the
        // lifetime aggregate still carries both completions
        let second = registry.interval_stats_of(fp).unwrap();
        assert_eq!(second.completed, 0);
        assert_eq!(registry.stats_of(fp).unwrap().completed, 2);
        // and a cache hit in the next interval shows up as exactly one
        tenant.run(Task::SampleExact, 1).unwrap();
        let third = registry.interval_stats_of(fp).unwrap();
        assert_eq!(third.completed, 1);
        assert_eq!(third.cache_hits, 1);
        assert_eq!(third.engine_executions, 0);
    }
}
