//! `lds-serve`: a concurrent serving front-end for the lds engine.
//!
//! The source paper's reductions make every task kind — exact and
//! approximate sampling, inference, counting — a *local* computation
//! whose randomness derives from a per-request seed, and the congested-
//! clique line of follow-up work reframes the same reductions as
//! throughput problems. This crate is that reframing in systems form:
//! it turns the `lds-engine` library into a **service** that absorbs
//! concurrent request streams from many clients and serves them off one
//! shared engine, exploiting the structure the paper guarantees:
//!
//! * Requests are **embarrassingly parallel across seeds** — so the
//!   server *coalesces* compatible requests that arrive within a short
//!   window into one [`lds_engine::Engine::run_batch`] call, paying one
//!   dispatch overhead per group instead of per request
//!   ([`ServerConfig::coalesce_window`]).
//! * Outputs are a **pure function of `(engine, task, seed)`** — so
//!   repeated requests are *idempotent* by construction, and the server
//!   answers them from an LRU [cache](ServerStats::cache_hits) keyed by
//!   [`IdempotencyKey`] (engine fingerprint, task, seed), while
//!   identical requests in flight dedup to a single execution.
//! * Load has to stop somewhere — the request queue is **bounded**
//!   ([`lds_runtime::channel::bounded`]), and [`Server::try_submit`]
//!   sheds excess with [`SubmitError::Overloaded`] at a configurable
//!   watermark instead of letting latency grow without limit.
//!
//! Everything is dependency-free `std`: worker sessions are plain
//! threads, the queue is a condvar channel, and the engine's persistent
//! `ThreadPool` (shared by all workers) does the heavy lifting.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use lds_engine::{Engine, ModelSpec, Task};
//! use lds_graph::generators;
//! use lds_serve::{Server, ServerConfig};
//!
//! let engine = Arc::new(
//!     Engine::builder()
//!         .model(ModelSpec::Hardcore { lambda: 1.0 })
//!         .graph(generators::cycle(8))
//!         .build()
//!         .unwrap(),
//! );
//! let server = Server::new(engine, ServerConfig::default());
//!
//! // concurrent clients submit (task, seed) requests …
//! let t1 = server.try_submit(Task::SampleExact, 7).unwrap();
//! let t2 = server.try_submit(Task::SampleExact, 7).unwrap(); // duplicate
//! let a = t1.wait().unwrap();
//! let b = t2.wait().unwrap();
//! // … duplicates are answered identically from ONE execution
//! assert_eq!(a.config().unwrap().values(), b.config().unwrap().values());
//! assert_eq!(server.stats().engine_executions, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod coalesce;
mod registry;
mod server;
mod stats;

pub use cache::{IdempotencyKey, LruCache};
pub use registry::{EngineRegistry, RegistryConfig, RegistryStats};
pub use server::{ServeError, Server, ServerConfig, SubmitError, Ticket};
pub use stats::ServerStats;
