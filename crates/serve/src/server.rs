//! The serving front-end: bounded admission, worker sessions, coalesced
//! dispatch, idempotent completion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use lds_engine::{Engine, EngineError, RunReport, Task};
use lds_obs::trace::{self, TraceEvent};
use lds_obs::Histogram;
use lds_runtime::channel::{self, RecvTimeoutError, TryRecvError, TrySendError};

use crate::cache::{IdempotencyKey, LruCache};
use crate::coalesce::coalesce;
use crate::stats::{latency_percentiles, Counters, ServerStats};

/// Serving observability handles against the process metrics registry,
/// resolved once. These aggregate across every [`Server`] in the
/// process (the scrape/`Op::Metrics` view); the per-server numbers
/// behind [`Server::stats`] live on each server's own state.
struct ServeMetrics {
    /// Process-wide request latency histogram
    /// (`serve_request_latency_ns`) — same recordings as each server's
    /// private histogram.
    latency: Arc<Histogram>,
    submitted: Arc<lds_obs::Counter>,
    rejected: Arc<lds_obs::Counter>,
    cache_hits: Arc<lds_obs::Counter>,
    cache_misses: Arc<lds_obs::Counter>,
    batches: Arc<lds_obs::Counter>,
    batched_requests: Arc<lds_obs::Counter>,
    /// Queue depth observed at the most recent enqueue/dequeue.
    queue_depth: Arc<lds_obs::Gauge>,
    /// The admission watermark in force at the most recent submit.
    watermark: Arc<lds_obs::Gauge>,
    /// Requests answered [`ServeError::Expired`] (or shed at admission
    /// with [`SubmitError::Expired`]) because their deadline passed.
    deadline_misses: Arc<lds_obs::Counter>,
    /// Worker sessions respawned by the supervisor after a panic.
    worker_restarts: Arc<lds_obs::Counter>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: std::sync::OnceLock<ServeMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = lds_obs::global();
        ServeMetrics {
            latency: reg.histogram("serve_request_latency_ns"),
            submitted: reg.counter("serve_submitted"),
            rejected: reg.counter("serve_rejected"),
            cache_hits: reg.counter("serve_cache_hits"),
            cache_misses: reg.counter("serve_cache_misses"),
            batches: reg.counter("serve_batches"),
            batched_requests: reg.counter("serve_batched_requests"),
            queue_depth: reg.gauge("serve_queue_depth"),
            watermark: reg.gauge("serve_admission_watermark"),
            deadline_misses: reg.counter("serve_deadline_misses"),
            worker_restarts: reg.counter("serve_worker_restarts"),
        }
    })
}

/// Tuning knobs of a [`Server`]. Start from `ServerConfig::default()`
/// and override fields; every knob has a safe clamp.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bounded request-queue capacity — the hard admission limit
    /// (default 256, clamped to ≥ 1). A full queue makes
    /// [`Server::try_submit`] return [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Soft admission watermark: [`Server::try_submit`] rejects once
    /// the queue depth reaches this, even below capacity (clamped to
    /// `1..=queue_capacity` — `Some(0)` would otherwise reject every
    /// submission forever). `None` (default) means the watermark *is*
    /// the capacity. Lets a deployer shed load before latency degrades
    /// rather than when the queue is hard-full.
    pub admission_watermark: Option<usize>,
    /// Worker sessions draining the queue (default 1, clamped to ≥ 1).
    /// Each session coalesces its own batches; the engine's persistent
    /// pool is shared by all of them.
    pub workers: usize,
    /// How long a worker holding one request waits for more compatible
    /// ones before dispatching the batch (default 200 µs). Zero means
    /// "opportunistic": take whatever is already queued, never wait.
    pub coalesce_window: Duration,
    /// Most requests one dispatch round may carry (default 64, clamped
    /// to ≥ 1).
    pub max_batch: usize,
    /// Idempotency-cache entries (default 1024; `0` disables caching —
    /// identical requests then still dedup while in flight, but not
    /// across time).
    pub cache_capacity: usize,
    /// Retained for configuration compatibility: the latency reservoir
    /// this sized was replaced by a fixed-resolution `lds-obs`
    /// histogram, which needs no window (bounded memory at any request
    /// volume). The value is ignored.
    pub latency_window: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            admission_watermark: None,
            workers: 1,
            coalesce_window: Duration::from_micros(200),
            max_batch: 64,
            cache_capacity: 1024,
            latency_window: 4096,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control shed the request: the queue is at its
    /// watermark. Callers should back off and retry; the depth and
    /// limit are attached for their telemetry.
    Overloaded {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
        /// The watermark that was hit.
        watermark: usize,
    },
    /// The server has been shut down.
    ShuttingDown,
    /// The request arrived with an already-expired deadline; it was
    /// never queued and nothing executed.
    Expired,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded {
                queue_depth,
                watermark,
            } => write!(
                f,
                "server overloaded: queue depth {queue_depth} at watermark {watermark}"
            ),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::Expired => write!(f, "deadline already expired at admission"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted request did not produce a report.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The engine failed the task (the underlying error is attached; a
    /// coalesced batch fails as a unit, so this may originate from a
    /// sibling seed in the same `run_batch` call).
    Engine(EngineError),
    /// The server dropped the request without an answer (shutdown or a
    /// worker failure mid-dispatch).
    Cancelled,
    /// The request's deadline passed while it waited in the queue; it
    /// was answered without executing. (A deadline missed *during*
    /// execution surfaces as
    /// `ServeError::Engine(EngineError::DeadlineExceeded)` — the
    /// engine's cooperative cancellation.) Deadline outcomes are never
    /// cached: a later retry with a larger budget re-executes.
    Expired,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Cancelled => write!(f, "request cancelled by the server"),
            ServeError::Expired => write!(f, "deadline expired while queued"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Cancelled | ServeError::Expired => None,
        }
    }
}

/// A claim on one accepted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<RunReport, ServeError>>,
    task: Task,
    seed: u64,
}

impl Ticket {
    /// Blocks until the server answers this request.
    pub fn wait(self) -> Result<RunReport, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            // the responder was dropped without an answer
            Err(_) => Err(ServeError::Cancelled),
        }
    }

    /// The task this ticket is for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The seed this ticket is for.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// One queued request: its identity plus the responder to answer it on.
struct Pending {
    task: Task,
    seed: u64,
    submitted_at: Instant,
    /// Absolute deadline, if the caller set one. Checked when the
    /// request is dispatched (queue-expired requests are answered
    /// [`ServeError::Expired`] without executing) and propagated into
    /// the engine's cooperative cancellation for the run itself.
    deadline: Option<Instant>,
    /// Trace-correlation id: inherited from the caller's in-scope
    /// request id (a net session propagates its wire request id this
    /// way) or freshly allocated, so queue/cache/dispatch events for
    /// one request line up across layers.
    trace_id: u64,
    tx: mpsc::Sender<Result<RunReport, ServeError>>,
}

/// Cache and in-flight bookkeeping under **one** lock.
///
/// Keeping both structures behind a single mutex makes the
/// at-most-one-execution argument a one-liner: every worker's
/// resolve-or-claim step and every owner's publish step is atomic with
/// respect to both maps, so there is no window in which a key is
/// neither cached nor claimed while an execution for it is running.
/// (Two locks would force a lock order and still leave a
/// check-then-act gap unless nested — one lock is simpler and the
/// critical sections are tiny.)
struct Ledger {
    cache: LruCache<IdempotencyKey, RunReport>,
    /// Keys currently executing, each with the waiters that piggybacked
    /// after the owning worker claimed the key.
    inflight: HashMap<IdempotencyKey, Vec<Pending>>,
}

/// State shared by the handle and every worker session.
struct Shared {
    engine: Arc<Engine>,
    config: ServerConfig,
    ledger: Mutex<Ledger>,
    counters: Counters,
    /// This server's own latency histogram (lock-free recording); the
    /// same latencies also land in the process-wide
    /// `serve_request_latency_ns` histogram for scraping.
    latency: Histogram,
    /// Probe end of the request queue, used only for depth/peak stats
    /// (holding a receiver does not keep the queue alive — shutdown is
    /// signalled by dropping the *sender*).
    probe: channel::Receiver<Pending>,
    started_at: Instant,
    /// Worker sessions respawned after a panic (see [`supervise`]).
    /// Kept off [`ServerStats`] so the wire shape is unchanged; read it
    /// via [`Server::worker_restarts`].
    worker_restarts: AtomicU64,
}

impl Shared {
    /// Answers a group of requests. Latency recording is a lock-free
    /// histogram bump per response (the old shared-reservoir mutex is
    /// gone), into both this server's histogram and the process-wide
    /// one.
    fn respond_many<I>(&self, responses: I)
    where
        I: IntoIterator<Item = (Pending, Result<RunReport, ServeError>)>,
    {
        let metrics = serve_metrics();
        for (pending, result) in responses {
            let counter = if result.is_ok() {
                &self.counters.completed
            } else {
                &self.counters.failed
            };
            Counters::bump(counter, 1);
            let elapsed = pending.submitted_at.elapsed();
            self.latency.record_duration(elapsed);
            metrics.latency.record_duration(elapsed);
            // a dropped Ticket is a fire-and-forget request; ignore it
            let _ = pending.tx.send(result);
        }
    }

    /// Dispatches one drained batch: coalesce, resolve against the
    /// ledger, run what remains, publish and answer. Drains the
    /// caller's buffer in place so worker sessions reuse one batch
    /// allocation across coalescing windows.
    fn dispatch(self: &Arc<Self>, batch: &mut Vec<Pending>) {
        let metrics = serve_metrics();
        // requests whose deadline passed while queued are answered
        // Expired before any claiming; the common all-unbounded batch
        // skips this with one scan and no clock read
        if batch.iter().any(|p| p.deadline.is_some()) {
            let now = Instant::now();
            let (expired, live): (Vec<Pending>, Vec<Pending>) = batch
                .drain(..)
                .partition(|p| p.deadline.is_some_and(|d| now >= d));
            batch.extend(live);
            if !expired.is_empty() {
                metrics.deadline_misses.add(expired.len() as u64);
                self.respond_many(expired.into_iter().map(|p| (p, Err(ServeError::Expired))));
            }
            if batch.is_empty() {
                return;
            }
        }
        Counters::bump(&self.counters.batches, 1);
        Counters::bump(&self.counters.batched_requests, batch.len() as u64);
        metrics.batches.inc();
        metrics.batched_requests.add(batch.len() as u64);
        let fingerprint = self.engine.fingerprint();
        for group in coalesce(batch.drain(..), |p| (p.task, p.seed)) {
            let task = group.task;
            // phase 1 — resolve each unique seed against the ledger:
            // answer from cache, piggyback on an identical in-flight
            // execution, or claim it for execution here. One ledger
            // lock covers the whole group (one pass per group, not per
            // request); replies go out after the lock drops.
            let mut to_run: Vec<(u64, Vec<Pending>)> = Vec::new();
            let mut cached: Vec<(Pending, RunReport)> = Vec::new();
            let (mut hits, mut misses) = (0u64, 0u64);
            {
                let mut ledger = self.ledger.lock().expect("ledger poisoned");
                for (seed, waiters) in group.entries {
                    let key = IdempotencyKey {
                        fingerprint,
                        task,
                        seed,
                    };
                    if let Some(report) = ledger.cache.get(&key).cloned() {
                        hits += waiters.len() as u64;
                        for w in waiters {
                            trace::with_request_id(w.trace_id, || {
                                trace::emit(TraceEvent::CacheHit)
                            });
                            cached.push((w, report.clone()));
                        }
                        continue;
                    }
                    misses += waiters.len() as u64;
                    for w in &waiters {
                        trace::with_request_id(w.trace_id, || trace::emit(TraceEvent::CacheMiss));
                    }
                    match ledger.inflight.get_mut(&key) {
                        // another worker owns this key: every waiter
                        // rides along and is answered by that owner
                        Some(riders) => riders.extend(waiters),
                        None => {
                            ledger.inflight.insert(key, Vec::new());
                            to_run.push((seed, waiters));
                        }
                    }
                }
            }
            Counters::bump(&self.counters.cache_hits, hits);
            Counters::bump(&self.counters.cache_misses, misses);
            metrics.cache_hits.add(hits);
            metrics.cache_misses.add(misses);
            self.respond_many(cached.into_iter().map(|(w, report)| (w, Ok(report))));
            if to_run.is_empty() {
                continue;
            }
            // phase 2 — one engine call for the whole group. Panics are
            // contained here: `par_map` re-raises a job panic on its
            // caller — this worker thread — and letting it unwind past
            // the claims made in phase 1 would strand the inflight
            // entries forever (riders never answered, the key never
            // executable again, and with one worker the whole queue
            // dead). A panicking execution instead cancels its waiters
            // and the worker keeps serving.
            let seeds: Vec<u64> = to_run.iter().map(|(s, _)| *s).collect();
            Counters::bump(&self.counters.engine_executions, seeds.len() as u64);
            // correlate engine-side trace events with the request that
            // opened the group (a batch executes as one unit)
            let group_trace_id = to_run
                .iter()
                .find_map(|(_, ws)| ws.first().map(|w| w.trace_id))
                .unwrap_or(0);
            // a batch executes as one unit, so it can only carry a
            // deadline every member agreed to: the laxest (max) one,
            // and only when every claimed waiter is bounded — one
            // unbounded waiter must not have its run cancelled by a
            // sibling's budget
            let group_deadline: Option<Instant> = if to_run
                .iter()
                .flat_map(|(_, ws)| ws)
                .all(|w| w.deadline.is_some())
            {
                to_run
                    .iter()
                    .flat_map(|(_, ws)| ws)
                    .filter_map(|w| w.deadline)
                    .max()
            } else {
                None
            };
            let outcome: Result<Vec<RunReport>, ServeError> =
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    trace::with_request_id(group_trace_id, || {
                        self.engine
                            .run_batch_with_deadline(task, &seeds, group_deadline)
                    })
                })) {
                    Ok(Ok(reports)) => Ok(reports),
                    Ok(Err(err)) => Err(ServeError::Engine(err)),
                    Err(_panic) => Err(ServeError::Cancelled),
                };
            // phase 3 — publish to the cache and answer every waiter,
            // including riders that attached while we were running.
            // One ledger lock publishes (or releases) the whole group;
            // responses again happen outside the lock.
            match outcome {
                Ok(reports) => {
                    let mut answered: Vec<(Vec<Pending>, Vec<Pending>, RunReport)> =
                        Vec::with_capacity(reports.len());
                    {
                        let mut ledger = self.ledger.lock().expect("ledger poisoned");
                        for ((seed, waiters), report) in to_run.into_iter().zip(reports) {
                            let key = IdempotencyKey {
                                fingerprint,
                                task,
                                seed,
                            };
                            ledger.cache.insert(key, report.clone());
                            let riders = ledger.inflight.remove(&key).unwrap_or_default();
                            answered.push((waiters, riders, report));
                        }
                    }
                    self.respond_many(answered.into_iter().flat_map(
                        |(waiters, riders, report)| {
                            waiters
                                .into_iter()
                                .chain(riders)
                                .map(move |w| (w, Ok(report.clone())))
                        },
                    ));
                }
                Err(err) => {
                    // the execution fails (or panics) as a unit: every
                    // claimed seed of this group gets the error and its
                    // inflight claim is released; nothing is cached —
                    // deadline outcomes in particular must not shadow a
                    // later retry with a larger budget
                    if matches!(err, ServeError::Engine(EngineError::DeadlineExceeded)) {
                        metrics.deadline_misses.inc();
                    }
                    let mut answered: Vec<(Vec<Pending>, Vec<Pending>)> =
                        Vec::with_capacity(to_run.len());
                    {
                        let mut ledger = self.ledger.lock().expect("ledger poisoned");
                        for (seed, waiters) in to_run {
                            let key = IdempotencyKey {
                                fingerprint,
                                task,
                                seed,
                            };
                            let riders = ledger.inflight.remove(&key).unwrap_or_default();
                            answered.push((waiters, riders));
                        }
                    }
                    self.respond_many(answered.into_iter().flat_map(|(waiters, riders)| {
                        waiters
                            .into_iter()
                            .chain(riders)
                            .map(|w| (w, Err(err.clone())))
                    }));
                }
            }
        }
    }
}

/// One worker session: drain the queue, coalesce within the window,
/// dispatch. Exits when the queue disconnects *and* drains — accepted
/// requests are always served, even during shutdown.
fn worker_loop(shared: Arc<Shared>, rx: channel::Receiver<Pending>) {
    let window = shared.config.coalesce_window;
    let max_batch = shared.config.max_batch.max(1);
    // one batch buffer per session, reused across windows — dispatch
    // drains it in place instead of taking a fresh allocation each time
    let mut batch: Vec<Pending> = Vec::with_capacity(max_batch);
    // queue-depth gauge + QueueDequeue trace event, correlated to the
    // request just taken off the queue
    let note_dequeue = |p: &Pending| {
        let depth = rx.len();
        serve_metrics().queue_depth.set(depth as i64);
        trace::with_request_id(p.trace_id, || {
            trace::emit(TraceEvent::QueueDequeue {
                depth: depth.min(u32::MAX as usize) as u32,
            });
        });
    };
    while let Ok(first) = rx.recv() {
        note_dequeue(&first);
        batch.push(first);
        // The deadline is computed lazily, only once the queue actually
        // runs dry: while requests are already queued (the loaded-server
        // steady state) the session takes them with plain `try_recv` —
        // no clock reads, no condvar park — and a burst that fills
        // `max_batch` dispatches without ever starting the window.
        let mut deadline: Option<Instant> = None;
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(p) => {
                    note_dequeue(&p);
                    batch.push(p);
                    continue;
                }
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => {}
            }
            if window.is_zero() {
                // opportunistic mode: never wait for more
                break;
            }
            let d = *deadline.get_or_insert_with(|| Instant::now() + window);
            let Some(remaining) = d.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(p) => {
                    note_dequeue(&p);
                    batch.push(p);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // fail points OUTSIDE dispatch's own panic containment: a
        // `Panic` here unwinds the session mid-batch — the held
        // pendings' responders drop (tickets answer typed Cancelled)
        // and the supervisor respawns the session
        if let Some(lds_chaos::Fault::Delay(d)) = lds_chaos::point("serve.queue_stall") {
            thread::sleep(d);
        }
        if let Some(fault) = lds_chaos::point("serve.worker_panic") {
            if matches!(fault, lds_chaos::Fault::Panic) {
                panic!("injected fault: serve.worker_panic");
            }
        }
        shared.dispatch(&mut batch);
    }
}

/// Runs one worker session under a supervisor: a clean exit (queue
/// disconnected and drained) ends the session; a panic is contained,
/// counted (`Server::worker_restarts`, obs `serve_worker_restarts`),
/// and the session respawns on the same thread and keeps draining. The
/// unwound batch's responders drop during the unwind, so every
/// in-flight ticket of the dead session is answered with a typed
/// [`ServeError::Cancelled`] — never left hanging.
fn supervise(shared: Arc<Shared>, rx: channel::Receiver<Pending>) {
    loop {
        let session = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(Arc::clone(&shared), rx.clone())
        }));
        match session {
            Ok(()) => return,
            Err(_panic) => {
                shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                serve_metrics().worker_restarts.inc();
            }
        }
    }
}

/// A concurrent serving front-end over one shared [`Engine`].
///
/// ```text
///  clients ──try_submit──▶ [bounded queue] ──▶ worker sessions
///     ▲   Overloaded ◀──┘ (admission ctl)       │  coalesce window
///     │                                         ▼
///  Ticket::wait ◀── respond ◀── ledger ◀── Engine::run_batch
///                         (idempotency cache + in-flight dedup)
/// ```
///
/// * **Admission control** — the request queue is bounded;
///   [`Server::try_submit`] sheds load with [`SubmitError::Overloaded`]
///   at the configured watermark instead of queuing unboundedly.
/// * **Coalescing** — a worker holding one request waits up to
///   [`ServerConfig::coalesce_window`] for more, then groups compatible
///   requests (same engine, same [`Task`]) into one
///   [`Engine::run_batch`] call. Batching across seeds is the engine's
///   parallel hot path, so a coalesced group costs one dispatch
///   overhead instead of one per request.
/// * **Idempotency** — answers are cached under
///   `(engine fingerprint, task, seed)`. Per-request seeds are the
///   idempotency key of the whole workspace: task randomness derives
///   from the seed alone, so a cached answer is bit-identical to a
///   recomputed one. Identical requests in flight dedup to a single
///   execution regardless of which worker carries them.
/// * **Determinism** — coalescing and caching change *when and where*
///   a task runs, never its output bits: `run_batch` keeps each seed's
///   execution on a sequential lane, so a report served through the
///   server equals the report of a direct `engine.run_with_seed` call
///   (up to wall-clock fields).
///
/// Dropping the server (or calling [`Server::shutdown`]) stops
/// admission, drains every accepted request, and joins the workers.
pub struct Server {
    shared: Arc<Shared>,
    /// `None` after shutdown; dropping the sender is the shutdown
    /// signal (workers exit once the queue disconnects and drains).
    queue: Option<channel::Sender<Pending>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server with the given configuration; worker sessions
    /// spawn immediately.
    pub fn new(engine: Arc<Engine>, config: ServerConfig) -> Server {
        let (tx, rx) = channel::bounded::<Pending>(config.queue_capacity.max(1));
        let shared = Arc::new(Shared {
            engine,
            ledger: Mutex::new(Ledger {
                cache: LruCache::new(config.cache_capacity),
                inflight: HashMap::new(),
            }),
            counters: Counters::default(),
            latency: Histogram::new(),
            probe: rx.clone(),
            started_at: Instant::now(),
            worker_restarts: AtomicU64::new(0),
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                thread::Builder::new()
                    .name(format!("lds-serve-{i}"))
                    .spawn(move || supervise(shared, rx))
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            shared,
            queue: Some(tx),
            workers,
        }
    }

    /// Starts a server with [`ServerConfig::default`].
    pub fn with_defaults(engine: Arc<Engine>) -> Server {
        Server::new(engine, ServerConfig::default())
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The configuration this server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// Submits without blocking. Sheds load with
    /// [`SubmitError::Overloaded`] once the queue depth reaches the
    /// admission watermark (or the queue is hard-full) — the
    /// backpressure contract: the caller, not the server, decides
    /// whether to retry, degrade, or fail upstream.
    pub fn try_submit(&self, task: Task, seed: u64) -> Result<Ticket, SubmitError> {
        self.try_submit_with_deadline(task, seed, None)
    }

    /// [`Server::try_submit`] with an optional absolute deadline.
    ///
    /// An already-expired deadline is shed right here with
    /// [`SubmitError::Expired`] — the request never queues and nothing
    /// executes. An accepted deadline rides with the request: if it
    /// passes while queued the answer is [`ServeError::Expired`]; if it
    /// passes mid-run the engine cancels cooperatively and the answer
    /// is `ServeError::Engine(EngineError::DeadlineExceeded)`. Either
    /// way the caller always gets a typed answer, and deadline outcomes
    /// are never cached.
    pub fn try_submit_with_deadline(
        &self,
        task: Task,
        seed: u64,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let metrics = serve_metrics();
        Counters::bump(&self.shared.counters.submitted, 1);
        metrics.submitted.inc();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            Counters::bump(&self.shared.counters.rejected, 1);
            metrics.rejected.inc();
            metrics.deadline_misses.inc();
            return Err(SubmitError::Expired);
        }
        let Some(queue) = &self.queue else {
            return Err(SubmitError::ShuttingDown);
        };
        let watermark = self
            .shared
            .config
            .admission_watermark
            .unwrap_or(queue.capacity())
            .clamp(1, queue.capacity());
        metrics.watermark.set(watermark as i64);
        let (pending, ticket) = Self::make_request(task, seed, deadline);
        let trace_id = pending.trace_id;
        // the depth check and the enqueue are one atomic operation:
        // checking `len()` first would let concurrent producers all
        // observe a below-watermark depth and overshoot it together
        match queue.try_send_below(pending, watermark) {
            Ok(()) => {
                self.note_enqueue(trace_id);
                Ok(ticket)
            }
            Err(TrySendError::Full(_, depth)) => {
                Counters::bump(&self.shared.counters.rejected, 1);
                metrics.rejected.inc();
                Err(SubmitError::Overloaded {
                    queue_depth: depth,
                    watermark,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submits, blocking while the queue is full (cooperative
    /// backpressure for in-process clients that prefer waiting over
    /// shedding).
    pub fn submit(&self, task: Task, seed: u64) -> Result<Ticket, SubmitError> {
        Counters::bump(&self.shared.counters.submitted, 1);
        serve_metrics().submitted.inc();
        let Some(queue) = &self.queue else {
            return Err(SubmitError::ShuttingDown);
        };
        let (pending, ticket) = Self::make_request(task, seed, None);
        let trace_id = pending.trace_id;
        queue
            .send(pending)
            .map(|()| {
                self.note_enqueue(trace_id);
                ticket
            })
            .map_err(|_| SubmitError::ShuttingDown)
    }

    /// Records an accepted enqueue: the process-wide queue-depth gauge
    /// and a [`TraceEvent::QueueEnqueue`] correlated to the request.
    fn note_enqueue(&self, trace_id: u64) {
        let depth = self.shared.probe.len();
        serve_metrics().queue_depth.set(depth as i64);
        trace::with_request_id(trace_id, || {
            trace::emit(TraceEvent::QueueEnqueue {
                depth: depth.min(u32::MAX as usize) as u32,
            });
        });
    }

    /// Convenience: blocking submit + wait. Use
    /// [`Server::try_submit`] when the caller needs to observe
    /// admission-control rejections instead of waiting out the queue.
    pub fn run(&self, task: Task, seed: u64) -> Result<RunReport, ServeError> {
        match self.submit(task, seed) {
            Ok(ticket) => ticket.wait(),
            Err(_) => Err(ServeError::Cancelled),
        }
    }

    fn make_request(task: Task, seed: u64, deadline: Option<Instant>) -> (Pending, Ticket) {
        let (tx, rx) = mpsc::channel();
        let trace_id = match trace::current_request_id() {
            0 => trace::next_request_id(),
            id => id,
        };
        (
            Pending {
                task,
                seed,
                submitted_at: Instant::now(),
                deadline,
                trace_id,
                tx,
            },
            Ticket { rx, task, seed },
        )
    }

    /// Worker sessions the supervisor has respawned after a panic.
    /// Zero in fault-free operation; kept off [`ServerStats`] so the
    /// wire shape is unchanged.
    pub fn worker_restarts(&self) -> u64 {
        self.shared.worker_restarts.load(Ordering::Relaxed)
    }

    /// A point-in-time stats snapshot (counters are relaxed atomics:
    /// the snapshot is consistent enough for telemetry, not a barrier).
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let (p50, p99) = latency_percentiles(&self.shared.latency);
        ServerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            engine_executions: c.engine_executions.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            queue_depth: self.shared.probe.len(),
            peak_queue_depth: self.shared.probe.peak_depth(),
            p50_latency: p50,
            p99_latency: p99,
            uptime: self.shared.started_at.elapsed(),
        }
    }

    /// Stops admission, drains every accepted request, joins the
    /// workers. Called automatically on drop; explicit shutdown lets
    /// callers sequence it (e.g. before reading final stats from a
    /// clone of the handle's data).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // dropping the only sender disconnects the queue; workers
        // finish the drain and exit
        self.queue.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("engine", &self.shared.engine.spec())
            .field("config", &self.shared.config)
            .field("queue_depth", &self.shared.probe.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_engine::ModelSpec;
    use lds_graph::generators;

    fn test_engine() -> Arc<Engine> {
        Arc::new(
            Engine::builder()
                .model(ModelSpec::Hardcore { lambda: 1.0 })
                .graph(generators::cycle(8))
                .epsilon(0.01)
                .threads(1)
                .build()
                .expect("in regime"),
        )
    }

    #[test]
    fn serves_and_matches_direct_execution() {
        let engine = test_engine();
        let server = Server::with_defaults(Arc::clone(&engine));
        let served = server
            .try_submit(Task::SampleExact, 13)
            .unwrap()
            .wait()
            .unwrap();
        let direct = engine.run_with_seed(Task::SampleExact, 13).unwrap();
        assert_eq!(
            served.config().unwrap().values(),
            direct.config().unwrap().values()
        );
        assert_eq!(served.rounds, direct.rounds);
        assert_eq!(served.seed, 13);
    }

    #[test]
    fn cache_serves_repeats_without_reexecution() {
        let server = Server::with_defaults(test_engine());
        let a = server.run(Task::SampleExact, 5).unwrap();
        // run sequentially so the second request cannot coalesce with
        // the first: it must be a pure cache hit
        let b = server.run(Task::SampleExact, 5).unwrap();
        assert_eq!(a.config().unwrap().values(), b.config().unwrap().values());
        let stats = server.stats();
        assert_eq!(stats.engine_executions, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn cache_capacity_zero_disables_replay() {
        let server = Server::new(
            test_engine(),
            ServerConfig {
                cache_capacity: 0,
                ..ServerConfig::default()
            },
        );
        server.run(Task::SampleExact, 5).unwrap();
        server.run(Task::SampleExact, 5).unwrap();
        let stats = server.stats();
        assert_eq!(stats.engine_executions, 2);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn distinct_tasks_and_seeds_all_complete() {
        let server = Server::with_defaults(test_engine());
        let tickets: Vec<Ticket> = (0..6u64)
            .map(|s| server.try_submit(Task::SampleExact, s).unwrap())
            .chain((0..2u64).map(|s| server.try_submit(Task::Count, s).unwrap()))
            .collect();
        for t in tickets {
            let report = t.wait().unwrap();
            assert!(report.rounds > 0);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 8);
        // Count is seed-independent in output but still keyed by seed:
        // the two Count requests execute separately (different keys)
        assert_eq!(stats.engine_executions, 8);
    }

    #[test]
    fn failed_execution_releases_claims_and_server_keeps_serving() {
        use lds_gibbs::Value;
        use lds_graph::NodeId;
        let server = Server::with_defaults(test_engine());
        // an out-of-range vertex makes run_batch fail inside dispatch:
        // the claim must be released and the error surfaced, not cached
        let bad = Task::Infer {
            vertex: NodeId(999),
            value: Value(0),
        };
        for _ in 0..2 {
            let err = server.run(bad, 1).unwrap_err();
            assert!(matches!(
                err,
                ServeError::Engine(EngineError::InvalidTask { .. })
            ));
        }
        let stats = server.stats();
        assert_eq!(stats.failed, 2);
        // both attempts executed: failures are not cached, and the
        // first failure's inflight claim did not wedge the key
        assert_eq!(stats.engine_executions, 2);
        // the worker survives and serves healthy requests
        let ok = server.run(Task::SampleExact, 3).unwrap();
        assert!(ok.config().is_some());
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let server = Server::new(
            test_engine(),
            ServerConfig {
                coalesce_window: Duration::from_millis(2),
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..8u64)
            .map(|s| server.try_submit(Task::SampleExact, s).unwrap())
            .collect();
        server.shutdown(); // joins workers; accepted work must finish
        for t in tickets {
            assert!(t.wait().is_ok(), "accepted request dropped on shutdown");
        }
    }

    #[test]
    fn stats_snapshot_counts_batches() {
        let server = Server::with_defaults(test_engine());
        for s in 0..4u64 {
            server.run(Task::SampleExact, s).unwrap();
        }
        let stats = server.stats();
        assert!(stats.batches >= 1);
        assert_eq!(stats.batched_requests, 4);
        assert_eq!(stats.submitted, 4);
        assert!(stats.p50_latency > Duration::ZERO);
        assert!(stats.p99_latency >= stats.p50_latency);
        assert_eq!(stats.queue_depth, 0);
    }
}
