//! Serving observability: lock-free counters, latency percentiles off
//! the shared `lds-obs` histogram, and the [`ServerStats`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lds_obs::Histogram;

/// Monotonic event counters bumped on the request path. All relaxed:
/// each counter is an independent tally, never used to synchronize.
#[derive(Default)]
pub(crate) struct Counters {
    /// Submission attempts (accepted + rejected).
    pub submitted: AtomicU64,
    /// Requests shed by admission control.
    pub rejected: AtomicU64,
    /// Requests answered with a report.
    pub completed: AtomicU64,
    /// Requests answered with an error.
    pub failed: AtomicU64,
    /// Requests answered straight from the idempotency cache.
    pub cache_hits: AtomicU64,
    /// Requests that missed the cache (executed or piggybacked on an
    /// identical in-flight execution).
    pub cache_misses: AtomicU64,
    /// Seeds actually run on the engine. `cache_misses −
    /// engine_executions` is the number of requests deduplicated
    /// against an identical concurrent execution.
    pub engine_executions: AtomicU64,
    /// Coalesced dispatch rounds.
    pub batches: AtomicU64,
    /// Requests dispatched across all rounds (`/ batches` = mean
    /// coalescing factor).
    pub batched_requests: AtomicU64,
}

impl Counters {
    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// `(p50, p99)` of a latency [`Histogram`] as durations (zeros when
/// empty). The histogram replaced the old hand-rolled latency ring:
/// recording is now a lock-free atomic bump (no reservoir mutex on the
/// response path), the percentiles cover the server's whole lifetime
/// instead of a sliding window, and the same bucket counts are
/// exported through the process metrics registry (`Op::Metrics`, text
/// exposition) — one definition of latency everywhere. Quantiles are
/// bucket midpoints, within ~6% relative error.
pub(crate) fn latency_percentiles(histogram: &Histogram) -> (Duration, Duration) {
    let snap = histogram.snapshot();
    (
        Duration::from_nanos(snap.quantile(0.50)),
        Duration::from_nanos(snap.quantile(0.99)),
    )
}

/// A point-in-time snapshot of a server's counters and latency
/// percentiles — what a scrape endpoint would export.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Submission attempts (accepted + rejected).
    pub submitted: u64,
    /// Requests shed by admission control ([`crate::SubmitError::Overloaded`]).
    pub rejected: u64,
    /// Requests answered with a report.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Requests answered straight from the idempotency cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Seeds actually executed on the engine.
    pub engine_executions: u64,
    /// Coalesced dispatch rounds.
    pub batches: u64,
    /// Requests dispatched across all rounds.
    pub batched_requests: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// High-watermark of queue depth since the server started.
    pub peak_queue_depth: usize,
    /// Median request latency over the recent window (submit → respond).
    pub p50_latency: Duration,
    /// 99th-percentile request latency over the recent window.
    pub p99_latency: Duration,
    /// Time since the server started.
    pub uptime: Duration,
}

impl ServerStats {
    /// Fraction of answered lookups served from the cache
    /// (`hits / (hits + misses)`; `0` before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean number of requests per coalesced dispatch round.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Requests that were deduplicated against an identical concurrent
    /// execution (answered without running the engine and without a
    /// cache hit).
    pub fn deduped(&self) -> u64 {
        self.cache_misses.saturating_sub(self.engine_executions)
    }

    /// Completed requests per second of uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// The **interval snapshot**: what happened between `earlier` and
    /// `self`, as a `ServerStats` whose monotonic counters are deltas
    /// and whose `uptime` is the interval length.
    ///
    /// Process-lifetime aggregates go flat on a long-lived server — a
    /// tenant that served a million requests yesterday and nothing
    /// today still shows a healthy lifetime throughput. Differencing
    /// two snapshots (`snapshot_and_reset` style, without the reset:
    /// the baseline snapshot *is* the state) yields rates that are
    /// meaningful over time; the registry's per-tenant interval stats
    /// are built exactly this way.
    ///
    /// Point-in-time fields (`queue_depth`, `peak_queue_depth`) and the
    /// windowed latency percentiles keep their current values — they
    /// are not counters and cannot be differenced.
    pub fn since(&self, earlier: &ServerStats) -> ServerStats {
        ServerStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            completed: self.completed.saturating_sub(earlier.completed),
            failed: self.failed.saturating_sub(earlier.failed),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            engine_executions: self
                .engine_executions
                .saturating_sub(earlier.engine_executions),
            batches: self.batches.saturating_sub(earlier.batches),
            batched_requests: self
                .batched_requests
                .saturating_sub(earlier.batched_requests),
            queue_depth: self.queue_depth,
            peak_queue_depth: self.peak_queue_depth,
            p50_latency: self.p50_latency,
            p99_latency: self.p99_latency,
            uptime: self.uptime.saturating_sub(earlier.uptime),
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} failed, {} rejected",
            self.submitted, self.completed, self.failed, self.rejected
        )?;
        writeln!(
            f,
            "cache:    {} hits / {} misses (hit rate {:.1}%), {} deduped in flight",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.deduped()
        )?;
        writeln!(
            f,
            "engine:   {} executions in {} batches (mean coalescing {:.2}x)",
            self.engine_executions,
            self.batches,
            self.mean_batch_size()
        )?;
        writeln!(
            f,
            "queue:    depth {} (peak {})",
            self.queue_depth, self.peak_queue_depth
        )?;
        write!(
            f,
            "latency:  p50 {:.3} ms, p99 {:.3} ms; throughput {:.0} req/s over {:.2} s",
            self.p50_latency.as_secs_f64() * 1e3,
            self.p99_latency.as_secs_f64() * 1e3,
            self.throughput(),
            self.uptime.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_the_histogram() {
        let hist = Histogram::new();
        let (p50, p99) = latency_percentiles(&hist);
        assert_eq!((p50, p99), (Duration::ZERO, Duration::ZERO));
        for i in 1..=100u64 {
            hist.record_duration(Duration::from_nanos(i));
        }
        let (p50, p99) = latency_percentiles(&hist);
        // bucket midpoints: the 50th value (50 ns) lands in [50, 52) →
        // 51; the 99th (99 ns) lands in [96, 100) → 98
        assert_eq!(p50, Duration::from_nanos(51));
        assert_eq!(p99, Duration::from_nanos(98));
        // the histogram aggregates over the server lifetime (no sliding
        // window): a burst of small latencies pulls the median down but
        // the old tail stays visible in p99
        for _ in 0..10_000 {
            hist.record_duration(Duration::from_nanos(7));
        }
        let (p50, p99) = latency_percentiles(&hist);
        assert_eq!(p50, Duration::from_nanos(7));
        assert!(p99 >= Duration::from_nanos(7));
    }

    #[test]
    fn since_differences_counters_and_keeps_window_fields() {
        let mk = |completed, submitted, uptime_s| ServerStats {
            submitted,
            rejected: 1,
            completed,
            failed: 0,
            cache_hits: 4,
            cache_misses: 10,
            engine_executions: 9,
            batches: 3,
            batched_requests: 12,
            queue_depth: 2,
            peak_queue_depth: 8,
            p50_latency: Duration::from_micros(100),
            p99_latency: Duration::from_micros(900),
            uptime: Duration::from_secs(uptime_s),
        };
        let earlier = mk(50, 60, 10);
        let later = ServerStats {
            completed: 80,
            submitted: 95,
            cache_hits: 14,
            uptime: Duration::from_secs(14),
            ..mk(0, 0, 0)
        };
        let delta = later.since(&earlier);
        assert_eq!(delta.completed, 30);
        assert_eq!(delta.submitted, 35);
        assert_eq!(delta.cache_hits, 10);
        // counters the interval never bumped saturate at zero
        assert_eq!(delta.rejected, 0);
        assert_eq!(delta.engine_executions, 0);
        // interval throughput: 30 completions over 4 seconds
        assert_eq!(delta.uptime, Duration::from_secs(4));
        assert!((delta.throughput() - 7.5).abs() < 1e-12);
        // point-in-time / windowed fields pass through from `self`
        assert_eq!(delta.queue_depth, later.queue_depth);
        assert_eq!(delta.p50_latency, later.p50_latency);
    }

    #[test]
    fn derived_rates() {
        let stats = ServerStats {
            submitted: 100,
            rejected: 10,
            completed: 88,
            failed: 2,
            cache_hits: 30,
            cache_misses: 60,
            engine_executions: 45,
            batches: 15,
            batched_requests: 90,
            queue_depth: 0,
            peak_queue_depth: 12,
            p50_latency: Duration::from_micros(500),
            p99_latency: Duration::from_millis(4),
            uptime: Duration::from_secs(2),
        };
        assert!((stats.cache_hit_rate() - 30.0 / 90.0).abs() < 1e-12);
        assert!((stats.mean_batch_size() - 6.0).abs() < 1e-12);
        assert_eq!(stats.deduped(), 15);
        assert!((stats.throughput() - 44.0).abs() < 1e-12);
        let rendered = stats.to_string();
        assert!(rendered.contains("hit rate 33.3%"));
        assert!(rendered.contains("peak 12"));
    }

    #[test]
    fn display_snapshot_is_stable() {
        // pins the exact rendering across the latency-recorder →
        // histogram swap: the public `Display` shape is a compatibility
        // surface (operators grep it)
        let stats = ServerStats {
            submitted: 100,
            rejected: 10,
            completed: 88,
            failed: 2,
            cache_hits: 30,
            cache_misses: 60,
            engine_executions: 45,
            batches: 15,
            batched_requests: 90,
            queue_depth: 0,
            peak_queue_depth: 12,
            p50_latency: Duration::from_micros(500),
            p99_latency: Duration::from_millis(4),
            uptime: Duration::from_secs(2),
        };
        let expected = "\
requests: 100 submitted, 88 completed, 2 failed, 10 rejected
cache:    30 hits / 60 misses (hit rate 33.3%), 15 deduped in flight
engine:   45 executions in 15 batches (mean coalescing 6.00x)
queue:    depth 0 (peak 12)
latency:  p50 0.500 ms, p99 4.000 ms; throughput 44 req/s over 2.00 s";
        assert_eq!(stats.to_string(), expected);
    }

    #[test]
    fn since_with_reset_counters_saturates_at_zero() {
        // a restarted server reports smaller lifetime counters than the
        // interval baseline; the delta must clamp to zero, not wrap
        let mk = |n: u64, uptime_s| ServerStats {
            submitted: n,
            rejected: n / 2,
            completed: n,
            failed: n / 4,
            cache_hits: n,
            cache_misses: n,
            engine_executions: n,
            batches: n,
            batched_requests: n,
            queue_depth: 1,
            peak_queue_depth: 3,
            p50_latency: Duration::from_micros(10),
            p99_latency: Duration::from_micros(20),
            uptime: Duration::from_secs(uptime_s),
        };
        let earlier = mk(1000, 500);
        let later = mk(4, 2); // post-reset: everything smaller
        let delta = later.since(&earlier);
        assert_eq!(delta.submitted, 0);
        assert_eq!(delta.rejected, 0);
        assert_eq!(delta.completed, 0);
        assert_eq!(delta.failed, 0);
        assert_eq!(delta.cache_hits, 0);
        assert_eq!(delta.cache_misses, 0);
        assert_eq!(delta.engine_executions, 0);
        assert_eq!(delta.batches, 0);
        assert_eq!(delta.batched_requests, 0);
        // uptime saturates too, so rates divide by zero safely
        assert_eq!(delta.uptime, Duration::ZERO);
        assert_eq!(delta.throughput(), 0.0);
        // point-in-time fields still pass through from `self`
        assert_eq!(delta.queue_depth, later.queue_depth);
        assert_eq!(delta.peak_queue_depth, later.peak_queue_depth);
        assert_eq!(delta.p50_latency, later.p50_latency);
        assert_eq!(delta.p99_latency, later.p99_latency);
    }

    #[test]
    fn since_over_an_empty_window_is_all_zero() {
        // two interval queries with no traffic in between: every delta
        // is zero, every derived rate is a well-defined zero
        let snap = ServerStats {
            submitted: 42,
            rejected: 1,
            completed: 40,
            failed: 1,
            cache_hits: 7,
            cache_misses: 33,
            engine_executions: 30,
            batches: 9,
            batched_requests: 40,
            queue_depth: 0,
            peak_queue_depth: 5,
            p50_latency: Duration::from_micros(100),
            p99_latency: Duration::from_micros(300),
            uptime: Duration::from_secs(60),
        };
        let delta = snap.since(&snap.clone());
        assert_eq!(delta.submitted, 0);
        assert_eq!(delta.completed, 0);
        assert_eq!(delta.uptime, Duration::ZERO);
        assert_eq!(delta.throughput(), 0.0);
        assert_eq!(delta.cache_hit_rate(), 0.0);
        assert_eq!(delta.mean_batch_size(), 0.0);
        assert_eq!(delta.deduped(), 0);
        // the windowed percentile fields are not deltas and survive
        assert_eq!(delta.p50_latency, snap.p50_latency);
    }
}
