//! Serving observability: lock-free counters, a latency reservoir, and
//! the [`ServerStats`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic event counters bumped on the request path. All relaxed:
/// each counter is an independent tally, never used to synchronize.
#[derive(Default)]
pub(crate) struct Counters {
    /// Submission attempts (accepted + rejected).
    pub submitted: AtomicU64,
    /// Requests shed by admission control.
    pub rejected: AtomicU64,
    /// Requests answered with a report.
    pub completed: AtomicU64,
    /// Requests answered with an error.
    pub failed: AtomicU64,
    /// Requests answered straight from the idempotency cache.
    pub cache_hits: AtomicU64,
    /// Requests that missed the cache (executed or piggybacked on an
    /// identical in-flight execution).
    pub cache_misses: AtomicU64,
    /// Seeds actually run on the engine. `cache_misses −
    /// engine_executions` is the number of requests deduplicated
    /// against an identical concurrent execution.
    pub engine_executions: AtomicU64,
    /// Coalesced dispatch rounds.
    pub batches: AtomicU64,
    /// Requests dispatched across all rounds (`/ batches` = mean
    /// coalescing factor).
    pub batched_requests: AtomicU64,
}

impl Counters {
    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// A fixed-size ring of the most recent request latencies, recorded at
/// response time with the same wall clocks the engine's `Phase`
/// breakdown uses. Percentiles are computed over the retained window
/// (the last `capacity` requests), which is the standard trade for a
/// dependency-free p50/p99 with bounded memory.
pub(crate) struct LatencyRecorder {
    ring: Vec<u64>,
    /// Window size (`Vec::capacity` is only a lower bound, so the
    /// modulus is stored explicitly).
    window: usize,
    next: usize,
}

impl LatencyRecorder {
    pub(crate) fn new(window: usize) -> Self {
        let window = window.max(1);
        LatencyRecorder {
            ring: Vec::with_capacity(window.min(65536)),
            window,
            next: 0,
        }
    }

    pub(crate) fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        if self.ring.len() < self.window {
            self.ring.push(ns);
        } else {
            self.ring[self.next] = ns;
        }
        self.next = (self.next + 1) % self.window;
    }

    /// `(p50, p99)` over the retained window (zeros when empty).
    pub(crate) fn percentiles(&self) -> (Duration, Duration) {
        if self.ring.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let mut sorted = self.ring.clone();
        sorted.sort_unstable();
        let at = |q: f64| {
            let i = ((sorted.len() - 1) as f64 * q).round() as usize;
            Duration::from_nanos(sorted[i])
        };
        (at(0.50), at(0.99))
    }
}

/// A point-in-time snapshot of a server's counters and latency
/// percentiles — what a scrape endpoint would export.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Submission attempts (accepted + rejected).
    pub submitted: u64,
    /// Requests shed by admission control ([`crate::SubmitError::Overloaded`]).
    pub rejected: u64,
    /// Requests answered with a report.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Requests answered straight from the idempotency cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Seeds actually executed on the engine.
    pub engine_executions: u64,
    /// Coalesced dispatch rounds.
    pub batches: u64,
    /// Requests dispatched across all rounds.
    pub batched_requests: u64,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// High-watermark of queue depth since the server started.
    pub peak_queue_depth: usize,
    /// Median request latency over the recent window (submit → respond).
    pub p50_latency: Duration,
    /// 99th-percentile request latency over the recent window.
    pub p99_latency: Duration,
    /// Time since the server started.
    pub uptime: Duration,
}

impl ServerStats {
    /// Fraction of answered lookups served from the cache
    /// (`hits / (hits + misses)`; `0` before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean number of requests per coalesced dispatch round.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Requests that were deduplicated against an identical concurrent
    /// execution (answered without running the engine and without a
    /// cache hit).
    pub fn deduped(&self) -> u64 {
        self.cache_misses.saturating_sub(self.engine_executions)
    }

    /// Completed requests per second of uptime.
    pub fn throughput(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// The **interval snapshot**: what happened between `earlier` and
    /// `self`, as a `ServerStats` whose monotonic counters are deltas
    /// and whose `uptime` is the interval length.
    ///
    /// Process-lifetime aggregates go flat on a long-lived server — a
    /// tenant that served a million requests yesterday and nothing
    /// today still shows a healthy lifetime throughput. Differencing
    /// two snapshots (`snapshot_and_reset` style, without the reset:
    /// the baseline snapshot *is* the state) yields rates that are
    /// meaningful over time; the registry's per-tenant interval stats
    /// are built exactly this way.
    ///
    /// Point-in-time fields (`queue_depth`, `peak_queue_depth`) and the
    /// windowed latency percentiles keep their current values — they
    /// are not counters and cannot be differenced.
    pub fn since(&self, earlier: &ServerStats) -> ServerStats {
        ServerStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            completed: self.completed.saturating_sub(earlier.completed),
            failed: self.failed.saturating_sub(earlier.failed),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            engine_executions: self
                .engine_executions
                .saturating_sub(earlier.engine_executions),
            batches: self.batches.saturating_sub(earlier.batches),
            batched_requests: self
                .batched_requests
                .saturating_sub(earlier.batched_requests),
            queue_depth: self.queue_depth,
            peak_queue_depth: self.peak_queue_depth,
            p50_latency: self.p50_latency,
            p99_latency: self.p99_latency,
            uptime: self.uptime.saturating_sub(earlier.uptime),
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} submitted, {} completed, {} failed, {} rejected",
            self.submitted, self.completed, self.failed, self.rejected
        )?;
        writeln!(
            f,
            "cache:    {} hits / {} misses (hit rate {:.1}%), {} deduped in flight",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.deduped()
        )?;
        writeln!(
            f,
            "engine:   {} executions in {} batches (mean coalescing {:.2}x)",
            self.engine_executions,
            self.batches,
            self.mean_batch_size()
        )?;
        writeln!(
            f,
            "queue:    depth {} (peak {})",
            self.queue_depth, self.peak_queue_depth
        )?;
        write!(
            f,
            "latency:  p50 {:.3} ms, p99 {:.3} ms; throughput {:.0} req/s over {:.2} s",
            self.p50_latency.as_secs_f64() * 1e3,
            self.p99_latency.as_secs_f64() * 1e3,
            self.throughput(),
            self.uptime.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_a_window() {
        let mut rec = LatencyRecorder::new(100);
        let (p50, p99) = rec.percentiles();
        assert_eq!((p50, p99), (Duration::ZERO, Duration::ZERO));
        for i in 1..=100u64 {
            rec.record(Duration::from_nanos(i));
        }
        let (p50, p99) = rec.percentiles();
        // index = round(99 · q): p50 → sorted[50] = 51, p99 → sorted[98] = 99
        assert_eq!(p50, Duration::from_nanos(51));
        assert_eq!(p99, Duration::from_nanos(99));
        // the ring retains only the most recent `capacity` samples
        for _ in 0..100 {
            rec.record(Duration::from_nanos(7));
        }
        let (p50, p99) = rec.percentiles();
        assert_eq!(p50, Duration::from_nanos(7));
        assert_eq!(p99, Duration::from_nanos(7));
    }

    #[test]
    fn since_differences_counters_and_keeps_window_fields() {
        let mk = |completed, submitted, uptime_s| ServerStats {
            submitted,
            rejected: 1,
            completed,
            failed: 0,
            cache_hits: 4,
            cache_misses: 10,
            engine_executions: 9,
            batches: 3,
            batched_requests: 12,
            queue_depth: 2,
            peak_queue_depth: 8,
            p50_latency: Duration::from_micros(100),
            p99_latency: Duration::from_micros(900),
            uptime: Duration::from_secs(uptime_s),
        };
        let earlier = mk(50, 60, 10);
        let later = ServerStats {
            completed: 80,
            submitted: 95,
            cache_hits: 14,
            uptime: Duration::from_secs(14),
            ..mk(0, 0, 0)
        };
        let delta = later.since(&earlier);
        assert_eq!(delta.completed, 30);
        assert_eq!(delta.submitted, 35);
        assert_eq!(delta.cache_hits, 10);
        // counters the interval never bumped saturate at zero
        assert_eq!(delta.rejected, 0);
        assert_eq!(delta.engine_executions, 0);
        // interval throughput: 30 completions over 4 seconds
        assert_eq!(delta.uptime, Duration::from_secs(4));
        assert!((delta.throughput() - 7.5).abs() < 1e-12);
        // point-in-time / windowed fields pass through from `self`
        assert_eq!(delta.queue_depth, later.queue_depth);
        assert_eq!(delta.p50_latency, later.p50_latency);
    }

    #[test]
    fn derived_rates() {
        let stats = ServerStats {
            submitted: 100,
            rejected: 10,
            completed: 88,
            failed: 2,
            cache_hits: 30,
            cache_misses: 60,
            engine_executions: 45,
            batches: 15,
            batched_requests: 90,
            queue_depth: 0,
            peak_queue_depth: 12,
            p50_latency: Duration::from_micros(500),
            p99_latency: Duration::from_millis(4),
            uptime: Duration::from_secs(2),
        };
        assert!((stats.cache_hit_rate() - 30.0 / 90.0).abs() < 1e-12);
        assert!((stats.mean_batch_size() - 6.0).abs() < 1e-12);
        assert_eq!(stats.deduped(), 15);
        assert!((stats.throughput() - 44.0).abs() < 1e-12);
        let rendered = stats.to_string();
        assert!(rendered.contains("hit rate 33.3%"));
        assert!(rendered.contains("peak 12"));
    }
}
