//! The idempotency cache: an O(1) LRU over `(fingerprint, task, seed)`.
//!
//! Per-request seeds are the workspace's idempotency key: every bit a
//! task consumes derives from `(engine state, task, seed)` (the
//! `lds-runtime` stream-derivation contract), so a repeated request is
//! *guaranteed* to reproduce the same report — serving it from memory
//! is not an approximation, it is the definition. The cache therefore
//! doubles as request dedup: retries, fan-in from many clients asking
//! for the same sample, and replayed idempotent writes all collapse to
//! one engine execution.

use std::collections::HashMap;
use std::hash::Hash;

use lds_engine::Task;

/// The idempotency key of one request against one engine.
///
/// `fingerprint` is [`lds_engine::Engine::fingerprint`] — the stable
/// hash of everything output-determining (spec bits, topology, pinning,
/// ε/δ) — so keys from different engines never collide semantically
/// even if a cache were shared across them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IdempotencyKey {
    /// The engine identity ([`lds_engine::Engine::fingerprint`]).
    pub fingerprint: u64,
    /// The requested task.
    pub task: Task,
    /// The per-request seed.
    pub seed: u64,
}

/// Index of the null node in the intrusive LRU list.
const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map with O(1) `get`/`insert`.
///
/// Implemented as a slab of nodes threaded into an intrusive doubly
/// linked recency list (head = most recent) plus a `HashMap` from key
/// to slab index. Once the slab reaches capacity, every insert evicts
/// the tail and reuses its slot, so the cache never reallocates at
/// steady state. Capacity `0` is the disabled cache: `get` always
/// misses and `insert` is a no-op.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            nodes: Vec::with_capacity(capacity.min(4096)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    /// Links node `i` at the head (most recent).
    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h].prev = i,
        }
        self.head = i;
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.nodes[i].value)
    }

    /// Inserts (or refreshes) `key → value`, evicting the least
    /// recently used entry if at capacity. Returns the evicted
    /// `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        if self.map.len() < self.capacity {
            let i = self.nodes.len();
            self.nodes.push(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.link_front(i);
            return None;
        }
        // at capacity: evict the tail and reuse its slot
        let i = self.tail;
        self.unlink(i);
        let evicted_key = std::mem::replace(&mut self.nodes[i].key, key.clone());
        let evicted_value = std::mem::replace(&mut self.nodes[i].value, value);
        self.map.remove(&evicted_key);
        self.map.insert(key, i);
        self.link_front(i);
        Some((evicted_key, evicted_value))
    }
}

impl<K, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert!(c.is_empty());
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now most recent
        let evicted = c.insert(3, 30); // so 2 is the victim
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_existing_updates_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), None);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_order_is_lru_over_a_long_run() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..100 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
        for i in 0..92 {
            assert_eq!(c.get(&i), None, "key {i} should have been evicted");
        }
        for i in 92..100 {
            assert_eq!(c.get(&i), Some(&i));
        }
    }

    #[test]
    fn capacity_zero_disables() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_one_always_holds_the_latest() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn idempotency_key_distinguishes_components() {
        use lds_engine::Task;
        let k = |fp: u64, seed: u64| IdempotencyKey {
            fingerprint: fp,
            task: Task::SampleExact,
            seed,
        };
        assert_eq!(k(1, 2), k(1, 2));
        assert_ne!(k(1, 2), k(1, 3));
        assert_ne!(k(1, 2), k(2, 2));
        let count = IdempotencyKey {
            fingerprint: 1,
            task: Task::Count,
            seed: 2,
        };
        assert_ne!(k(1, 2), count);
    }
}
