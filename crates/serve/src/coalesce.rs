//! Request coalescing: turn a drained batch of requests into the
//! minimal set of engine calls.
//!
//! The JVV-style reductions are embarrassingly parallel across seeds,
//! so requests that agree on everything *except* the seed are exactly
//! the shape of one `Engine::run_batch` call. Grouping them amortizes
//! per-dispatch overhead (one pool fan-out, one ledger pass per group
//! instead of per request) and hands the engine a seed vector it can
//! spread across its persistent workers. Within a group, requests that
//! also agree on the seed are *duplicates* — the paper's determinism
//! contract makes their answers bit-identical, so they merge into one
//! execution with many waiters.
//!
//! This module is the pure part: batching windows and thread plumbing
//! live in [`crate::server`]; the grouping itself is a deterministic
//! function of arrival order, unit-tested in isolation.

use lds_engine::Task;

/// One coalesced engine call: a task plus its deduplicated seeds, each
/// carrying the waiters to answer.
pub(crate) struct Group<T> {
    /// The task every entry in this group requests.
    pub task: Task,
    /// `(seed, waiters)` in first-arrival order; seeds are unique.
    pub entries: Vec<(u64, Vec<T>)>,
}

/// Groups a drained batch by task and deduplicates identical
/// `(task, seed)` requests, preserving first-arrival order at both
/// levels (so dispatch order — and therefore server behavior — is a
/// deterministic function of arrival order, not of hash iteration).
/// Takes any iterator so a worker session can `drain(..)` its reusable
/// batch buffer instead of allocating a fresh `Vec` per window.
pub(crate) fn coalesce<T>(
    batch: impl IntoIterator<Item = T>,
    key: impl Fn(&T) -> (Task, u64),
) -> Vec<Group<T>> {
    let mut groups: Vec<Group<T>> = Vec::new();
    for item in batch {
        let (task, seed) = key(&item);
        let group = match groups.iter_mut().find(|g| g.task == task) {
            Some(g) => g,
            None => {
                groups.push(Group {
                    task,
                    entries: Vec::new(),
                });
                groups.last_mut().expect("just pushed")
            }
        };
        match group.entries.iter_mut().find(|(s, _)| *s == seed) {
            Some((_, waiters)) => waiters.push(item),
            None => group.entries.push((seed, vec![item])),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(group: &Group<(Task, u64, u32)>) -> Vec<(u64, Vec<u32>)> {
        group
            .entries
            .iter()
            .map(|(s, ws)| (*s, ws.iter().map(|w| w.2).collect()))
            .collect()
    }

    #[test]
    fn groups_by_task_and_dedups_by_seed_in_arrival_order() {
        let reqs = vec![
            (Task::SampleExact, 7, 0u32),
            (Task::Count, 7, 1),
            (Task::SampleExact, 3, 2),
            (Task::SampleExact, 7, 3), // duplicate of request 0
            (Task::Count, 9, 4),
        ];
        let groups = coalesce(reqs, |&(t, s, _)| (t, s));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].task, Task::SampleExact);
        assert_eq!(ids(&groups[0]), vec![(7, vec![0, 3]), (3, vec![2])]);
        assert_eq!(groups[1].task, Task::Count);
        assert_eq!(ids(&groups[1]), vec![(7, vec![1]), (9, vec![4])]);
    }

    #[test]
    fn infer_tasks_group_by_full_payload() {
        use lds_gibbs::Value;
        use lds_graph::NodeId;
        let at = |v: u32| Task::Infer {
            vertex: NodeId(v),
            value: Value(1),
        };
        let reqs = vec![(at(0), 1, 0u32), (at(1), 1, 1), (at(0), 1, 2)];
        let groups = coalesce(reqs, |&(t, s, _)| (t, s));
        // different vertices are different tasks: no false sharing
        assert_eq!(groups.len(), 2);
        assert_eq!(ids(&groups[0]), vec![(1, vec![0, 2])]);
        assert_eq!(ids(&groups[1]), vec![(1, vec![1])]);
    }

    #[test]
    fn empty_batch_yields_no_groups() {
        let groups = coalesce(Vec::<(Task, u64, u32)>::new(), |&(t, s, _)| (t, s));
        assert!(groups.is_empty());
    }
}
