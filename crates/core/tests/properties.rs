//! Property-based tests for the paper's reductions and samplers.

use lds_core::counting;
use lds_core::jvv::LocalJvv;
use lds_core::sampler::SequentialSampler;
use lds_gibbs::models::hardcore;
use lds_gibbs::models::two_spin::TwoSpinParams;
use lds_gibbs::{distribution, Config, PartialConfig, Value};
use lds_graph::{generators, ordering, Graph, NodeId};
use lds_localnet::slocal::SlocalAlgorithm;
use lds_localnet::{Instance, Network};
use lds_oracle::{BoostedOracle, DecayRate, TwoSpinSawOracle};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(idx: usize, seed: u64) -> Graph {
    match idx % 4 {
        0 => generators::cycle(8),
        1 => generators::path(8),
        2 => generators::grid(2, 4),
        _ => generators::random_regular(8, 3, &mut StdRng::seed_from_u64(seed)),
    }
}

fn saw(lambda: f64) -> TwoSpinSawOracle {
    TwoSpinSawOracle::new(TwoSpinParams::hardcore(lambda), DecayRate::new(0.55, 2.0))
}

proptest! {
    /// The sequential sampler always outputs feasible configurations,
    /// for every graph family, ordering, fugacity and seed.
    #[test]
    fn sampler_outputs_are_always_feasible(
        gidx in 0usize..4,
        lambda in 0.2f64..2.5,
        seed in any::<u64>(),
        order_kind in 0usize..3,
    ) {
        let g = workload(gidx, seed);
        let model = hardcore::model(&g, lambda);
        let oracle = saw(lambda);
        let net = Network::new(Instance::unconditioned(model.clone()), seed);
        let order = match order_kind {
            0 => ordering::identity(&g),
            1 => ordering::reverse(&g),
            _ => ordering::bfs_from(&g, NodeId(0)),
        };
        let run = SequentialSampler::new(oracle.clone(), 0.1).run_sequential(&net, &order);
        let config = Config::from_values(run.outputs);
        prop_assert!(model.weight(&config) > 0.0);
    }

    /// JVV invariants hold on every workload: feasible output, acceptance
    /// in (0, 1], no repair failures, and pins always honored.
    #[test]
    fn jvv_invariants(
        gidx in 0usize..4,
        lambda in 0.3f64..2.0,
        seed in any::<u64>(),
        pin in 0usize..8,
    ) {
        let g = workload(gidx, seed);
        let n = g.node_count();
        let model = hardcore::model(&g, lambda);
        let mut tau = PartialConfig::empty(n);
        let pv = NodeId::from_index(pin % n);
        tau.pin(pv, Value(1));
        let inst = Instance::new(model.clone(), tau).unwrap();
        let oracle = BoostedOracle::new(saw(lambda));
        let jvv = LocalJvv::new(&oracle, 0.05);
        let net = Network::new(inst, seed);
        let out = jvv.run_detailed(&net, &ordering::identity(&g));
        let y = Config::from_values(out.run.outputs.clone());
        prop_assert!(model.weight(&y) > 0.0);
        prop_assert_eq!(y.get(pv), Value(1));
        prop_assert!(out.stats.acceptance_product > 0.0);
        prop_assert!(out.stats.acceptance_product <= 1.0 + 1e-12);
        prop_assert_eq!(out.stats.repair_failures, 0);
    }

    /// Chain-rule counting matches exact enumeration within its declared
    /// error bound, across workloads and fugacities.
    #[test]
    fn counting_is_within_declared_error(
        gidx in 0usize..4,
        lambda in 0.3f64..2.0,
        seed in 0u64..50,
    ) {
        let g = workload(gidx, seed);
        let n = g.node_count();
        let model = hardcore::model(&g, lambda);
        let exact = distribution::partition_function(&model, &PartialConfig::empty(n));
        let est = counting::count_independent_sets(&g, lambda, 1e-4).unwrap();
        prop_assert!(
            (est.log_z - exact.ln()).abs() <= est.log_error_bound + 1e-6,
            "ln Ẑ {} vs ln Z {} (bound {})",
            est.log_z, exact.ln(), est.log_error_bound
        );
    }

    /// Thresholds and rates are consistent: rate < 1 iff λ < λ_c.
    #[test]
    fn rate_threshold_consistency(delta in 3usize..8, ratio in 0.1f64..3.0) {
        let lc = lds_core::complexity::hardcore_uniqueness_threshold(delta);
        let rate = lds_core::complexity::hardcore_decay_rate(ratio * lc, delta);
        if ratio < 0.98 {
            prop_assert!(rate < 1.0, "Δ={delta} ratio={ratio}: rate {rate}");
        }
        if ratio > 1.02 {
            prop_assert!(rate > 1.0, "Δ={delta} ratio={ratio}: rate {rate}");
        }
    }

    /// Glauber dynamics preserves feasibility for arbitrarily many steps.
    #[test]
    fn glauber_feasibility(gidx in 0usize..4, seed in any::<u64>(), steps in 0usize..300) {
        let g = workload(gidx, seed);
        let model = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(g.node_count());
        let mut rng = StdRng::seed_from_u64(seed);
        let c = lds_core::baselines::glauber_dynamics(&model, &tau, steps, &mut rng).unwrap();
        prop_assert!(model.weight(&c) > 0.0);
    }
}
