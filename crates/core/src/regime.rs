//! Structured uniqueness-regime validation for the Corollary 5.3
//! applications.
//!
//! Every application sampler is only proven correct (with
//! polylogarithmic round complexity) inside a parameter regime — below
//! the hardcore uniqueness threshold `λ_c(Δ)`, inside two-spin
//! uniqueness, past the coloring constant `α*`, and so on. This module
//! centralizes those checks as the single source the `lds-engine`
//! facade validates against, and every rejection reports *which*
//! threshold was violated together with both the computed and the
//! critical value.

use lds_gibbs::models::ising::IsingParams;
use lds_gibbs::models::two_spin::TwoSpinParams;
use lds_graph::{Graph, Hypergraph};

use crate::complexity;

/// Error: the requested parameters are outside the regime for which the
/// paper proves polylogarithmic sampling.
///
/// Carries the violated threshold in structured form: `computed` is the
/// offending quantity as derived from the request, `critical` the value
/// it must stay on the tractable side of, and `condition` names the
/// comparison in words.
#[derive(Clone, Debug, PartialEq)]
pub struct OutOfRegime {
    /// The decay rate that was computed (`≥ 1` means no contraction).
    pub rate: f64,
    /// Human-readable description of the violated condition.
    pub condition: String,
    /// The computed value of the checked quantity.
    pub computed: f64,
    /// The critical threshold the computed value crossed.
    pub critical: f64,
}

impl std::fmt::Display for OutOfRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parameters outside the uniqueness regime ({}; computed {:.4} vs critical {:.4}; \
             rate {:.3})",
            self.condition, self.computed, self.critical, self.rate
        )
    }
}

impl std::error::Error for OutOfRegime {}

/// A passed regime check: the decay rate to plan radii with, plus the
/// threshold comparison that admitted the parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeCheck {
    /// The SSM decay rate used for radius planning (`< 1`).
    pub rate: f64,
    /// The threshold comparison that was checked, in words.
    pub condition: String,
    /// The computed value of the checked quantity.
    pub computed: f64,
    /// The critical threshold it stayed below (or above, for colorings).
    pub critical: f64,
}

/// Hardcore model: requires `λ < λ_c(Δ) = (Δ−1)^{Δ−1}/(Δ−2)^Δ`
/// (Corollary 5.3, second bullet).
///
/// # Errors
///
/// Returns [`OutOfRegime`] if `λ ≥ λ_c(Δ)`.
pub fn hardcore(g: &Graph, lambda: f64) -> Result<RegimeCheck, OutOfRegime> {
    let delta = g.max_degree();
    let lc = complexity::hardcore_uniqueness_threshold(delta);
    let rate = complexity::hardcore_decay_rate(lambda, delta);
    if lambda >= lc {
        return Err(OutOfRegime {
            rate,
            condition: format!("need λ < λ_c({delta}) = {lc:.4}, got λ = {lambda}"),
            computed: lambda,
            critical: lc,
        });
    }
    Ok(RegimeCheck {
        rate,
        condition: format!("λ = {lambda} < λ_c({delta}) = {lc:.4}"),
        computed: lambda,
        critical: lc,
    })
}

/// Matchings (monomer–dimer): in regime for **every** `λ` and `Δ`
/// (Corollary 5.3, first bullet) — the check is infallible and only
/// computes the decay rate.
pub fn matching(g: &Graph, lambda: f64) -> RegimeCheck {
    let delta = g.max_degree();
    let rate = complexity::matching_decay_rate(lambda, delta);
    RegimeCheck {
        rate,
        condition: format!("matchings mix at every λ (Δ = {delta}, λ = {lambda})"),
        computed: rate,
        critical: 1.0,
    }
}

/// General antiferromagnetic two-spin system with a caller-supplied
/// decay rate: requires `βγ < 1` and `rate < 1` (Corollary 5.3, fourth
/// bullet).
///
/// # Errors
///
/// Returns [`OutOfRegime`] if the parameters are not antiferromagnetic
/// or the rate does not contract.
pub fn two_spin(params: TwoSpinParams, rate: f64) -> Result<RegimeCheck, OutOfRegime> {
    let bg = params.beta * params.gamma;
    if !params.is_antiferromagnetic() {
        return Err(OutOfRegime {
            rate,
            condition: format!("need βγ < 1 (antiferromagnetic), got βγ = {bg:.4}"),
            computed: bg,
            critical: 1.0,
        });
    }
    if rate >= 1.0 {
        return Err(OutOfRegime {
            rate,
            condition: format!("need decay rate < 1 (uniqueness), got rate = {rate:.4}"),
            computed: rate,
            critical: 1.0,
        });
    }
    Ok(RegimeCheck {
        rate,
        condition: format!("βγ = {bg:.4} < 1 and rate = {rate:.4} < 1"),
        computed: rate,
        critical: 1.0,
    })
}

/// Antiferromagnetic Ising model: computes the exact tree contraction
/// ratio and requires it below 1 (uniqueness: `e^{2|β|} < Δ/(Δ−2)`).
///
/// # Errors
///
/// Returns [`OutOfRegime`] outside uniqueness or for ferromagnetic `β`.
pub fn ising(g: &Graph, params: IsingParams) -> Result<RegimeCheck, OutOfRegime> {
    let delta = g.max_degree().max(2);
    let rate = complexity::ising_decay_rate(params.beta, delta);
    if params.beta > 0.0 {
        return Err(OutOfRegime {
            rate,
            condition: format!("need β ≤ 0 (antiferromagnetic), got β = {}", params.beta),
            computed: params.beta,
            critical: 0.0,
        });
    }
    if rate >= 1.0 {
        return Err(OutOfRegime {
            rate,
            condition: format!(
                "need contraction (Δ−1)·|1−e^{{2β}}|/(1+e^{{2β}}) < 1, got {rate:.4} (Δ = {delta})"
            ),
            computed: rate,
            critical: 1.0,
        });
    }
    Ok(RegimeCheck {
        rate,
        condition: format!("Ising contraction {rate:.4} < 1 (Δ = {delta})"),
        computed: rate,
        critical: 1.0,
    })
}

/// Proper `q`-colorings: requires a triangle-free graph and
/// `q > α*·Δ` with `α* ≈ 1.763` (Corollary 5.3, third bullet).
///
/// # Errors
///
/// Returns [`OutOfRegime`] if the graph has a triangle or the palette is
/// too small.
pub fn coloring(g: &Graph, q: usize) -> Result<RegimeCheck, OutOfRegime> {
    let delta = g.max_degree();
    let critical = complexity::alpha_star() * delta as f64;
    if !g.is_triangle_free() {
        // count the triangles (rejection path only) so `computed` is a
        // real quantity: triangles found vs the zero the regime allows
        let triangles = count_triangles(g);
        return Err(OutOfRegime {
            rate: 1.0,
            condition: format!("need a triangle-free graph, got {triangles} triangle(s)"),
            computed: triangles as f64,
            critical: 0.0,
        });
    }
    let rate = complexity::coloring_decay_rate(q, delta.max(1));
    if rate >= 1.0 {
        return Err(OutOfRegime {
            rate,
            condition: format!("need q > α*·Δ ≈ {critical:.3}, got q = {q}"),
            computed: q as f64,
            critical,
        });
    }
    Ok(RegimeCheck {
        rate,
        condition: format!("q = {q} > α*·Δ ≈ {critical:.3}"),
        computed: q as f64,
        critical,
    })
}

/// Ceiling on the SSM decay rate up to which local Glauber dynamics is
/// certified to mix in `O(log n)` sweeps. Below the ceiling, one-step
/// contraction gives `d_TV ≤ n·rateᵀ`, so `T = ln(n/δ)/(1−rate)` sweeps
/// suffice; as `rate → 1` the certified budget diverges, and past the
/// ceiling we refuse to certify at all (the builder's per-model regime
/// checks only require `rate < 1`, so a model can be in the sampling
/// regime yet outside the Glauber certificate — e.g. a caller-supplied
/// two-spin rate of `0.995`).
pub const GLAUBER_RATE_CEILING: f64 = 0.99;

/// A certified local-Glauber execution plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlauberPlan {
    /// Sweeps sufficient for `d_TV ≤ δ` under one-step contraction.
    pub sweeps: usize,
    /// Distance of the decay rate from [`GLAUBER_RATE_CEILING`].
    pub margin: f64,
}

/// Certifies local Glauber dynamics for an `n`-node instance at decay
/// rate `rate` and total-variation budget `δ`: the sweep budget is
/// `⌈ln(n/δ)/(1−rate)⌉` (one-step contraction `d_TV ≤ n·e^{−(1−rate)·T}`
/// from a worst-case start), clamped to at least one sweep.
///
/// # Errors
///
/// Returns [`OutOfRegime`] when `rate ≥` [`GLAUBER_RATE_CEILING`] — the
/// regime where the contraction argument certifies nothing useful.
pub fn glauber_plan(rate: f64, n: usize, delta: f64) -> Result<GlauberPlan, OutOfRegime> {
    if rate.is_nan() || rate >= GLAUBER_RATE_CEILING {
        return Err(OutOfRegime {
            rate,
            condition: format!(
                "local Glauber dynamics needs decay rate < {GLAUBER_RATE_CEILING}, got {rate:.4}"
            ),
            computed: rate,
            critical: GLAUBER_RATE_CEILING,
        });
    }
    let rate = rate.max(0.0);
    let n = n.max(2) as f64;
    let delta = delta.clamp(f64::MIN_POSITIVE, 0.5);
    let sweeps = ((n / delta).ln() / (1.0 - rate)).ceil().max(1.0) as usize;
    Ok(GlauberPlan {
        sweeps,
        margin: GLAUBER_RATE_CEILING - rate,
    })
}

/// The `Backend::Auto` decision for approximate-sampling tasks.
#[derive(Clone, Debug, PartialEq)]
pub enum AutoBackend {
    /// Serve with local Glauber dynamics under the given certified plan.
    Glauber(GlauberPlan),
    /// Serve with the oracle-driven chain-rule sampler, and why.
    Exact {
        /// Human-readable reason Glauber was not selected.
        reason: String,
    },
}

/// Picks the approximate-sampling backend from `(ε, δ, rate)`: Glauber
/// when its mixing certificate exists ([`glauber_plan`]) **and** the
/// certified sweep budget undercuts the chain-rule sampler's per-node
/// cost proxy — each of the `n` chain-rule nodes pays an oracle ball of
/// radius `t = ln(1/η)/ln(1/rate)` at per-node error
/// `η = min(ε, δ)/n`, while Glauber pays `sweeps` table lookups per
/// node. With the quadratic ball proxy `t²`, Glauber wins everywhere
/// the certificate holds except in pathological corners, so in practice
/// `Auto` reads as *Glauber when certified, chain-rule otherwise*.
pub fn auto_sampling_backend(rate: f64, n: usize, epsilon: f64, delta: f64) -> AutoBackend {
    let plan = match glauber_plan(rate, n, delta) {
        Ok(plan) => plan,
        Err(err) => {
            return AutoBackend::Exact {
                reason: err.to_string(),
            }
        }
    };
    let per_node = (epsilon.min(delta) / n.max(1) as f64).clamp(f64::MIN_POSITIVE, 0.5);
    let radius = ((1.0 / per_node).ln() / (1.0 / rate.clamp(0.01, 1.0)).ln())
        .ceil()
        .max(1.0);
    let chain_cost = (radius * radius).max(8.0);
    if plan.sweeps as f64 <= chain_cost {
        AutoBackend::Glauber(plan)
    } else {
        AutoBackend::Exact {
            reason: format!(
                "certified Glauber budget ({} sweeps) exceeds the chain-rule cost proxy \
                 ({chain_cost:.0})",
                plan.sweeps
            ),
        }
    }
}

/// Counts triangles by checking, for each node, adjacent pairs among its
/// higher-id neighbors. Only used on the rejection path.
fn count_triangles(g: &Graph) -> usize {
    let mut count = 0usize;
    for u in g.nodes() {
        let higher: Vec<_> = g.neighbors(u).copied().filter(|&v| v > u).collect();
        for (i, &v) in higher.iter().enumerate() {
            for &w in &higher[i + 1..] {
                if g.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// The cheap half of the hypergraph matching check: `λ < λ_c(r, Δ)`
/// needs only the rank and maximum degree, so callers can reject
/// out-of-regime parameters **before** paying for the intersection
/// graph.
///
/// # Errors
///
/// Returns [`OutOfRegime`] if `λ ≥ λ_c(r, Δ)`.
pub fn hypergraph_matching_threshold(h: &Hypergraph, lambda: f64) -> Result<f64, OutOfRegime> {
    let r = h.rank().max(2);
    let delta = h.max_degree();
    let lc = complexity::hypergraph_matching_threshold(r, delta.max(3));
    if lambda >= lc {
        return Err(OutOfRegime {
            rate: 1.0,
            condition: format!("need λ < λ_c({r}, {delta}) = {lc:.4}, got λ = {lambda}"),
            computed: lambda,
            critical: lc,
        });
    }
    Ok(lc)
}

/// Weighted hypergraph matchings: requires
/// `λ < λ_c(r, Δ) = (Δ−1)^{Δ−1}/((r−1)(Δ−2)^Δ)` (Corollary 5.3, fifth
/// bullet). On success the rate is the hardcore rate on the intersection
/// graph, whose maximum degree the caller supplies via `ig_delta` (use
/// [`hypergraph_matching_threshold`] first to reject without building
/// the intersection graph).
///
/// # Errors
///
/// Returns [`OutOfRegime`] if `λ ≥ λ_c(r, Δ)`.
pub fn hypergraph_matching(
    h: &Hypergraph,
    lambda: f64,
    ig_delta: usize,
) -> Result<RegimeCheck, OutOfRegime> {
    let r = h.rank().max(2);
    let delta = h.max_degree();
    let lc = hypergraph_matching_threshold(h, lambda)?;
    let rate = complexity::hardcore_decay_rate(lambda, ig_delta.max(2));
    Ok(RegimeCheck {
        rate: rate.min(0.95),
        condition: format!("λ = {lambda} < λ_c({r}, {delta}) = {lc:.4}"),
        computed: lambda,
        critical: lc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_graph::{generators, NodeId};

    #[test]
    fn hardcore_reports_computed_and_critical() {
        let t = generators::torus(4, 4); // Δ = 4, λ_c = 27/16
        let err = hardcore(&t, 2.0).unwrap_err();
        assert_eq!(err.computed, 2.0);
        assert!((err.critical - 27.0 / 16.0).abs() < 1e-12);
        assert!(err.rate > 1.0);
        let msg = err.to_string();
        assert!(msg.contains("uniqueness"), "{msg}");
        assert!(msg.contains("2.0000") && msg.contains("1.6875"), "{msg}");
    }

    #[test]
    fn matching_is_infallible() {
        let g = generators::complete(6);
        for lambda in [0.1, 1.0, 50.0] {
            let check = matching(&g, lambda);
            assert!(check.rate < 1.0, "λ = {lambda}: rate {}", check.rate);
        }
    }

    #[test]
    fn two_spin_rejects_ferromagnets_with_values() {
        let err = two_spin(TwoSpinParams::new(2.0, 3.0, 1.0), 0.5).unwrap_err();
        assert_eq!(err.computed, 6.0);
        assert_eq!(err.critical, 1.0);
        let err2 = two_spin(TwoSpinParams::hardcore(1.0), 1.2).unwrap_err();
        assert_eq!(err2.computed, 1.2);
    }

    #[test]
    fn ising_uniqueness_window() {
        let t = generators::torus(4, 4); // Δ = 4: unique iff e^{2|β|} < 2
        assert!(ising(&t, IsingParams::new(-0.3, 0.0)).is_ok());
        let err = ising(&t, IsingParams::new(-0.4, 0.0)).unwrap_err();
        assert!(err.computed > 1.0);
        assert!(
            ising(&t, IsingParams::new(0.2, 0.0)).is_err(),
            "ferromagnet"
        );
    }

    #[test]
    fn coloring_thresholds() {
        let g = generators::cycle(7);
        assert!(coloring(&g, 4).is_ok());
        let k3 = generators::complete(3);
        let err = coloring(&k3, 9).unwrap_err();
        assert!(err.condition.contains("triangle"));
        let t = generators::torus(4, 4); // triangle-free, Δ = 4, α*Δ ≈ 7.05
        let err = coloring(&t, 6).unwrap_err();
        assert_eq!(err.computed, 6.0);
        assert!((err.critical - complexity::alpha_star() * 4.0).abs() < 1e-12);
    }

    #[test]
    fn glauber_plan_certifies_below_the_ceiling() {
        let plan = glauber_plan(0.5, 10, 0.05).unwrap();
        assert!(plan.sweeps >= 1);
        assert!((plan.margin - (GLAUBER_RATE_CEILING - 0.5)).abs() < 1e-12);
        // monotone: tighter δ and larger n need more sweeps
        assert!(glauber_plan(0.5, 10, 0.001).unwrap().sweeps > plan.sweeps);
        assert!(glauber_plan(0.5, 10_000, 0.05).unwrap().sweeps > plan.sweeps);
        assert!(glauber_plan(0.9, 10, 0.05).unwrap().sweeps > plan.sweeps);
    }

    #[test]
    fn glauber_plan_rejects_past_the_ceiling() {
        for rate in [GLAUBER_RATE_CEILING, 0.995, 1.0, 1.5, f64::NAN] {
            let err = glauber_plan(rate, 10, 0.05).unwrap_err();
            assert_eq!(err.critical, GLAUBER_RATE_CEILING);
            assert!(err.condition.contains("Glauber"), "{}", err.condition);
        }
    }

    #[test]
    fn auto_backend_is_glauber_when_certified() {
        match auto_sampling_backend(0.5, 12, 0.01, 0.05) {
            AutoBackend::Glauber(plan) => assert!(plan.sweeps >= 1),
            other => panic!("expected Glauber, got {other:?}"),
        }
        match auto_sampling_backend(0.995, 12, 0.01, 0.05) {
            AutoBackend::Exact { reason } => {
                assert!(reason.contains("Glauber"), "{reason}")
            }
            other => panic!("expected Exact, got {other:?}"),
        }
    }

    #[test]
    fn hypergraph_matching_threshold_check() {
        let h = Hypergraph::new(
            6,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3), NodeId(4)],
                vec![NodeId(4), NodeId(5), NodeId(0)],
            ],
        );
        assert!(hypergraph_matching(&h, 0.3, 2).is_ok());
        let err = hypergraph_matching(&h, 100.0, 2).unwrap_err();
        assert_eq!(err.computed, 100.0);
        assert!(err.critical < 100.0);
    }
}
