//! Global counting from local inference — the chain-rule decomposition.
//!
//! The paper frames *inference* as the local counterpart of counting
//! because, for self-reducible problems, the global count decomposes via
//! the chain rule into marginal probabilities (introduction, citing
//! Jerrum's monograph): for any feasible `σ`,
//!
//! `Z^τ = w(σ) / μ^τ(σ) = w(σ) / ∏_i μ^{τ∧σ_{<i}}_{v_i}(σ(v_i))`.
//!
//! So a multiplicative-error inference oracle yields a multiplicative
//! approximation of the partition function: `n` factors, each within
//! `e^{±ε}`, give `|ln Ẑ − ln Z| ≤ n·ε`. In the LOCAL model the `n`
//! marginal computations run in parallel given the pinning chain — here
//! we expose the sequential estimator, which is what a downstream
//! counting user calls.

use lds_gibbs::{GibbsModel, PartialConfig, Value};
use lds_graph::NodeId;
use lds_oracle::MultiplicativeInference;

/// Result of a chain-rule partition function estimation.
#[derive(Clone, Debug)]
pub struct CountEstimate {
    /// The estimate of `ln Z^τ`.
    pub log_z: f64,
    /// Guaranteed bound on `|ln Ẑ − ln Z|` given the oracle error: `n·ε`.
    pub log_error_bound: f64,
    /// The feasible anchor configuration used by the chain rule.
    pub anchor: lds_gibbs::Config,
}

impl CountEstimate {
    /// The estimate of `Z^τ` itself (may overflow to `inf` for large
    /// instances; prefer [`CountEstimate::log_z`]).
    pub fn z(&self) -> f64 {
        self.log_z.exp()
    }
}

/// Estimates `ln Z^τ` using a multiplicative inference oracle with error
/// `ε` per marginal.
///
/// Walks the free nodes in id order, greedily building a feasible anchor
/// `σ` (taking the oracle's argmax value at each step, which has positive
/// true probability by the multiplicative guarantee), accumulating
/// `−Σ ln μ̂(σ(v_i))`, and finally adding `ln w(σ)`.
///
/// Returns `None` if the anchor construction fails (cannot happen for
/// locally admissible models with an honest oracle).
pub fn log_partition_function<O: MultiplicativeInference>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    oracle: &O,
    eps: f64,
) -> Option<CountEstimate> {
    let n = model.node_count();

    let mut sigma = pinning.clone();
    let mut log_z = 0.0f64;
    let mut free_steps = 0usize;
    for v in (0..n).map(NodeId::from_index) {
        if sigma.is_pinned(v) {
            continue;
        }
        let mu = oracle.marginal_mul(model, &sigma, v, eps);
        let (argmax, p) = mu
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite marginal"))?;
        if p <= 0.0 {
            return None;
        }
        log_z -= p.ln();
        sigma.pin(v, Value::from_index(argmax));
        free_steps += 1;
    }
    let anchor = sigma.to_config();
    let w = model.weight(&anchor);
    if w <= 0.0 {
        return None;
    }
    log_z += w.ln();
    Some(CountEstimate {
        log_z,
        log_error_bound: free_steps as f64 * eps,
        anchor,
    })
}

/// Approximately counts independent sets of `g` weighted by fugacity `λ`
/// (`λ = 1` counts plain independent sets). Convenience wrapper wiring
/// the hardcore model to a boosted SAW oracle.
pub fn count_independent_sets(
    g: &lds_graph::Graph,
    lambda: f64,
    eps: f64,
) -> Option<CountEstimate> {
    use lds_gibbs::models::{hardcore, two_spin::TwoSpinParams};
    use lds_oracle::{BoostedOracle, DecayRate, TwoSpinSawOracle};
    let model = hardcore::model(g, lambda);
    let rate = crate::complexity::hardcore_decay_rate(lambda, g.max_degree().max(2));
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(lambda),
        DecayRate::new(rate.clamp(0.05, 0.95), 2.0),
    ));
    log_partition_function(&model, &PartialConfig::empty(g.node_count()), &oracle, eps)
}

/// Approximately counts matchings of `g` weighted by edge weight `λ`
/// (`λ = 1` counts plain matchings), via the line-graph duality.
pub fn count_matchings(g: &lds_graph::Graph, lambda: f64, eps: f64) -> Option<CountEstimate> {
    use lds_gibbs::models::{matching::MatchingInstance, two_spin::TwoSpinParams};
    use lds_oracle::{BoostedOracle, DecayRate, TwoSpinSawOracle};
    let inst = MatchingInstance::new(g, lambda);
    let rate = crate::complexity::matching_decay_rate(lambda, g.max_degree().max(1));
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(lambda),
        DecayRate::new(rate.clamp(0.05, 0.95), 2.0),
    ));
    log_partition_function(
        inst.model(),
        &PartialConfig::empty(inst.model().node_count()),
        &oracle,
        eps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_gibbs::{distribution, models::two_spin::TwoSpinParams};
    use lds_graph::generators;
    use lds_oracle::{BoostedOracle, DecayRate, EnumerationOracle, TwoSpinSawOracle};

    /// Independent-set counts of paths are Fibonacci numbers:
    /// i(P_n) = F(n+2) with F(1) = F(2) = 1.
    #[test]
    fn path_independent_sets_are_fibonacci() {
        let fib = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];
        for n in 2..=10usize {
            let g = generators::path(n);
            let est = count_independent_sets(&g, 1.0, 1e-4).unwrap();
            let expect = fib[n + 1] as f64; // F(n+2), 0-indexed offset
            assert!(
                (est.log_z - expect.ln()).abs() <= est.log_error_bound + 1e-6,
                "P{n}: ln Ẑ = {} vs ln {} (bound {})",
                est.log_z,
                expect,
                est.log_error_bound
            );
        }
    }

    /// Independent-set counts of cycles are Lucas numbers:
    /// i(C_n) = L(n) with L(1)=1, L(2)=3.
    #[test]
    fn cycle_independent_sets_are_lucas() {
        let lucas = [2u64, 1, 3, 4, 7, 11, 18, 29, 47, 76, 123, 199];
        for (n, &expect) in lucas.iter().enumerate().take(11).skip(3) {
            let g = generators::cycle(n);
            let est = count_independent_sets(&g, 1.0, 1e-4).unwrap();
            let expect = expect as f64;
            assert!(
                (est.log_z - expect.ln()).abs() <= est.log_error_bound + 1e-6,
                "C{n}: ln Ẑ = {} vs ln {}",
                est.log_z,
                expect
            );
        }
    }

    #[test]
    fn weighted_counts_match_enumeration() {
        let g = generators::grid(2, 3);
        for lambda in [0.5f64, 1.5] {
            let model = hardcore::model(&g, lambda);
            let exact = distribution::partition_function(&model, &PartialConfig::empty(6));
            let est = count_independent_sets(&g, lambda, 1e-5).unwrap();
            assert!(
                (est.log_z - exact.ln()).abs() <= est.log_error_bound + 1e-6,
                "λ={lambda}: {} vs {}",
                est.log_z,
                exact.ln()
            );
        }
    }

    #[test]
    fn matching_counts_match_enumeration() {
        let g = generators::cycle(6);
        let inst = lds_gibbs::models::matching::MatchingInstance::new(&g, 1.0);
        let exact = distribution::partition_function(
            inst.model(),
            &PartialConfig::empty(inst.model().node_count()),
        );
        let est = count_matchings(&g, 1.0, 1e-5).unwrap();
        assert!(
            (est.log_z - exact.ln()).abs() <= est.log_error_bound + 1e-6,
            "{} vs {}",
            est.log_z,
            exact.ln()
        );
    }

    #[test]
    fn coloring_counts_via_generic_estimator() {
        // chromatic polynomial of C5 at q=3: (q-1)^5 + (q-1)·(-1)^5 = 30
        let g = generators::cycle(5);
        let model = coloring::model(&g, 3);
        let oracle = BoostedOracle::new(EnumerationOracle::new(DecayRate::new(0.4, 2.0)));
        let est = log_partition_function(&model, &PartialConfig::empty(5), &oracle, 1e-5).unwrap();
        assert!(
            (est.log_z - 30.0f64.ln()).abs() <= est.log_error_bound + 1e-6,
            "ln Ẑ = {} vs ln 30",
            est.log_z
        );
    }

    #[test]
    fn conditional_counts_follow_pinning() {
        // pin node 0 occupied on C5: remaining IS count = #IS containing v0
        let g = generators::cycle(5);
        let model = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(5);
        tau.pin(lds_graph::NodeId(0), Value(1));
        let exact = distribution::partition_function(&model, &tau);
        let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(1.0),
            DecayRate::new(0.5, 2.0),
        ));
        let est = log_partition_function(&model, &tau, &oracle, 1e-5).unwrap();
        assert!(
            (est.log_z - exact.ln()).abs() <= est.log_error_bound + 1e-6,
            "{} vs {}",
            est.log_z,
            exact.ln()
        );
        // anchor honors the pinning
        assert_eq!(est.anchor.get(lds_graph::NodeId(0)), Value(1));
    }

    #[test]
    fn error_bound_scales_with_eps_and_size() {
        let g = generators::cycle(8);
        let a = count_independent_sets(&g, 1.0, 1e-3).unwrap();
        let b = count_independent_sets(&g, 1.0, 1e-5).unwrap();
        assert!(b.log_error_bound < a.log_error_bound);
        assert_eq!(a.log_error_bound, 8.0 * 1e-3);
    }
}
