//! Global counting from local inference — the chain-rule decomposition.
//!
//! The paper frames *inference* as the local counterpart of counting
//! because, for self-reducible problems, the global count decomposes via
//! the chain rule into marginal probabilities (introduction, citing
//! Jerrum's monograph): for any feasible `σ`,
//!
//! `Z^τ = w(σ) / μ^τ(σ) = w(σ) / ∏_i μ^{τ∧σ_{<i}}_{v_i}(σ(v_i))`.
//!
//! So a multiplicative-error inference oracle yields a multiplicative
//! approximation of the partition function: `n` factors, each within
//! `e^{±ε}`, give `|ln Ẑ − ln Z| ≤ n·ε`. In the LOCAL model the `n`
//! marginal computations run in parallel given the pinning chain, and
//! the estimator here mirrors that structure in two passes:
//!
//! 1. **Anchor pass** (sequential, cheap): walk the free nodes in id
//!    order, greedily pinning each to the argmax of a *coarse* marginal
//!    estimate at precision `max(ε, ANCHOR_EPS_FLOOR)`. The identity
//!    above holds for **any** feasible `σ` — the anchor's quality never
//!    enters the error bound — and the coarse argmax is feasible because
//!    its estimate is `≥ 1/q > 0`, which by the multiplicative guarantee
//!    implies positive true probability.
//! 2. **Marginal pass** (parallel): with the pinning chain frozen, the
//!    `n` full-precision marginals `μ^{τ∧σ_{<i}}_{v_i}(σ(v_i))` are
//!    independent trials, fanned across the `lds_runtime::ThreadPool`
//!    via [`lds_oracle::chain_marginals_mul`]. Results are bit-identical
//!    at any pool width.
//!
//! For sampling-backed oracles, [`log_partition_function_annealed`]
//! replaces each level's oracle call with an **anytime** Monte Carlo
//! estimate over independent sampler executions: each level streams
//! samples in chunks and stops at the first checkpoint whose Hoeffding
//! interval certifies relative log error `≤ ε`, reporting the achieved
//! per-level bound instead of spending a fixed worst-case budget.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lds_gibbs::{GibbsModel, PartialConfig, Value};
use lds_graph::NodeId;
use lds_localnet::{scheduler, Instance, Network};
use lds_oracle::{chain_marginals_mul, InferenceOracle, MultiplicativeInference};
use lds_runtime::{splitmix64, ThreadPool};

use crate::sampler::SequentialSampler;

/// Precision floor for the anchor pass. The anchor only needs to be
/// *feasible* — any coarse argmax works, and the chain-rule error bound
/// is independent of the anchor choice — so anchor marginals are never
/// computed sharper than this even when the requested `ε` is tiny.
pub const ANCHOR_EPS_FLOOR: f64 = 0.25;

/// Why a chain-rule count could not be produced.
///
/// Cannot happen for locally admissible models with an honest oracle;
/// surfaced so serving clients see *which* invariant a misbehaving
/// oracle or infeasible instance broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountError {
    /// The oracle returned an empty marginal vector at `vertex`.
    EmptyMarginal {
        /// The chain vertex whose marginal was empty.
        vertex: NodeId,
    },
    /// The marginal of the anchor value at `vertex` was `≤ 0` (or not
    /// finite), so its log cannot enter the chain-rule product.
    NonPositiveMarginal {
        /// The chain vertex whose anchor-value marginal was non-positive.
        vertex: NodeId,
    },
    /// No anchor configuration with positive weight could be built.
    InfeasibleAnchor,
}

impl std::fmt::Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountError::EmptyMarginal { vertex } => {
                write!(
                    f,
                    "oracle returned an empty marginal vector at node {vertex}"
                )
            }
            CountError::NonPositiveMarginal { vertex } => {
                write!(
                    f,
                    "non-positive marginal for the anchor value at node {vertex}"
                )
            }
            CountError::InfeasibleAnchor => {
                write!(f, "no feasible anchor configuration (non-positive weight)")
            }
        }
    }
}

impl std::error::Error for CountError {}

/// Result of a chain-rule partition function estimation.
#[derive(Clone, Debug)]
pub struct CountEstimate {
    /// The estimate of `ln Z^τ`.
    pub log_z: f64,
    /// Guaranteed bound on `|ln Ẑ − ln Z|` given the oracle error: `n·ε`.
    pub log_error_bound: f64,
    /// The feasible anchor configuration used by the chain rule.
    pub anchor: lds_gibbs::Config,
}

impl CountEstimate {
    /// The estimate of `Z^τ` itself (may overflow to `inf` for large
    /// instances; prefer [`CountEstimate::log_z`]).
    pub fn z(&self) -> f64 {
        self.log_z.exp()
    }
}

/// A count estimate together with per-phase telemetry.
#[derive(Clone, Debug)]
pub struct CountRun {
    /// The estimate.
    pub estimate: CountEstimate,
    /// Wall time of the sequential anchor-construction pass.
    pub anchor_time: Duration,
    /// Wall time of the (parallel) full-precision marginal pass.
    pub marginal_time: Duration,
    /// Number of chain levels (free vertices walked).
    pub levels: usize,
}

/// Estimates `ln Z^τ` using a multiplicative inference oracle with error
/// `ε` per marginal, returning per-phase telemetry.
///
/// The anchor pass runs sequentially at coarse precision
/// `max(ε, `[`ANCHOR_EPS_FLOOR`]`)`; the marginal pass evaluates the
/// frozen chain at full `ε` through
/// [`lds_oracle::chain_marginals_mul`], fanned
/// across `pool`. The result is bit-identical at every pool width (and
/// to [`log_partition_function_reference`]).
pub fn log_partition_function_detailed<O>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    oracle: &O,
    eps: f64,
    pool: &ThreadPool,
) -> Result<CountRun, CountError>
where
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
{
    let n = model.node_count();
    let anchor_eps = eps.max(ANCHOR_EPS_FLOOR);

    let anchor_start = Instant::now();
    let mut sigma = pinning.clone();
    let mut levels: Vec<(NodeId, Value)> = Vec::new();
    for v in (0..n).map(NodeId::from_index) {
        if sigma.is_pinned(v) {
            continue;
        }
        let mu = oracle.marginal_mul(model, &sigma, v, anchor_eps);
        let (argmax, p) = mu
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite marginal"))
            .ok_or(CountError::EmptyMarginal { vertex: v })?;
        if p <= 0.0 {
            return Err(CountError::NonPositiveMarginal { vertex: v });
        }
        let val = Value::from_index(argmax);
        sigma.pin(v, val);
        levels.push((v, val));
    }
    let anchor = sigma.to_config();
    let w = model.weight(&anchor);
    if w <= 0.0 {
        return Err(CountError::InfeasibleAnchor);
    }
    let anchor_time = anchor_start.elapsed();

    let marginal_start = Instant::now();
    let mus = chain_marginals_mul(oracle, model, pinning, &levels, eps, pool);
    let mut log_z = w.ln();
    for (mu, &(v, val)) in mus.iter().zip(&levels) {
        let p = mu
            .get(val.index())
            .copied()
            .ok_or(CountError::EmptyMarginal { vertex: v })?;
        if p <= 0.0 {
            return Err(CountError::NonPositiveMarginal { vertex: v });
        }
        log_z -= p.ln();
    }
    let marginal_time = marginal_start.elapsed();

    Ok(CountRun {
        estimate: CountEstimate {
            log_z,
            log_error_bound: levels.len() as f64 * eps,
            anchor,
        },
        anchor_time,
        marginal_time,
        levels: levels.len(),
    })
}

/// [`log_partition_function`] with the marginal pass fanned across
/// `pool`. Bit-identical at every pool width.
pub fn log_partition_function_with<O>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    oracle: &O,
    eps: f64,
    pool: &ThreadPool,
) -> Result<CountEstimate, CountError>
where
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
{
    log_partition_function_detailed(model, pinning, oracle, eps, pool).map(|run| run.estimate)
}

/// Estimates `ln Z^τ` using a multiplicative inference oracle with error
/// `ε` per marginal (sequential; see [`log_partition_function_with`] for
/// the pooled variant).
pub fn log_partition_function<O>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    oracle: &O,
    eps: f64,
) -> Result<CountEstimate, CountError>
where
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
{
    log_partition_function_with(model, pinning, oracle, eps, &ThreadPool::sequential())
}

/// **Frozen reference**: the straight-line sequential form of the
/// two-pass estimator, kept verbatim as the bit-identity target for the
/// cross-width proptests (`tests/counting_parallel.rs`). Do not
/// "improve" this function — change [`log_partition_function_detailed`]
/// and let the tests prove agreement.
pub fn log_partition_function_reference<O: MultiplicativeInference>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    oracle: &O,
    eps: f64,
) -> Result<CountEstimate, CountError> {
    let n = model.node_count();
    let anchor_eps = eps.max(ANCHOR_EPS_FLOOR);

    // anchor pass: coarse greedy argmax pinning
    let mut sigma = pinning.clone();
    let mut levels: Vec<(NodeId, Value)> = Vec::new();
    for v in (0..n).map(NodeId::from_index) {
        if sigma.is_pinned(v) {
            continue;
        }
        let mu = oracle.marginal_mul(model, &sigma, v, anchor_eps);
        let (argmax, p) = mu
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite marginal"))
            .ok_or(CountError::EmptyMarginal { vertex: v })?;
        if p <= 0.0 {
            return Err(CountError::NonPositiveMarginal { vertex: v });
        }
        let val = Value::from_index(argmax);
        sigma.pin(v, val);
        levels.push((v, val));
    }
    let anchor = sigma.to_config();
    let w = model.weight(&anchor);
    if w <= 0.0 {
        return Err(CountError::InfeasibleAnchor);
    }

    // marginal pass: full-precision chain walk
    let mut prefix = pinning.clone();
    let mut log_z = w.ln();
    for &(v, val) in &levels {
        let mu = oracle.marginal_mul(model, &prefix, v, eps);
        let p = mu
            .get(val.index())
            .copied()
            .ok_or(CountError::EmptyMarginal { vertex: v })?;
        if p <= 0.0 {
            return Err(CountError::NonPositiveMarginal { vertex: v });
        }
        log_z -= p.ln();
        prefix.pin(v, val);
    }

    Ok(CountEstimate {
        log_z,
        log_error_bound: levels.len() as f64 * eps,
        anchor,
    })
}

/// Tuning knobs for [`log_partition_function_annealed`].
#[derive(Clone, Debug)]
pub struct AnnealedConfig {
    /// Target certified relative log error per chain level.
    pub eps: f64,
    /// Overall Monte Carlo confidence budget: with probability `≥ 1 − δ`
    /// every level's reported bound holds simultaneously (split as
    /// `δ/levels` per level, union-bounded over its checkpoints).
    pub delta: f64,
    /// Total-variation error of each underlying sampler execution. Per
    /// Theorem 3.4 this is an *additive* bias `δ_s + ε₀` on each level's
    /// true marginal — orthogonal to, and not covered by, the certified
    /// Monte Carlo bound.
    pub sampler_delta: f64,
    /// Samples drawn between anytime certification checkpoints.
    pub chunk: usize,
    /// Hard per-level sample budget; a level that exhausts it reports
    /// its achieved (possibly uncertified) bound.
    pub max_samples_per_level: usize,
    /// Sampler executions attempted (with distinct seeds) to find a
    /// feasible anchor before giving up.
    pub max_anchor_attempts: usize,
}

impl Default for AnnealedConfig {
    fn default() -> Self {
        AnnealedConfig {
            eps: 0.25,
            delta: 0.05,
            sampler_delta: 0.05,
            chunk: 64,
            max_samples_per_level: 8192,
            max_anchor_attempts: 8,
        }
    }
}

/// Result of an annealed (sampling-backed) chain-rule estimation.
#[derive(Clone, Debug)]
pub struct AnnealedCount {
    /// The estimate; `log_error_bound` is the *achieved* certified bound
    /// `Σ_i bound_i` (not the a-priori `n·ε`), and is `∞` if any level
    /// could not be certified at all within its budget.
    pub estimate: CountEstimate,
    /// Total sampler executions across all levels (anchor excluded).
    pub samples: usize,
    /// Number of levels whose achieved bound met the target `ε`.
    pub certified_levels: usize,
    /// Number of chain levels.
    pub levels: usize,
    /// The confidence `1 − δ` at which the reported bound holds.
    pub confidence: f64,
}

/// Per-level outcome of the annealed streaming loop.
struct LevelStat {
    p_hat: f64,
    achieved: f64,
    samples: usize,
}

/// Anytime annealed counting for **sampling-backed** oracles: estimates
/// `ln Z^τ` by Monte Carlo over independent executions of the Theorem
/// 3.2 LOCAL sampler, instead of a multiplicative inference oracle.
///
/// The anchor is the first feasible sampler output (fresh seed per
/// attempt). Each chain level then estimates
/// `p_i = μ̃^{τ∧σ_{<i}}_{v_i}(σ(v_i))` by streaming sampler executions
/// under the frozen prefix in chunks, stopping at the **first**
/// checkpoint whose Hoeffding interval (confidence `δ/levels`, union
/// bound over checkpoints) certifies relative log error `≤ ε` — an
/// anytime scheme that spends samples where the marginal is hard and
/// stops early where it is easy. The achieved per-level bounds are
/// summed into `estimate.log_error_bound`.
///
/// Levels are fanned across `pool` with per-level SplitMix64 seed
/// derivation, so the result is bit-identical at every pool width.
///
/// The certified bound covers Monte Carlo error only: each sampler
/// execution also carries the additive TV bias `δ_s + ε₀` of Theorem
/// 3.4 (see [`AnnealedConfig::sampler_delta`]).
pub fn log_partition_function_annealed<O>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    oracle: &O,
    cfg: &AnnealedConfig,
    seed0: u64,
    pool: &ThreadPool,
) -> Result<AnnealedCount, CountError>
where
    O: InferenceOracle + Clone + Send + Sync + 'static,
{
    let n = model.node_count();

    // anchor: first feasible sampler output
    let instance = Arc::new(
        Instance::new(model.clone(), pinning.clone()).map_err(|_| CountError::InfeasibleAnchor)?,
    );
    let anchor_seed = splitmix64(seed0 ^ 0x616e_6368_6f72); // "anchor"
    let mut anchor = None;
    for attempt in 0..cfg.max_anchor_attempts.max(1) as u64 {
        let net = Network::from_shared(Arc::clone(&instance), anchor_seed.wrapping_add(attempt));
        let sampler = SequentialSampler::new(oracle.clone(), cfg.sampler_delta);
        let (run, _schedule) = scheduler::run_slocal_in_local(&net, &sampler, 0);
        if !run.succeeded() {
            continue;
        }
        let mut sigma = pinning.clone();
        for v in (0..n).map(NodeId::from_index) {
            if !sigma.is_pinned(v) {
                sigma.pin(v, run.outputs[v.index()]);
            }
        }
        let config = sigma.to_config();
        if model.weight(&config) > 0.0 {
            anchor = Some(config);
            break;
        }
    }
    let anchor = anchor.ok_or(CountError::InfeasibleAnchor)?;
    let w = model.weight(&anchor);

    let levels: Vec<(NodeId, Value)> = (0..n)
        .map(NodeId::from_index)
        .filter(|&v| !pinning.is_pinned(v))
        .map(|v| (v, anchor.get(v)))
        .collect();

    if levels.is_empty() {
        return Ok(AnnealedCount {
            estimate: CountEstimate {
                log_z: w.ln(),
                log_error_bound: 0.0,
                anchor,
            },
            samples: 0,
            certified_levels: 0,
            levels: 0,
            confidence: 1.0 - cfg.delta,
        });
    }

    // each level is a self-contained anytime Monte Carlo loop; fan them
    // across the pool with seeds derived from the level index alone
    let chunk = cfg.chunk.max(1);
    let budget = cfg.max_samples_per_level.max(chunk);
    let checkpoints = budget.div_ceil(chunk);
    let delta_ckpt = cfg.delta / levels.len() as f64 / checkpoints as f64;
    let shared = Arc::new((
        oracle.clone(),
        model.clone(),
        pinning.clone(),
        levels.clone(),
        cfg.clone(),
    ));
    let indices: Vec<usize> = (0..levels.len()).collect();
    let stats: Vec<Result<LevelStat, CountError>> = pool.par_map(&indices, move |&i| {
        let (oracle, model, base, levels, cfg) = &*shared;
        let (v, target) = levels[i];
        let mut prefix = base.clone();
        for &(u, val) in &levels[..i] {
            prefix.pin(u, val);
        }
        let instance = Arc::new(
            Instance::new(model.clone(), prefix).map_err(|_| CountError::InfeasibleAnchor)?,
        );
        let level_seed = splitmix64(seed0 ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut hits = 0usize;
        let mut m = 0usize;
        let mut achieved = f64::INFINITY;
        while m < budget {
            let take = chunk.min(budget - m);
            for s in 0..take as u64 {
                let net = Network::from_shared(
                    Arc::clone(&instance),
                    level_seed.wrapping_add(m as u64 + s),
                );
                let sampler = SequentialSampler::new(oracle.clone(), cfg.sampler_delta);
                let (run, _schedule) = scheduler::run_slocal_in_local(&net, &sampler, 0);
                if run.outputs[v.index()] == target {
                    hits += 1;
                }
            }
            m += take;
            let p = hits as f64 / m as f64;
            if p > 0.0 {
                let e = ((2.0 / delta_ckpt).ln() / (2.0 * m as f64)).sqrt();
                let upper = ((p + e) / p).ln();
                achieved = if p - e > 0.0 {
                    upper.max((p / (p - e)).ln())
                } else {
                    f64::INFINITY
                };
                if achieved <= cfg.eps {
                    break;
                }
            }
        }
        if hits == 0 {
            return Err(CountError::NonPositiveMarginal { vertex: v });
        }
        Ok(LevelStat {
            p_hat: hits as f64 / m as f64,
            achieved,
            samples: m,
        })
    });

    let mut log_z = w.ln();
    let mut bound = 0.0f64;
    let mut samples = 0usize;
    let mut certified = 0usize;
    for stat in stats {
        let stat = stat?;
        log_z -= stat.p_hat.ln();
        bound += stat.achieved;
        samples += stat.samples;
        if stat.achieved <= cfg.eps {
            certified += 1;
        }
    }

    Ok(AnnealedCount {
        estimate: CountEstimate {
            log_z,
            log_error_bound: bound,
            anchor,
        },
        samples,
        certified_levels: certified,
        levels: levels.len(),
        confidence: 1.0 - cfg.delta,
    })
}

/// Approximately counts independent sets of `g` weighted by fugacity `λ`
/// (`λ = 1` counts plain independent sets). Convenience wrapper wiring
/// the hardcore model to a boosted SAW oracle.
pub fn count_independent_sets(
    g: &lds_graph::Graph,
    lambda: f64,
    eps: f64,
) -> Result<CountEstimate, CountError> {
    use lds_gibbs::models::{hardcore, two_spin::TwoSpinParams};
    use lds_oracle::{BoostedOracle, DecayRate, TwoSpinSawOracle};
    let model = hardcore::model(g, lambda);
    let rate = crate::complexity::hardcore_decay_rate(lambda, g.max_degree().max(2));
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(lambda),
        DecayRate::new(rate.clamp(0.05, 0.95), 2.0),
    ));
    log_partition_function(&model, &PartialConfig::empty(g.node_count()), &oracle, eps)
}

/// Approximately counts matchings of `g` weighted by edge weight `λ`
/// (`λ = 1` counts plain matchings), via the line-graph duality.
pub fn count_matchings(
    g: &lds_graph::Graph,
    lambda: f64,
    eps: f64,
) -> Result<CountEstimate, CountError> {
    use lds_gibbs::models::{matching::MatchingInstance, two_spin::TwoSpinParams};
    use lds_oracle::{BoostedOracle, DecayRate, TwoSpinSawOracle};
    let inst = MatchingInstance::new(g, lambda);
    let rate = crate::complexity::matching_decay_rate(lambda, g.max_degree().max(1));
    let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
        TwoSpinParams::hardcore(lambda),
        DecayRate::new(rate.clamp(0.05, 0.95), 2.0),
    ));
    log_partition_function(
        inst.model(),
        &PartialConfig::empty(inst.model().node_count()),
        &oracle,
        eps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_gibbs::{distribution, models::two_spin::TwoSpinParams};
    use lds_graph::generators;
    use lds_oracle::{BoostedOracle, DecayRate, EnumerationOracle, TwoSpinSawOracle};

    /// The pre-split estimator, kept verbatim: one full-precision pass
    /// doing argmax construction and accumulation together. Used to
    /// check the two-pass estimator agrees within the combined bounds.
    fn pr6_estimator<O: MultiplicativeInference>(
        model: &GibbsModel,
        pinning: &PartialConfig,
        oracle: &O,
        eps: f64,
    ) -> Option<CountEstimate> {
        let n = model.node_count();
        let mut sigma = pinning.clone();
        let mut log_z = 0.0f64;
        let mut free_steps = 0usize;
        for v in (0..n).map(NodeId::from_index) {
            if sigma.is_pinned(v) {
                continue;
            }
            let mu = oracle.marginal_mul(model, &sigma, v, eps);
            let (argmax, p) = mu
                .iter()
                .copied()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite marginal"))?;
            if p <= 0.0 {
                return None;
            }
            log_z -= p.ln();
            sigma.pin(v, Value::from_index(argmax));
            free_steps += 1;
        }
        let anchor = sigma.to_config();
        let w = model.weight(&anchor);
        if w <= 0.0 {
            return None;
        }
        log_z += w.ln();
        Some(CountEstimate {
            log_z,
            log_error_bound: free_steps as f64 * eps,
            anchor,
        })
    }

    /// Independent-set counts of paths are Fibonacci numbers:
    /// i(P_n) = F(n+2) with F(1) = F(2) = 1.
    #[test]
    fn path_independent_sets_are_fibonacci() {
        let fib = [1u64, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];
        for n in 2..=10usize {
            let g = generators::path(n);
            let est = count_independent_sets(&g, 1.0, 1e-4).unwrap();
            let expect = fib[n + 1] as f64; // F(n+2), 0-indexed offset
            assert!(
                (est.log_z - expect.ln()).abs() <= est.log_error_bound + 1e-6,
                "P{n}: ln Ẑ = {} vs ln {} (bound {})",
                est.log_z,
                expect,
                est.log_error_bound
            );
        }
    }

    /// Independent-set counts of cycles are Lucas numbers:
    /// i(C_n) = L(n) with L(1)=1, L(2)=3.
    #[test]
    fn cycle_independent_sets_are_lucas() {
        let lucas = [2u64, 1, 3, 4, 7, 11, 18, 29, 47, 76, 123, 199];
        for (n, &expect) in lucas.iter().enumerate().take(11).skip(3) {
            let g = generators::cycle(n);
            let est = count_independent_sets(&g, 1.0, 1e-4).unwrap();
            let expect = expect as f64;
            assert!(
                (est.log_z - expect.ln()).abs() <= est.log_error_bound + 1e-6,
                "C{n}: ln Ẑ = {} vs ln {}",
                est.log_z,
                expect
            );
        }
    }

    #[test]
    fn weighted_counts_match_enumeration() {
        let g = generators::grid(2, 3);
        for lambda in [0.5f64, 1.5] {
            let model = hardcore::model(&g, lambda);
            let exact = distribution::partition_function(&model, &PartialConfig::empty(6));
            let est = count_independent_sets(&g, lambda, 1e-5).unwrap();
            assert!(
                (est.log_z - exact.ln()).abs() <= est.log_error_bound + 1e-6,
                "λ={lambda}: {} vs {}",
                est.log_z,
                exact.ln()
            );
        }
    }

    #[test]
    fn matching_counts_match_enumeration() {
        let g = generators::cycle(6);
        let inst = lds_gibbs::models::matching::MatchingInstance::new(&g, 1.0);
        let exact = distribution::partition_function(
            inst.model(),
            &PartialConfig::empty(inst.model().node_count()),
        );
        let est = count_matchings(&g, 1.0, 1e-5).unwrap();
        assert!(
            (est.log_z - exact.ln()).abs() <= est.log_error_bound + 1e-6,
            "{} vs {}",
            est.log_z,
            exact.ln()
        );
    }

    #[test]
    fn coloring_counts_via_generic_estimator() {
        // chromatic polynomial of C5 at q=3: (q-1)^5 + (q-1)·(-1)^5 = 30
        let g = generators::cycle(5);
        let model = coloring::model(&g, 3);
        let oracle = BoostedOracle::new(EnumerationOracle::new(DecayRate::new(0.4, 2.0)));
        let est = log_partition_function(&model, &PartialConfig::empty(5), &oracle, 1e-5).unwrap();
        assert!(
            (est.log_z - 30.0f64.ln()).abs() <= est.log_error_bound + 1e-6,
            "ln Ẑ = {} vs ln 30",
            est.log_z
        );
    }

    #[test]
    fn conditional_counts_follow_pinning() {
        // pin node 0 occupied on C5: remaining IS count = #IS containing v0
        let g = generators::cycle(5);
        let model = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(5);
        tau.pin(lds_graph::NodeId(0), Value(1));
        let exact = distribution::partition_function(&model, &tau);
        let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(1.0),
            DecayRate::new(0.5, 2.0),
        ));
        let est = log_partition_function(&model, &tau, &oracle, 1e-5).unwrap();
        assert!(
            (est.log_z - exact.ln()).abs() <= est.log_error_bound + 1e-6,
            "{} vs {}",
            est.log_z,
            exact.ln()
        );
        // anchor honors the pinning
        assert_eq!(est.anchor.get(lds_graph::NodeId(0)), Value(1));
    }

    #[test]
    fn error_bound_scales_with_eps_and_size() {
        let g = generators::cycle(8);
        let a = count_independent_sets(&g, 1.0, 1e-3).unwrap();
        let b = count_independent_sets(&g, 1.0, 1e-5).unwrap();
        assert!(b.log_error_bound < a.log_error_bound);
        assert_eq!(a.log_error_bound, 8.0 * 1e-3);
    }

    #[test]
    fn two_pass_agrees_with_pre_split_estimator_within_bounds() {
        // both estimators carry the same |ln Ẑ − ln Z| ≤ n·ε guarantee
        // (the identity holds for ANY feasible anchor), so they differ
        // by at most the sum of their bounds
        let g = generators::cycle(9);
        let model = hardcore::model(&g, 1.3);
        let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(1.3),
            DecayRate::new(0.5, 2.0),
        ));
        let tau = PartialConfig::empty(9);
        let new = log_partition_function(&model, &tau, &oracle, 1e-4).unwrap();
        let old = pr6_estimator(&model, &tau, &oracle, 1e-4).unwrap();
        assert!(
            (new.log_z - old.log_z).abs() <= new.log_error_bound + old.log_error_bound + 1e-9,
            "two-pass {} vs pre-split {}",
            new.log_z,
            old.log_z
        );
    }

    #[test]
    fn pooled_estimator_matches_reference_bitwise() {
        let g = generators::grid(3, 3);
        let model = hardcore::model(&g, 0.8);
        let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(0.8),
            DecayRate::new(0.5, 2.0),
        ));
        let mut tau = PartialConfig::empty(9);
        tau.pin(NodeId(4), Value(0));
        let reference = log_partition_function_reference(&model, &tau, &oracle, 1e-3).unwrap();
        for threads in [1usize, 4, 8] {
            let pool = ThreadPool::new(threads);
            let run = log_partition_function_detailed(&model, &tau, &oracle, 1e-3, &pool).unwrap();
            assert_eq!(run.estimate.log_z.to_bits(), reference.log_z.to_bits());
            assert_eq!(
                run.estimate.log_error_bound.to_bits(),
                reference.log_error_bound.to_bits()
            );
            assert_eq!(run.levels, 8);
        }
    }

    #[test]
    fn detailed_run_reports_phase_times() {
        let g = generators::cycle(8);
        let model = hardcore::model(&g, 1.0);
        let oracle = BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(1.0),
            DecayRate::new(0.5, 2.0),
        ));
        let run = log_partition_function_detailed(
            &model,
            &PartialConfig::empty(8),
            &oracle,
            1e-3,
            &ThreadPool::sequential(),
        )
        .unwrap();
        assert_eq!(run.levels, 8);
        assert!(run.anchor_time > Duration::ZERO);
        assert!(run.marginal_time > Duration::ZERO);
    }

    /// An oracle that always returns an empty marginal vector.
    #[derive(Clone)]
    struct EmptyOracle;
    impl MultiplicativeInference for EmptyOracle {
        fn name(&self) -> &str {
            "empty"
        }
        fn radius_mul(&self, _: &GibbsModel, _: f64) -> usize {
            0
        }
        fn marginal_mul(&self, _: &GibbsModel, _: &PartialConfig, _: NodeId, _: f64) -> Vec<f64> {
            Vec::new()
        }
    }

    /// An oracle that returns an all-zero marginal vector.
    #[derive(Clone)]
    struct ZeroOracle;
    impl MultiplicativeInference for ZeroOracle {
        fn name(&self) -> &str {
            "zero"
        }
        fn radius_mul(&self, _: &GibbsModel, _: f64) -> usize {
            0
        }
        fn marginal_mul(
            &self,
            model: &GibbsModel,
            _: &PartialConfig,
            _: NodeId,
            _: f64,
        ) -> Vec<f64> {
            vec![0.0; model.alphabet_size()]
        }
    }

    /// An oracle that steers the anchor into a zero-weight config:
    /// claims every node is occupied with probability 1.
    #[derive(Clone)]
    struct AlwaysOccupied;
    impl MultiplicativeInference for AlwaysOccupied {
        fn name(&self) -> &str {
            "occupied"
        }
        fn radius_mul(&self, _: &GibbsModel, _: f64) -> usize {
            0
        }
        fn marginal_mul(&self, _: &GibbsModel, _: &PartialConfig, _: NodeId, _: f64) -> Vec<f64> {
            vec![0.0, 1.0]
        }
    }

    #[test]
    fn failure_causes_are_typed() {
        let g = generators::path(3);
        let model = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(3);
        assert_eq!(
            log_partition_function(&model, &tau, &EmptyOracle, 0.1).unwrap_err(),
            CountError::EmptyMarginal { vertex: NodeId(0) }
        );
        assert_eq!(
            log_partition_function(&model, &tau, &ZeroOracle, 0.1).unwrap_err(),
            CountError::NonPositiveMarginal { vertex: NodeId(0) }
        );
        // adjacent occupied nodes have hardcore weight 0
        assert_eq!(
            log_partition_function(&model, &tau, &AlwaysOccupied, 0.1).unwrap_err(),
            CountError::InfeasibleAnchor
        );
    }

    #[test]
    fn annealed_estimate_is_cross_width_identical_and_sane() {
        let g = generators::cycle(6);
        let model = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(6);
        let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
        let cfg = AnnealedConfig {
            eps: 0.3,
            delta: 0.1,
            sampler_delta: 0.05,
            chunk: 64,
            max_samples_per_level: 2048,
            max_anchor_attempts: 8,
        };
        let base = log_partition_function_annealed(
            &model,
            &tau,
            &oracle,
            &cfg,
            42,
            &ThreadPool::sequential(),
        )
        .unwrap();
        // exact ln Z = ln 18 (Lucas L6); the certified bound covers MC
        // error only, so allow the additive sampler bias on top
        let exact = 18.0f64.ln();
        assert!(
            (base.estimate.log_z - exact).abs()
                <= base.estimate.log_error_bound + 6.0 * 2.0 * cfg.sampler_delta + 0.5,
            "annealed {} vs exact {} (bound {})",
            base.estimate.log_z,
            exact,
            base.estimate.log_error_bound
        );
        assert!(base.samples > 0);
        assert_eq!(base.levels, 6);
        assert!(base.certified_levels <= base.levels);
        assert_eq!(base.confidence, 0.9);
        for threads in [4usize, 8] {
            let pool = ThreadPool::new(threads);
            let run =
                log_partition_function_annealed(&model, &tau, &oracle, &cfg, 42, &pool).unwrap();
            assert_eq!(
                run.estimate.log_z.to_bits(),
                base.estimate.log_z.to_bits(),
                "width {threads}"
            );
            assert_eq!(run.samples, base.samples);
            assert_eq!(run.certified_levels, base.certified_levels);
        }
    }

    #[test]
    fn annealed_stops_early_on_easy_levels() {
        // a generous eps certifies at the first checkpoint: exactly one
        // chunk per level
        let g = generators::path(4);
        let model = hardcore::model(&g, 1.0);
        let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
        let cfg = AnnealedConfig {
            eps: 5.0,
            chunk: 32,
            max_samples_per_level: 4096,
            ..AnnealedConfig::default()
        };
        let run = log_partition_function_annealed(
            &model,
            &PartialConfig::empty(4),
            &oracle,
            &cfg,
            7,
            &ThreadPool::sequential(),
        )
        .unwrap();
        assert_eq!(run.certified_levels, 4);
        assert_eq!(run.samples, 4 * 32);
        assert!(run.estimate.log_error_bound <= 4.0 * 5.0);
    }
}
