//! The paper's applications (Corollary 5.3): exact LOCAL samplers for
//! concrete models.
//!
//! | Model | Regime | Rounds (paper) |
//! |---|---|---|
//! | matchings (monomer–dimer) | all `λ` | `O(√Δ·log³ n)` |
//! | hardcore | `λ < λ_c(Δ)` | `O(log³ n)` |
//! | antiferromagnetic 2-spin / Ising | uniqueness | `O(log³ n)` |
//! | `q`-colorings, triangle-free | `q ≥ αΔ, α > α*` | `O(log³ n)` |
//! | weighted hypergraph matchings | `λ < λ_c(r, Δ)` | `O(log³ n)` |
//!
//! Every sampler here is `local-JVV` (Theorem 4.2) instantiated with the
//! model's SSM rate: two-spin-shaped models use the SAW-tree oracle
//! directly (edge models run on the line/intersection graph — the
//! distance-preserving duality the paper invokes); colorings use the
//! boosted enumeration oracle (tractable on bounded-ball workloads; see
//! DESIGN.md §6).
//!
//! **Deprecated.** These free functions are legacy shims kept for source
//! compatibility; new code should go through the unified `lds-engine`
//! facade (`Engine::builder().model(ModelSpec::…)`), which validates the
//! regime once at build time, owns oracle dispatch, and serves all task
//! kinds (exact/approximate sampling, inference, counting) with batching
//! support. Regime validation is shared with the facade via
//! [`crate::regime`].

use lds_gibbs::models::matching::MatchingInstance;
use lds_gibbs::models::two_spin::{self, TwoSpinParams};
use lds_gibbs::models::{coloring, hardcore, hypergraph_matching::HypergraphMatchingInstance};
use lds_gibbs::Config;
use lds_graph::{EdgeId, Graph, HyperEdgeId, Hypergraph};
use lds_localnet::{Instance, Network};
use lds_oracle::{BoostedOracle, DecayRate, EnumerationOracle, TwoSpinSawOracle};

use crate::complexity;
use crate::jvv::{self, JvvStats};
use crate::regime;

pub use crate::regime::{OutOfRegime, RegimeCheck};

/// Result of one application run.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// The sampled configuration on the model's carrier graph.
    pub output: Config,
    /// Whether every node succeeded (exactness is conditional on this).
    pub succeeded: bool,
    /// Simulated LOCAL rounds.
    pub rounds: usize,
    /// The paper's round bound evaluated with constant 1.
    pub bound_rounds: f64,
    /// The decay rate used for radius planning.
    pub rate: f64,
    /// JVV execution statistics.
    pub stats: JvvStats,
}

fn run_two_spin_jvv(
    model: lds_gibbs::GibbsModel,
    params: TwoSpinParams,
    rate: f64,
    eps: f64,
    seed: u64,
    bound_rounds: f64,
) -> AppRun {
    let n = model.node_count();
    let net = Network::new(Instance::unconditioned(model), seed);
    let oracle = TwoSpinSawOracle::new(params, DecayRate::new(rate.clamp(1e-6, 0.95), 2.0));
    let (run, _schedule, stats) = jvv::sample_exact_local(&net, &oracle, eps, 0);
    AppRun {
        output: Config::from_values(run.outputs.clone()),
        succeeded: run.succeeded(),
        rounds: run.rounds,
        bound_rounds,
        rate,
        stats: JvvStats {
            locality: stats.locality,
            ..stats
        },
    }
    .tap_check(n)
}

impl AppRun {
    fn tap_check(self, _n: usize) -> Self {
        self
    }

    /// Per-run acceptance probability product (rejection success).
    pub fn acceptance(&self) -> f64 {
        self.stats.acceptance_product
    }
}

/// Exact sampling from the hardcore model for `λ < λ_c(Δ)`
/// (Corollary 5.3, second bullet; `O(log³ n)` rounds).
///
/// # Errors
///
/// Returns [`OutOfRegime`] if `λ ≥ λ_c(Δ)`.
#[deprecated(
    since = "0.1.0",
    note = "use the lds-engine facade: Engine::builder().model(ModelSpec::Hardcore { lambda })"
)]
pub fn sample_hardcore(g: &Graph, lambda: f64, eps: f64, seed: u64) -> Result<AppRun, OutOfRegime> {
    let rate = regime::hardcore(g, lambda)?.rate;
    let bound = complexity::ssm_rounds_bound(rate.min(0.95), g.node_count(), 1.0);
    Ok(run_two_spin_jvv(
        hardcore::model(g, lambda),
        TwoSpinParams::hardcore(lambda),
        rate,
        eps,
        seed,
        bound,
    ))
}

/// Exact sampling from an antiferromagnetic two-spin system in the
/// uniqueness regime (Corollary 5.3, fourth bullet; `O(log³ n)` rounds).
///
/// The caller supplies the decay rate for radius planning (exact rates
/// for hardcore/Ising are in [`crate::complexity`]).
///
/// # Errors
///
/// Returns [`OutOfRegime`] if `rate ≥ 1` or the parameters are not
/// antiferromagnetic.
#[deprecated(
    since = "0.1.0",
    note = "use the lds-engine facade: Engine::builder().model(ModelSpec::TwoSpin { .. })"
)]
pub fn sample_two_spin(
    g: &Graph,
    params: TwoSpinParams,
    rate: f64,
    eps: f64,
    seed: u64,
) -> Result<AppRun, OutOfRegime> {
    let rate = regime::two_spin(params, rate)?.rate;
    let bound = complexity::ssm_rounds_bound(rate, g.node_count(), 1.0);
    Ok(run_two_spin_jvv(
        two_spin::model(g, params),
        params,
        rate,
        eps,
        seed,
        bound,
    ))
}

/// Result of a matching sampling run: the [`AppRun`] on the line graph
/// plus the decoded matching.
#[derive(Clone, Debug)]
pub struct MatchingRun {
    /// The underlying run (configurations index line-graph nodes).
    pub run: AppRun,
    /// The sampled matching as base-graph edges.
    pub edges: Vec<EdgeId>,
}

/// Exact sampling of weighted matchings (monomer–dimer) — works for
/// **all** `λ` and `Δ` (Corollary 5.3, first bullet; `O(√Δ·log³ n)`
/// rounds): matchings always exhibit SSM at rate `1 − Ω(1/√(λΔ))`.
#[deprecated(
    since = "0.1.0",
    note = "use the lds-engine facade: Engine::builder().model(ModelSpec::Matching { lambda })"
)]
pub fn sample_matching(g: &Graph, lambda: f64, eps: f64, seed: u64) -> MatchingRun {
    let inst = MatchingInstance::new(g, lambda);
    let delta = g.max_degree();
    let rate = regime::matching(g, lambda).rate;
    let bound = complexity::matchings_rounds_bound(delta, g.node_count(), 1.0);
    let run = run_two_spin_jvv(
        inst.model().clone(),
        TwoSpinParams::hardcore(lambda),
        rate,
        eps,
        seed,
        bound,
    );
    let edges = inst.edges_of(&run.output);
    debug_assert!(inst.is_matching(&edges));
    MatchingRun { run, edges }
}

/// Result of a hypergraph matching run.
#[derive(Clone, Debug)]
pub struct HypergraphMatchingRun {
    /// The underlying run (configurations index intersection-graph nodes).
    pub run: AppRun,
    /// The sampled matching as hyperedges.
    pub hyperedges: Vec<HyperEdgeId>,
}

/// Exact sampling of weighted hypergraph matchings for
/// `λ < λ_c(r, Δ)` (Corollary 5.3, fifth bullet).
///
/// # Errors
///
/// Returns [`OutOfRegime`] if `λ ≥ λ_c(r, Δ)`.
#[deprecated(
    since = "0.1.0",
    note = "use the lds-engine facade: Engine::builder().model(ModelSpec::HypergraphMatching { lambda })"
)]
pub fn sample_hypergraph_matching(
    h: &Hypergraph,
    lambda: f64,
    eps: f64,
    seed: u64,
) -> Result<HypergraphMatchingRun, OutOfRegime> {
    // cheap threshold check first: reject before paying for the
    // intersection graph
    regime::hypergraph_matching_threshold(h, lambda)?;
    let inst = HypergraphMatchingInstance::new(h, lambda);
    // the intersection graph is where the hardcore dynamics run
    let ig_delta = inst.intersection_graph().max_degree();
    let rate = regime::hypergraph_matching(h, lambda, ig_delta)?.rate;
    let bound = complexity::log3_rounds_bound(h.node_count(), 1.0);
    let run = run_two_spin_jvv(
        inst.model().clone(),
        TwoSpinParams::hardcore(lambda),
        rate,
        eps,
        seed,
        bound,
    );
    let hyperedges = inst.hyperedges_of(&run.output);
    debug_assert!(inst.is_matching(&hyperedges));
    Ok(HypergraphMatchingRun { run, hyperedges })
}

/// Exact sampling of proper `q`-colorings of triangle-free graphs with
/// `q ≥ αΔ`, `α > α* ≈ 1.763` (Corollary 5.3, third bullet;
/// `O(log³ n)` rounds).
///
/// Uses the boosted enumeration oracle, so it is practical on
/// bounded-ball workloads (small `Δ` or small planned radius); see
/// DESIGN.md §6.
///
/// # Errors
///
/// Returns [`OutOfRegime`] if the graph has a triangle or `q ≤ α*·Δ`.
#[deprecated(
    since = "0.1.0",
    note = "use the lds-engine facade: Engine::builder().model(ModelSpec::Coloring { q })"
)]
pub fn sample_coloring(g: &Graph, q: usize, eps: f64, seed: u64) -> Result<AppRun, OutOfRegime> {
    let rate = regime::coloring(g, q)?.rate;
    let model = coloring::model(g, q);
    let n = model.node_count();
    let net = Network::new(Instance::unconditioned(model), seed);
    let base = EnumerationOracle::new(DecayRate::new(rate.clamp(1e-6, 0.95), 2.0));
    let oracle = BoostedOracle::new(base);
    let (run, _schedule, stats) = jvv::sample_exact_local(&net, &oracle, eps, 0);
    let bound = complexity::log3_rounds_bound(n, 1.0);
    Ok(AppRun {
        output: Config::from_values(run.outputs.clone()),
        succeeded: run.succeeded(),
        rounds: run.rounds,
        bound_rounds: bound,
        rate,
        stats,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use lds_gibbs::{distribution, PartialConfig};
    use lds_graph::{generators, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hardcore_app_in_uniqueness() {
        let g = generators::cycle(8);
        let run = sample_hardcore(&g, 1.0, 0.05, 7).unwrap();
        assert!(run.rate < 1.0);
        assert!(run.rounds > 0);
        let m = hardcore::model(&g, 1.0);
        assert!(m.weight(&run.output) > 0.0);
        assert!(run.acceptance() <= 1.0);
    }

    #[test]
    fn hardcore_app_rejects_nonuniqueness() {
        let g = generators::torus(4, 4); // Δ = 4, λ_c = 27/16
        let err = sample_hardcore(&g, 2.0, 0.05, 1).unwrap_err();
        assert!(err.rate > 1.0);
        assert!(err.to_string().contains("uniqueness"));
    }

    #[test]
    fn matching_app_works_at_any_lambda() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_regular(10, 3, &mut rng);
        let out = sample_matching(&g, 2.5, 0.05, 11);
        assert!(out.run.rate < 1.0, "matchings always mix");
        let inst = MatchingInstance::new(&g, 2.5);
        assert!(inst.is_matching(&out.edges));
    }

    #[test]
    fn two_spin_app_checks_regime() {
        let g = generators::cycle(8);
        // ferromagnetic rejected
        let p = TwoSpinParams::new(2.0, 2.0, 1.0);
        assert!(sample_two_spin(&g, p, 0.5, 0.05, 0).is_err());
        // antiferro Ising in uniqueness
        let ip = lds_gibbs::models::ising::IsingParams::new(-0.2, 0.0);
        let rate = complexity::ising_decay_rate(-0.2, 2);
        let run = sample_two_spin(&g, ip.to_two_spin(), rate, 0.05, 3).unwrap();
        assert_eq!(run.output.len(), 8); // runs to completion
        let m = two_spin::model(&g, ip.to_two_spin());
        assert!(m.weight(&run.output) > 0.0);
    }

    #[test]
    fn coloring_app_on_triangle_free() {
        let g = generators::cycle(7); // Δ = 2, q = 4 > α*·2
        let run = sample_coloring(&g, 4, 0.1, 5).unwrap();
        assert!(coloring::is_proper(&g, &run.output));
        // triangle rejected
        let k3 = generators::complete(3);
        assert!(sample_coloring(&k3, 9, 0.1, 0).is_err());
        // too few colors rejected
        let g2 = generators::torus(3, 3); // Δ = 4, α*Δ ≈ 7.05
        assert!(sample_coloring(&g2, 6, 0.1, 0).is_err());
    }

    #[test]
    fn hypergraph_matching_app() {
        let h = Hypergraph::new(
            6,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3), NodeId(4)],
                vec![NodeId(4), NodeId(5), NodeId(0)],
            ],
        );
        let out = sample_hypergraph_matching(&h, 0.3, 0.05, 2).unwrap();
        let inst = HypergraphMatchingInstance::new(&h, 0.3);
        assert!(inst.is_matching(&out.hyperedges));
        // above threshold rejected
        assert!(sample_hypergraph_matching(&h, 100.0, 0.05, 2).is_err());
    }

    #[test]
    fn matching_empirical_distribution_is_exact() {
        // small graph: conditioned-on-success outputs follow μ exactly
        let g = generators::path(4); // 3 edges, line graph = path of 3
        let inst = MatchingInstance::new(&g, 1.0);
        let exact =
            distribution::joint_distribution(inst.model(), &PartialConfig::empty(3)).unwrap();
        let mut samples = Vec::new();
        for seed in 0..8000u64 {
            let out = sample_matching(&g, 1.0, 0.02, seed);
            if out.run.succeeded {
                samples.push(out.run.output);
            }
        }
        assert!(samples.len() > 4000, "success rate too low");
        let emp = lds_gibbs::metrics::empirical_distribution(&samples);
        let tv = lds_gibbs::metrics::tv_distance_joint(&emp, &exact);
        assert!(tv < 0.05, "matching TV {tv}");
    }
}
