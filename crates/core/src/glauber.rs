//! Local Glauber dynamics (Fischer–Ghaffari, arXiv:1802.06676) as a
//! chromatic [`ScanKernel`] sweep — the engine's second sampling backend.
//!
//! The classic single-site Glauber dynamics resamples one uniformly
//! random site per step from its exact conditional distribution; the
//! *local* variant updates many non-adjacent sites per round, so the
//! whole chain runs in `O(log n)` LOCAL rounds inside the uniqueness
//! regime. This module implements the **systematic-scan** form of that
//! chain on the workspace's existing machinery: one sweep is one
//! chromatic scan ([`scheduler::run_kernel_chromatic_with_stats`]) in
//! which every free node, visited in schedule order, resamples its spin
//! from the conditional distribution given its current neighborhood —
//! sites of the same color are distance `≥ locality + 2` apart, so the
//! parallel cluster simulation is execution-equivalent to the sequential
//! scan and the output is **bit-identical at any pool width**.
//!
//! Contrast with [`crate::baselines::glauber_dynamics`], the sequential
//! random-site baseline: same per-site update rule, but that chain picks
//! sites with a global RNG and is inherently serial, while this one
//! draws each site's randomness from [`Network::node_rng`] (per node,
//! per sweep) and parallelizes across color classes.
//!
//! Each update touches only the factors containing the site — a table
//! lookup per factor — so a sweep costs `O(n · q · deg)` arithmetic with
//! **no inference-oracle queries at all**. That is the whole appeal over
//! the chain-rule sampler (Theorem 3.2) and local-JVV (Theorem 4.2) in
//! the high-volume `SampleApprox` regime: those pay a radius-`t` ball
//! enumeration per node, Glauber pays `sweeps` table lookups.
//!
//! The chain starts from the greedy feasible extension of the instance
//! pinning (Remark 2.3's sequential local oblivious construction), run
//! as a chromatic scan itself so the start state is deterministic and
//! width-independent. Mixing is certified by
//! [`crate::regime::glauber_plan`] from the model's SSM decay rate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lds_gibbs::{distribution, Config, PartialConfig, Value};
use lds_graph::NodeId;
use lds_localnet::local::LocalRun;
use lds_localnet::scheduler::{self, ChromaticSchedule, ShardingStats};
use lds_localnet::slocal::{ScanKernel, SlocalKernel};
use lds_localnet::Network;
use lds_runtime::{CancelToken, Cancelled, ThreadPool};

/// Base randomness stream tag for Glauber sweeps: sweep `s` draws each
/// node's randomness from stream `STREAM_GLAUBER + s`. Stream tags pack
/// into the low 20 bits of [`Network::node_seed`]'s derivation, so the
/// base (plus any realistic sweep count) stays below `2^20` while
/// keeping clear of the sampler/JVV tags (1–3) and the runtime's
/// decomposition/node/workload tags.
pub const STREAM_GLAUBER: u64 = 0x4_0000;

/// The greedy ground pass: pin each free node, in schedule order, to the
/// first value keeping the partial configuration locally feasible — the
/// same Remark 2.3 construction [`crate::baselines::glauber_dynamics`]
/// starts from, here as a pinning-extension kernel so the chromatic
/// runner makes it width-independent. Reads pins only within the model
/// locality of the processed node (the fully-pinned factors it checks
/// all touch that node's ball).
#[derive(Clone, Debug)]
struct GreedyGroundKernel;

impl SlocalKernel for GreedyGroundKernel {
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool) {
        let model = net.instance().model();
        let feasible = (0..model.alphabet_size())
            .map(Value::from_index)
            .find(|&c| model.is_locally_feasible(&sigma.with_pin(v, c)));
        match feasible {
            Some(c) => (c, false),
            None => (Value(0), true),
        }
    }
}

/// Per-node effect of a Glauber sweep: the resampled value and whether
/// it differs from the value the site held entering the sweep.
#[derive(Clone, Copy, Debug)]
pub struct GlauberUpdate {
    /// The value the site holds after its update.
    pub value: Value,
    /// `true` if the update changed the site's value.
    pub changed: bool,
}

/// Result of one full Glauber sweep.
#[derive(Clone, Debug)]
pub struct GlauberSweepRun {
    /// The configuration after the sweep.
    pub config: Config,
    /// Free sites resampled by the sweep.
    pub resampled: usize,
    /// Resampled sites whose value changed.
    pub changed: usize,
}

/// One systematic-scan Glauber sweep as a [`ScanKernel`].
///
/// The scan state is the full current configuration; processing a free
/// node replaces its value with a draw from the exact conditional
/// distribution given its neighborhood (computable from the factors
/// touching the node only — locality `ℓ`, the model's factor diameter),
/// using the node's private randomness for this sweep's stream. Pinned
/// nodes are never updated.
#[derive(Clone, Debug)]
pub struct GlauberKernel {
    initial: Arc<Config>,
    stream: u64,
}

impl GlauberKernel {
    /// A sweep kernel starting from `initial` and drawing node
    /// randomness from `stream` (one distinct stream per sweep).
    pub fn new(initial: Arc<Config>, stream: u64) -> Self {
        GlauberKernel { initial, stream }
    }
}

impl ScanKernel for GlauberKernel {
    type State = Config;
    type Effect = GlauberUpdate;
    type Run = GlauberSweepRun;

    fn init(&self, _net: &Network) -> Config {
        (*self.initial).clone()
    }

    fn process(&self, net: &Network, state: &mut Config, v: NodeId) -> Option<GlauberUpdate> {
        let model = net.instance().model();
        if net.instance().pinning().is_pinned(v) {
            return None;
        }
        let q = model.alphabet_size();
        let mut weights = vec![0.0f64; q];
        for (c, w) in weights.iter_mut().enumerate() {
            let mut local = 1.0f64;
            for &fi in model.factors_touching(v) {
                let f = &model.factors()[fi];
                local *= f
                    .eval_partial(|s| {
                        Some(if s == v {
                            Value::from_index(c)
                        } else {
                            state.get(s)
                        })
                    })
                    .expect("full config");
                if local == 0.0 {
                    break;
                }
            }
            *w = local;
        }
        let current = state.get(v);
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // frozen site (cannot happen from a feasible state): keep the
            // current value without consuming randomness
            return Some(GlauberUpdate {
                value: current,
                changed: false,
            });
        }
        let mut rng = net.node_rng(v, self.stream);
        let value = distribution::sample_from_marginal(&weights, &mut rng);
        state.set(v, value);
        Some(GlauberUpdate {
            value,
            changed: value != current,
        })
    }

    fn apply(&self, state: &mut Config, v: NodeId, effect: &GlauberUpdate) {
        state.set(v, effect.value);
    }

    /// Halo restriction of a dense configuration: only the halo's slots
    /// are copied. Sound because an update reads the factors touching
    /// the processed node (inside the halo by the schedule construction)
    /// and writes only the node itself.
    fn project(&self, state: &Config, halo: &[NodeId]) -> Config {
        let mut p = Config::constant(state.len(), Value(0));
        for &v in halo {
            p.set(v, state.get(v));
        }
        p
    }

    fn project_into(
        &self,
        state: &Config,
        halo: &[NodeId],
        scratch: &mut Config,
        stale: &[NodeId],
    ) {
        for &v in stale {
            scratch.set(v, Value(0));
        }
        for &v in halo {
            scratch.set(v, state.get(v));
        }
    }

    fn projected_bytes(&self, _n: usize, halo: usize) -> u64 {
        (halo * core::mem::size_of::<Value>()) as u64
    }

    fn finish(
        &self,
        _net: &Network,
        state: Config,
        effects: Vec<(NodeId, GlauberUpdate)>,
    ) -> GlauberSweepRun {
        let resampled = effects.len();
        let changed = effects.iter().filter(|(_, e)| e.changed).count();
        GlauberSweepRun {
            config: state,
            resampled,
            changed,
        }
    }
}

/// Mixing diagnostics of a [`sample_glauber_with`] execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GlauberStats {
    /// Full sweeps executed.
    pub sweeps: usize,
    /// Total single-site resamples across all sweeps.
    pub site_updates: u64,
    /// Sites whose value changed in the final sweep — a cheap mixing
    /// diagnostic (a well-mixed chain keeps flipping at its stationary
    /// flip rate; a frozen chain reports 0).
    pub last_sweep_changes: usize,
    /// The schedule locality used for the sweeps (the model's factor
    /// diameter).
    pub locality: usize,
}

/// Per-phase wall-clock of a [`sample_glauber_with`] execution.
#[derive(Clone, Debug, Default)]
pub struct GlauberTimings {
    /// Decomposition + chromatic-schedule construction.
    pub schedule: Duration,
    /// The greedy ground pass.
    pub ground: Duration,
    /// All Glauber sweeps.
    pub sweeps: Duration,
    /// Halo/bytes-cloned telemetry summed over the ground pass and all
    /// sweeps.
    pub sharding: ShardingStats,
}

/// Runs `sweeps` systematic-scan Glauber sweeps from the greedy ground
/// state, all sharing one chromatic schedule (locality = the model's
/// factor diameter) — the local Glauber dynamics of Fischer–Ghaffari in
/// this workspace's scan form. Same-color clusters are simulated
/// concurrently on `pool`; the result is **bit-identical to the
/// sequential execution at any pool width**.
///
/// The reported round count charges `schedule.rounds` LOCAL rounds per
/// chromatic pass (the ground pass plus each sweep), the cost of the
/// Lemma 3.1 simulation.
pub fn sample_glauber_with(
    net: &Network,
    sweeps: usize,
    stream: u64,
    pool: &ThreadPool,
) -> (
    LocalRun<Value>,
    ChromaticSchedule,
    GlauberStats,
    GlauberTimings,
) {
    sample_glauber_cancellable_with(net, sweeps, stream, pool, &CancelToken::never())
        .expect("a never-token cannot cancel")
}

/// [`sample_glauber_with`] with cooperative cancellation: the token is
/// threaded into every chromatic pass (checked between color rounds) and
/// checked once per sweep. Checks consume no randomness, so a completed
/// run is bit-identical to the uncancellable one; a cancelled run
/// returns `Err(`[`Cancelled`]`)` with no partial result.
pub fn sample_glauber_cancellable_with(
    net: &Network,
    sweeps: usize,
    stream: u64,
    pool: &ThreadPool,
    cancel: &CancelToken,
) -> Result<
    (
        LocalRun<Value>,
        ChromaticSchedule,
        GlauberStats,
        GlauberTimings,
    ),
    Cancelled,
> {
    let n = net.node_count();
    let locality = net.instance().model().locality().max(1);
    let start = Instant::now();
    cancel.check()?;
    let schedule = scheduler::chromatic_schedule(net, locality, stream);
    let schedule_wall = start.elapsed();

    let start = Instant::now();
    let (ground, mut sharding) = scheduler::run_kernel_chromatic_cancellable(
        net,
        &GreedyGroundKernel,
        &schedule,
        pool,
        cancel,
    )?;
    let ground_wall = start.elapsed();

    let mut config = Config::from_values(ground.outputs);
    let mut stats = GlauberStats {
        sweeps,
        site_updates: 0,
        last_sweep_changes: 0,
        locality,
    };
    let start = Instant::now();
    for s in 0..sweeps {
        cancel.check()?;
        let kernel = GlauberKernel::new(Arc::new(config), stream_for_sweep(s));
        let (run, pass) =
            scheduler::run_kernel_chromatic_cancellable(net, &kernel, &schedule, pool, cancel)?;
        sharding.merge(&pass);
        stats.site_updates += run.resampled as u64;
        stats.last_sweep_changes = run.changed;
        config = run.config;
    }
    let sweeps_wall = start.elapsed();

    let failures: Vec<bool> = (0..n)
        .map(|v| ground.failures[v] || schedule.failed[v])
        .collect();
    let rounds = schedule.rounds * (sweeps + 1);
    Ok((
        LocalRun {
            outputs: config.values().to_vec(),
            failures,
            rounds,
        },
        schedule,
        stats,
        GlauberTimings {
            schedule: schedule_wall,
            ground: ground_wall,
            sweeps: sweeps_wall,
            sharding,
        },
    ))
}

/// The randomness stream for sweep `s`: distinct per sweep so each sweep
/// re-draws fresh node randomness. Must stay below the `2^20` stream-tag
/// width of [`Network::node_seed`] or (node, sweep) pairs would alias
/// across nodes.
fn stream_for_sweep(s: usize) -> u64 {
    STREAM_GLAUBER + s as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::metrics;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_gibbs::PartialConfig;
    use lds_graph::generators;
    use lds_localnet::Instance;

    fn hc_net(n: usize, lambda: f64, seed: u64) -> Network {
        let g = generators::cycle(n);
        Network::new(Instance::unconditioned(hardcore::model(&g, lambda)), seed)
    }

    #[test]
    fn outputs_are_feasible_configurations() {
        for seed in 0..20 {
            let net = hc_net(9, 1.5, seed);
            let (run, _, _, _) = sample_glauber_with(&net, 6, 0, &ThreadPool::sequential());
            assert!(run.succeeded(), "seed {seed}");
            let config = Config::from_values(run.outputs);
            assert!(
                net.instance().model().weight(&config) > 0.0,
                "seed {seed} produced an infeasible configuration"
            );
        }
    }

    #[test]
    fn bit_identical_across_pool_widths() {
        for seed in [0u64, 3, 11] {
            let net = hc_net(14, 1.0, seed);
            let (reference, _, ref_stats, _) =
                sample_glauber_with(&net, 5, 0, &ThreadPool::sequential());
            for threads in [2usize, 4, 8] {
                let pool = ThreadPool::new(threads);
                let (run, _, stats, _) = sample_glauber_with(&net, 5, 0, &pool);
                assert_eq!(
                    run.outputs, reference.outputs,
                    "width {threads} seed {seed}"
                );
                assert_eq!(run.failures, reference.failures);
                assert_eq!(stats, ref_stats, "width {threads} seed {seed}");
            }
        }
    }

    #[test]
    fn respects_instance_pinning() {
        let g = generators::cycle(8);
        let model = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(8);
        tau.pin(NodeId(0), Value(1));
        let inst = Instance::new(model, tau).unwrap();
        for seed in 0..10 {
            let net = Network::new(inst.clone(), seed);
            let (run, _, _, _) = sample_glauber_with(&net, 8, 0, &ThreadPool::sequential());
            assert_eq!(run.outputs[0], Value(1));
            assert_eq!(run.outputs[1], Value(0), "neighbor of pinned-occupied");
        }
    }

    #[test]
    fn colorings_stay_proper_through_sweeps() {
        let g = generators::cycle(7);
        let model = coloring::model(&g, 4);
        for seed in 0..10 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let (run, _, _, _) = sample_glauber_with(&net, 6, 0, &ThreadPool::sequential());
            let config = Config::from_values(run.outputs);
            assert!(
                coloring::is_proper(&g, &config),
                "seed {seed}: improper coloring"
            );
        }
    }

    #[test]
    fn converges_to_the_target_marginal() {
        let g = generators::cycle(6);
        let model = hardcore::model(&g, 1.0);
        let trials = 20_000usize;
        let mut occupied = 0usize;
        for seed in 0..trials as u64 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let (run, _, _, _) = sample_glauber_with(&net, 24, 0, &ThreadPool::sequential());
            if run.outputs[2] == Value(1) {
                occupied += 1;
            }
        }
        let est = occupied as f64 / trials as f64;
        let exact = distribution::marginal(&model, &PartialConfig::empty(6), NodeId(2)).unwrap()[1];
        assert!(
            (est - exact).abs() < 0.015,
            "glauber {est:.4} vs exact {exact:.4}"
        );
    }

    #[test]
    fn distinct_sweeps_draw_distinct_randomness() {
        // a 1-sweep and a 2-sweep run must disagree on some seed if the
        // second sweep draws fresh randomness
        let mut differs = false;
        for seed in 0..20 {
            let net = hc_net(10, 1.5, seed);
            let (one, _, _, _) = sample_glauber_with(&net, 1, 0, &ThreadPool::sequential());
            let (two, _, _, _) = sample_glauber_with(&net, 2, 0, &ThreadPool::sequential());
            if one.outputs != two.outputs {
                differs = true;
                break;
            }
        }
        assert!(differs, "second sweep never changed the configuration");
    }

    #[test]
    fn stats_count_site_updates_and_locality() {
        let net = hc_net(10, 1.0, 5);
        let (_, schedule, stats, _) = sample_glauber_with(&net, 3, 0, &ThreadPool::sequential());
        assert_eq!(stats.sweeps, 3);
        assert_eq!(stats.site_updates, 30, "10 free sites x 3 sweeps");
        assert_eq!(stats.locality, 1);
        assert!(schedule.rounds > 0);
    }

    #[test]
    fn tv_distance_to_stationarity_is_small() {
        // joint-distribution check on a small cycle, mirroring the
        // chain-rule sampler's test
        let n = 5usize;
        let g = generators::cycle(n);
        let model = hardcore::model(&g, 1.0);
        let trials = 40_000usize;
        let mut samples = Vec::with_capacity(trials);
        for seed in 0..trials as u64 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let (run, _, _, _) = sample_glauber_with(&net, 24, 0, &ThreadPool::sequential());
            samples.push(Config::from_values(run.outputs));
        }
        let emp = metrics::empirical_distribution(&samples);
        let exact = distribution::joint_distribution(&model, &PartialConfig::empty(n)).unwrap();
        let tv = metrics::tv_distance_joint(&emp, &exact);
        assert!(tv < 0.05, "empirical TV {tv}");
    }
}
