//! Uniqueness thresholds, decay rates and round-complexity formulas.
//!
//! The quantities the paper's applications (Corollary 5.3) are stated in:
//!
//! * the hardcore uniqueness threshold
//!   `λ_c(Δ) = (Δ−1)^{Δ−1}/(Δ−2)^Δ`,
//! * the weighted-hypergraph-matching threshold
//!   `λ_c(r, Δ) = (Δ−1)^{Δ−1}/((r−1)(Δ−2)^Δ)`,
//! * the coloring constant `α* ≈ 1.763...` with `α* = e^{1/α*}`,
//! * per-model decay rates `α` for radius planning, and
//! * the round bounds `O(log³ n)` and `O(√Δ·log³ n)`.
//!
//! The threshold formulas are exact (from the paper and its references).
//! The *decay-rate* functions for hardcore and Ising are the exact tree
//! contraction ratios; those for matchings and colorings are
//! Θ-shape surrogates of the cited analyses (Bayati et al.;
//! Gamarnik–Katz–Misra) — the experiment suite *measures* the true rates
//! and reports both (see EXPERIMENTS.md).

/// The hardcore uniqueness threshold `λ_c(Δ) = (Δ−1)^{Δ−1}/(Δ−2)^Δ`
/// (infinite for `Δ ≤ 2`: one-dimensional systems are always unique).
pub fn hardcore_uniqueness_threshold(delta: usize) -> f64 {
    if delta <= 2 {
        return f64::INFINITY;
    }
    let d = delta as f64;
    (d - 1.0).powf(d - 1.0) / (d - 2.0).powf(d)
}

/// The weighted hypergraph matching uniqueness threshold
/// `λ_c(r, Δ) = (Δ−1)^{Δ−1} / ((r−1)·(Δ−2)^Δ)` (paper, Corollary 5.3;
/// Song–Yin–Zhao).
pub fn hypergraph_matching_threshold(rank: usize, delta: usize) -> f64 {
    assert!(rank >= 2, "hypergraph rank must be at least 2");
    if delta <= 2 {
        return f64::INFINITY;
    }
    hardcore_uniqueness_threshold(delta) / (rank as f64 - 1.0)
}

/// The coloring constant `α* ≈ 1.76322`, the positive root of
/// `x = e^{1/x}` (paper, Corollary 5.3): `q ≥ αΔ` colorings of
/// triangle-free graphs mix for `α > α*`.
pub fn alpha_star() -> f64 {
    // fixed-point iteration x ← e^{1/x} converges quickly near 1.76
    let mut x = 1.75f64;
    for _ in 0..128 {
        x = (1.0 / x).exp();
    }
    x
}

/// The exact SSM decay rate of the hardcore model on the `Δ`-regular
/// tree: `(Δ−1)·x*/(1+x*)` where `x*` solves `x = λ/(1+x)^{Δ−1}` —
/// the contraction ratio of Weitz's tree recursion at its fixpoint.
/// Strictly below 1 iff `λ < λ_c(Δ)`.
pub fn hardcore_decay_rate(lambda: f64, delta: usize) -> f64 {
    assert!(lambda >= 0.0, "fugacity must be nonnegative");
    if lambda == 0.0 {
        return 0.0;
    }
    let d = (delta.max(2) - 1) as f64;
    // solve x = λ/(1+x)^d by damped fixpoint iteration
    let mut x = lambda.min(1.0);
    for _ in 0..500 {
        let next = lambda / (1.0 + x).powf(d);
        x = 0.5 * x + 0.5 * next;
    }
    d * x / (1.0 + x)
}

/// The exact tree contraction ratio of the Ising model with edge weight
/// `b = e^{2β}`: `(Δ−1)·|1−b|/(1+b)`. Below 1 iff `e^{2|β|} < Δ/(Δ−2)`.
pub fn ising_decay_rate(beta: f64, delta: usize) -> f64 {
    let b = (2.0 * beta).exp();
    let d = (delta.max(2) - 1) as f64;
    d * (1.0 - b).abs() / (1.0 + b)
}

/// Θ-shape surrogate of the matching (monomer–dimer) decay rate
/// `1 − Ω(1/√(λΔ))` (Bayati–Gamarnik–Katz–Nair–Tetali): we use
/// `1 − 2/(√(4λΔ + 1) + 1)`, which is always `< 1` (matchings mix at
/// every temperature) and approaches 1 like `1 − Θ(1/√(λΔ))`.
pub fn matching_decay_rate(lambda: f64, delta: usize) -> f64 {
    let x = 4.0 * lambda * delta.max(1) as f64;
    1.0 - 2.0 / ((x + 1.0).sqrt() + 1.0)
}

/// Θ-shape surrogate of the triangle-free coloring decay rate for
/// `q ≥ αΔ`: `α*·Δ/q` (below 1 iff `q > α*Δ`, the Gamarnik–Katz–Misra
/// regime).
pub fn coloring_decay_rate(q: usize, delta: usize) -> f64 {
    alpha_star() * delta as f64 / q as f64
}

/// `log₂ n`, clamped below by 1 (round formulas use it as a factor).
pub fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2().max(1.0)
}

/// The `O(log³ n)` round bound of Corollary 5.3 with constant `c`.
pub fn log3_rounds_bound(n: usize, c: f64) -> f64 {
    c * log2n(n).powi(3)
}

/// The `O(√Δ · log³ n)` bound for sampling matchings.
pub fn matchings_rounds_bound(delta: usize, n: usize, c: f64) -> f64 {
    c * (delta.max(1) as f64).sqrt() * log2n(n).powi(3)
}

/// The `O(1/(1−α) · log³ n)` bound of Corollary 5.3 for SSM rate `α`.
pub fn ssm_rounds_bound(alpha: f64, n: usize, c: f64) -> f64 {
    assert!((0.0..1.0).contains(&alpha), "rate must be in [0,1)");
    c / (1.0 - alpha) * log2n(n).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_thresholds() {
        // λ_c(3) = 4, λ_c(4) = 27/16, λ_c(5) = 256/27/... compute directly
        assert!((hardcore_uniqueness_threshold(3) - 4.0).abs() < 1e-12);
        assert!((hardcore_uniqueness_threshold(4) - 27.0 / 16.0).abs() < 1e-12);
        assert!((hardcore_uniqueness_threshold(5) - 256.0 / 243.0 * 4.0 / 4.0).abs() < 0.2);
        assert!(hardcore_uniqueness_threshold(2).is_infinite());
        // λ_c(Δ) decreases in Δ
        assert!(hardcore_uniqueness_threshold(4) > hardcore_uniqueness_threshold(5));
    }

    #[test]
    fn hypergraph_threshold_scales_inversely_with_rank() {
        let a = hypergraph_matching_threshold(2, 4);
        let b = hypergraph_matching_threshold(3, 4);
        assert!((a - 2.0 * b).abs() < 1e-12);
        assert!((a - hardcore_uniqueness_threshold(4)).abs() < 1e-12);
    }

    #[test]
    fn alpha_star_solves_equation() {
        let a = alpha_star();
        assert!((a - (1.0 / a).exp()).abs() < 1e-10);
        assert!((a - 1.763).abs() < 0.001);
    }

    #[test]
    fn hardcore_rate_crosses_one_at_threshold() {
        for delta in [3usize, 4, 5] {
            let lc = hardcore_uniqueness_threshold(delta);
            assert!(
                hardcore_decay_rate(0.8 * lc, delta) < 1.0,
                "below threshold must contract (Δ={delta})"
            );
            assert!(
                hardcore_decay_rate(1.3 * lc, delta) > 1.0,
                "above threshold must expand (Δ={delta})"
            );
            // approximately 1 at the threshold
            let at = hardcore_decay_rate(lc, delta);
            assert!((at - 1.0).abs() < 0.02, "rate at λ_c = {at}");
        }
    }

    #[test]
    fn ising_rate_matches_uniqueness() {
        // Δ=4: unique iff e^{2|β|} < 2
        let unique = ising_decay_rate(-0.3, 4);
        let nonunique = ising_decay_rate(-0.4, 4);
        assert!(unique < 1.0);
        assert!(nonunique > 1.0);
        assert_eq!(ising_decay_rate(0.0, 4), 0.0);
    }

    #[test]
    fn matching_rate_always_below_one() {
        for delta in [2usize, 4, 8, 16] {
            for lambda in [0.5, 1.0, 4.0] {
                let r = matching_decay_rate(lambda, delta);
                assert!((0.0..1.0).contains(&r), "Δ={delta} λ={lambda}: {r}");
            }
        }
        // rate grows with Δ (harder to mix)
        assert!(matching_decay_rate(1.0, 16) > matching_decay_rate(1.0, 4));
    }

    #[test]
    fn coloring_rate_below_one_past_alpha_star() {
        assert!(coloring_decay_rate(8, 4) < 1.0); // q = 2Δ > α*Δ
        assert!(coloring_decay_rate(6, 4) > 1.0); // q = 1.5Δ < α*Δ
    }

    #[test]
    fn round_bounds_shapes() {
        assert!(log3_rounds_bound(256, 1.0) > log3_rounds_bound(16, 1.0));
        assert!(matchings_rounds_bound(9, 64, 1.0) > matchings_rounds_bound(4, 64, 1.0));
        let near = ssm_rounds_bound(0.9, 64, 1.0);
        let far = ssm_rounds_bound(0.5, 64, 1.0);
        assert!(near > far);
    }
}
