//! Approximate inference from approximate sampling (paper, Theorem 3.4).
//!
//! If a LOCAL sampler has output distribution `μ̂` with
//! `d_TV(μ̂, μ^τ) ≤ δ` conditioned on success and failure mass `ε₀`, then
//! the *unconditioned* per-node output marginals `μ̃_v` satisfy
//! `d_TV(μ̃_v, μ^τ_v) ≤ δ + ε₀` — so reading off the sampler's one-node
//! output distribution solves inference with error `δ + ε₀` in the same
//! round complexity.
//!
//! **Substitution (documented in DESIGN.md §6):** the paper reconstructs
//! `μ̃_v` *exactly* at `v` by enumerating the random bits the sampler
//! consumes inside `v`'s view. Enumerating bit strings is infeasible
//! verbatim, so we estimate `μ̃_v` by Monte Carlo over independent
//! executions (fresh network seeds), with the standard
//! Dvoretzky–Kiefer–Wolfowitz/Hoeffding repetition bound
//! `k ≥ ln(2q/η)/(2·δ_s²)` for estimation error `δ_s` at confidence
//! `1 − η`. Locality is untouched — each execution is a LOCAL run — only
//! the per-node post-processing differs.

use std::sync::Arc;

use lds_gibbs::Value;
use lds_localnet::Network;
use lds_oracle::InferenceOracle;
use lds_runtime::ThreadPool;

use crate::sampler::SequentialSampler;
use lds_graph::NodeId;
use lds_localnet::scheduler;

/// Result of the sampling→inference reduction.
#[derive(Clone, Debug)]
pub struct SampledMarginals {
    /// Estimated marginal per node (length-`q` vectors).
    pub marginals: Vec<Vec<f64>>,
    /// Fraction of executions that failed (`ε₀` estimate).
    pub failure_rate: f64,
    /// Rounds of a single sampler execution (the reduction's complexity).
    pub rounds: usize,
    /// Number of Monte Carlo executions.
    pub repetitions: usize,
}

/// Number of repetitions needed for Monte Carlo estimation error `δ_s`
/// per marginal entry at confidence `1 − η` (Hoeffding + union bound over
/// `q` entries and `n` nodes).
pub fn repetitions_for(n: usize, q: usize, delta_s: f64, eta: f64) -> usize {
    assert!(delta_s > 0.0 && eta > 0.0, "positive error and confidence");
    let union = (2.0 * (q * n.max(1)) as f64 / eta).ln();
    (union / (2.0 * delta_s * delta_s)).ceil() as usize
}

/// Estimates every node's marginal `μ̃_v` by repeated execution of the
/// Theorem 3.2 LOCAL sampler (error `δ` per run), using `repetitions`
/// independent runs with network seeds `seed₀, seed₀+1, ...`.
///
/// Failed executions contribute their outputs too (the reduction reads
/// the *unconditioned* marginal, which is what the `δ + ε₀` bound is
/// about); the failure rate is reported separately.
pub fn marginals_by_sampling<O: InferenceOracle + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    delta: f64,
    repetitions: usize,
    seed0: u64,
) -> SampledMarginals {
    marginals_by_sampling_with(
        net,
        oracle,
        delta,
        repetitions,
        seed0,
        &ThreadPool::sequential(),
    )
}

/// [`marginals_by_sampling`] with the independent Monte Carlo executions
/// fanned out across the pool. Each repetition derives its own network
/// seed, so the estimate is bit-identical at any pool width.
pub fn marginals_by_sampling_with<O: InferenceOracle + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    delta: f64,
    repetitions: usize,
    seed0: u64,
    pool: &ThreadPool,
) -> SampledMarginals {
    let n = net.node_count();
    let q = net.instance().model().alphabet_size();
    let mut counts = vec![vec![0usize; q]; n];
    let mut failures = 0usize;
    let mut rounds = 0usize;
    // tally chunk by chunk so peak memory stays O(chunk · n) no matter
    // how many repetitions the Hoeffding bound asks for
    let chunk = (pool.threads() * 16).max(64);
    let reps: Vec<u64> = (0..repetitions as u64).collect();
    for chunk_reps in reps.chunks(chunk) {
        // ship owned context to the pool's 'static jobs: the instance by
        // Arc, the oracle by clone (cheap parameter struct)
        let instance = net.shared_instance();
        let oracle = oracle.clone();
        let runs = pool.par_map(chunk_reps, move |&rep| {
            let run_net = Network::from_shared(Arc::clone(&instance), seed0.wrapping_add(rep));
            let sampler = SequentialSampler::new(oracle.clone(), delta);
            let (run, _schedule) = scheduler::run_slocal_in_local(&run_net, &sampler, 0);
            run
        });
        for run in runs {
            rounds = rounds.max(run.rounds);
            if !run.succeeded() {
                failures += 1;
            }
            for v in 0..n {
                counts[v][run.outputs[v].index()] += 1;
            }
        }
    }
    let marginals = counts
        .into_iter()
        .map(|c| {
            c.into_iter()
                .map(|x| x as f64 / repetitions as f64)
                .collect()
        })
        .collect();
    SampledMarginals {
        marginals,
        failure_rate: failures as f64 / repetitions as f64,
        rounds,
        repetitions,
    }
}

/// Convenience: the marginal of a single node from the reduction (for
/// tests and experiments that only probe one vertex).
pub fn node_marginal_by_sampling<O: InferenceOracle + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    delta: f64,
    v: NodeId,
    repetitions: usize,
    seed0: u64,
) -> Vec<f64> {
    let q = net.instance().model().alphabet_size();
    let mut counts = vec![0usize; q];
    for rep in 0..repetitions {
        let run_net = Network::from_shared(net.shared_instance(), seed0.wrapping_add(rep as u64));
        let sampler = SequentialSampler::new(oracle.clone(), delta);
        let (run, _) = scheduler::run_slocal_in_local(&run_net, &sampler, 0);
        counts[run.outputs[v.index()].index()] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / repetitions as f64)
        .collect()
}

/// The per-value occupation indicator of one execution (used by
/// experiment tables).
pub fn indicator(output: Value, q: usize) -> Vec<f64> {
    let mut e = vec![0.0; q];
    e[output.index()] = 1.0;
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::models::two_spin::TwoSpinParams;
    use lds_gibbs::{distribution, metrics, PartialConfig};
    use lds_graph::generators;
    use lds_localnet::Instance;
    use lds_oracle::{DecayRate, TwoSpinSawOracle};

    #[test]
    fn repetition_bound_is_monotone() {
        assert!(repetitions_for(10, 2, 0.01, 0.01) > repetitions_for(10, 2, 0.05, 0.01));
        assert!(repetitions_for(100, 2, 0.05, 0.01) > repetitions_for(10, 2, 0.05, 0.01));
    }

    #[test]
    fn recovered_marginals_match_exact() {
        let g = generators::cycle(6);
        let model = hardcore::model(&g, 1.0);
        let net = Network::new(Instance::unconditioned(model.clone()), 5);
        let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
        let result = marginals_by_sampling(&net, &oracle, 0.02, 4000, 100);
        let tau = PartialConfig::empty(6);
        for v in g.nodes() {
            let exact = distribution::marginal(&model, &tau, v).unwrap();
            let err = metrics::tv_distance(&exact, &result.marginals[v.index()]);
            // δ + ε₀ + Monte Carlo noise
            assert!(
                err < 0.02 + result.failure_rate + 0.03,
                "node {v}: err {err} (failure rate {})",
                result.failure_rate
            );
        }
        assert!(result.rounds > 0);
        assert_eq!(result.repetitions, 4000);
    }

    #[test]
    fn single_node_variant_agrees() {
        let g = generators::cycle(6);
        let model = hardcore::model(&g, 1.5);
        let net = Network::new(Instance::unconditioned(model.clone()), 5);
        let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.5), DecayRate::new(0.5, 2.0));
        let mu = node_marginal_by_sampling(&net, &oracle, 0.05, NodeId(2), 3000, 7);
        let exact = distribution::marginal(&model, &PartialConfig::empty(6), NodeId(2)).unwrap();
        assert!(metrics::tv_distance(&exact, &mu) < 0.06);
    }

    #[test]
    fn indicator_is_point_mass() {
        assert_eq!(indicator(Value(1), 3), vec![0.0, 1.0, 0.0]);
    }
}
