//! Approximate sampling from approximate inference (paper, Theorem 3.2).
//!
//! The reduction is the classic chain-rule sampler made local: an SLOCAL
//! algorithm scans the nodes in an arbitrary order; at each free node
//! `v_i` it queries the inference oracle for the conditional marginal
//! `μ̂^{τ ∧ σ_{i-1}}_{v_i}` (error `δ/n`) and samples `σ(v_i)` from it
//! with `v_i`'s private randomness. A coupling argument gives
//! `d_TV(μ̂, μ^τ) ≤ δ` for the output distribution `μ̂`.
//!
//! The LOCAL version follows by the SLOCAL→LOCAL transformation
//! (Lemma 3.1, [`lds_localnet::scheduler`]): time complexity
//! `O(t(n, δ/n) · log² n)`.

use std::time::{Duration, Instant};

use lds_gibbs::{distribution, PartialConfig, Value};
use lds_graph::NodeId;
use lds_localnet::local::LocalRun;
use lds_localnet::scheduler::{self, ChromaticSchedule, ShardingStats};
use lds_localnet::slocal::{self, SlocalAlgorithm, SlocalKernel, SlocalRun};
use lds_localnet::Network;
use lds_oracle::InferenceOracle;
use lds_runtime::{CancelToken, Cancelled, ThreadPool};

/// Randomness stream tag for the sequential sampler (distinct streams
/// decorrelate passes that share the network seed).
pub const STREAM_SEQ_SAMPLER: u64 = 1;

/// The Theorem 3.2 sequential sampler as an SLOCAL algorithm.
///
/// Output: each node's sampled value `Y_v ∈ Σ`; the sampler itself never
/// fails (failures only enter through the LOCAL transformation).
///
/// The sampler **owns** its oracle (oracles are cheap parameter structs;
/// clone one in) so that, as the chromatic schedule's kernel, it can
/// ship to the pool's long-lived workers inside a `'static` job.
#[derive(Clone, Debug)]
pub struct SequentialSampler<O> {
    oracle: O,
    delta: f64,
}

impl<O: InferenceOracle> SequentialSampler<O> {
    /// Creates the sampler with output total-variation error `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `δ ≤ 0`.
    pub fn new(oracle: O, delta: f64) -> Self {
        assert!(delta > 0.0, "error target must be positive");
        SequentialSampler { oracle, delta }
    }

    /// The per-node inference error `δ/n` the oracle is queried with.
    pub fn per_node_delta(&self, n: usize) -> f64 {
        self.delta / n.max(1) as f64
    }

    /// The output error target `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

/// The sampler's per-node step is a pinning-extension kernel: sample
/// `Y_v ~ μ̂^{τ ∧ σ}_v` with `v`'s private randomness. Reads only pins
/// within the oracle radius `t` — the locality contract that makes the
/// chromatic cluster-parallel simulation execution-equivalent.
impl<O: InferenceOracle + Sync> SlocalKernel for SequentialSampler<O> {
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool) {
        let model = net.instance().model();
        let n = model.node_count();
        let t = self.oracle.radius(n, self.per_node_delta(n));
        let mu = self.oracle.marginal(model, sigma, v, t);
        let mut rng = net.node_rng(v, STREAM_SEQ_SAMPLER);
        (distribution::sample_from_marginal(&mu, &mut rng), false)
    }
}

impl<O: InferenceOracle + Sync> SlocalAlgorithm for SequentialSampler<O> {
    type Output = Value;

    fn locality(&self, n: usize) -> usize {
        self.oracle.radius(n, self.per_node_delta(n)) + 1
    }

    fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<Value> {
        slocal::run_kernel_sequential(net, self, order)
    }
}

/// Runs the Theorem 3.2 sampler in the LOCAL model: sequential sampler
/// composed with the Lemma 3.1 transformation. Conditioned on no failure
/// the output follows `μ̂_{I,π}` with `d_TV(μ̂, μ^τ) ≤ δ` for the
/// schedule's ordering `π`.
pub fn sample_local<O: InferenceOracle + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    delta: f64,
    stream: u64,
) -> (LocalRun<Value>, ChromaticSchedule) {
    let (run, schedule, _timings) =
        sample_local_with(net, oracle, delta, stream, &ThreadPool::sequential());
    (run, schedule)
}

/// Per-phase wall-clock of a [`sample_local_with`] execution.
#[derive(Clone, Debug, Default)]
pub struct ApproxSampleTimings {
    /// Decomposition + chromatic-schedule construction.
    pub schedule: Duration,
    /// The chain-rule sampling scan.
    pub scan: Duration,
    /// Halo/bytes-cloned telemetry of the chromatic scan.
    pub sharding: ShardingStats,
}

/// [`sample_local`] with same-color clusters simulated concurrently on
/// `pool` — the parallel form of Lemma 3.1. The result is bit-identical
/// to the sequential version at any pool width; per-phase wall-clock
/// times are returned alongside.
pub fn sample_local_with<O: InferenceOracle + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    delta: f64,
    stream: u64,
    pool: &ThreadPool,
) -> (LocalRun<Value>, ChromaticSchedule, ApproxSampleTimings) {
    sample_local_cancellable_with(net, oracle, delta, stream, pool, &CancelToken::never())
        .expect("a never-token cannot cancel")
}

/// [`sample_local_with`] with cooperative cancellation threaded into the
/// chromatic runner (checked between color rounds). Checks consume no
/// randomness, so a completed run is bit-identical to the uncancellable
/// one; a cancelled run returns `Err(`[`Cancelled`]`)` with no partial
/// result.
pub fn sample_local_cancellable_with<O: InferenceOracle + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    delta: f64,
    stream: u64,
    pool: &ThreadPool,
    cancel: &CancelToken,
) -> Result<(LocalRun<Value>, ChromaticSchedule, ApproxSampleTimings), Cancelled> {
    let sampler = SequentialSampler::new(oracle.clone(), delta);
    let n = net.node_count();
    let start = Instant::now();
    cancel.check()?;
    let schedule = scheduler::chromatic_schedule(net, sampler.locality(n), stream);
    let schedule_wall = start.elapsed();
    let start = Instant::now();
    let (run, sharding) =
        scheduler::run_kernel_chromatic_cancellable(net, &sampler, &schedule, pool, cancel)?;
    let scan_wall = start.elapsed();
    let failures: Vec<bool> = (0..n)
        .map(|v| run.failures[v] || schedule.failed[v])
        .collect();
    Ok((
        LocalRun {
            outputs: run.outputs,
            failures,
            rounds: schedule.rounds,
        },
        schedule,
        ApproxSampleTimings {
            schedule: schedule_wall,
            scan: scan_wall,
            sharding,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::two_spin::TwoSpinParams;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_gibbs::{metrics, Config, PartialConfig};
    use lds_graph::{generators, ordering};
    use lds_localnet::Instance;
    use lds_oracle::{DecayRate, EnumerationOracle, TwoSpinSawOracle};

    fn hc_net(n: usize, lambda: f64, seed: u64) -> Network {
        let g = generators::cycle(n);
        Network::new(Instance::unconditioned(hardcore::model(&g, lambda)), seed)
    }

    fn saw(lambda: f64) -> TwoSpinSawOracle {
        TwoSpinSawOracle::new(TwoSpinParams::hardcore(lambda), DecayRate::new(0.5, 2.0))
    }

    #[test]
    fn outputs_are_independent_sets() {
        let oracle = saw(1.5);
        for seed in 0..20 {
            let net = hc_net(9, 1.5, seed);
            let sampler = SequentialSampler::new(oracle.clone(), 0.1);
            let order = ordering::identity(net.instance().model().graph());
            let run = sampler.run_sequential(&net, &order);
            let config = Config::from_values(run.outputs.clone());
            assert!(
                net.instance().model().weight(&config) > 0.0,
                "seed {seed} produced an infeasible configuration"
            );
        }
    }

    #[test]
    fn empirical_distribution_close_to_target() {
        // small cycle: compare empirical joint distribution to exact
        let n = 5usize;
        let g = generators::cycle(n);
        let model = hardcore::model(&g, 1.0);
        let oracle = saw(1.0);
        let trials = 40_000usize;
        let mut samples = Vec::with_capacity(trials);
        for seed in 0..trials as u64 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let sampler = SequentialSampler::new(oracle.clone(), 0.02);
            let order = ordering::identity(&g);
            let run = sampler.run_sequential(&net, &order);
            samples.push(Config::from_values(run.outputs));
        }
        let emp = metrics::empirical_distribution(&samples);
        let exact = distribution::joint_distribution(&model, &PartialConfig::empty(n)).unwrap();
        let tv = metrics::tv_distance_joint(&emp, &exact);
        // sampling noise ~ sqrt(#configs / trials) ≈ 0.02
        assert!(tv < 0.05, "empirical TV {tv}");
    }

    #[test]
    fn honors_pinning() {
        let g = generators::cycle(8);
        let model = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(8);
        tau.pin(NodeId(0), Value(1));
        let inst = Instance::new(model, tau).unwrap();
        let oracle = saw(1.0);
        for seed in 0..10 {
            let net = Network::new(inst.clone(), seed);
            let sampler = SequentialSampler::new(oracle.clone(), 0.1);
            let run =
                sampler.run_sequential(&net, &ordering::identity(net.instance().model().graph()));
            assert_eq!(run.outputs[0], Value(1));
            assert_eq!(run.outputs[1], Value(0), "neighbor of pinned-occupied");
        }
    }

    #[test]
    fn local_version_succeeds_and_matches_feasibility() {
        let net = hc_net(12, 1.0, 3);
        let oracle = saw(1.0);
        let (run, schedule) = sample_local(&net, &oracle, 0.1, 0);
        assert!(run.succeeded(), "decomposition failed unexpectedly");
        assert!(schedule.rounds > 0);
        let config = Config::from_values(run.outputs);
        assert!(net.instance().model().weight(&config) > 0.0);
    }

    #[test]
    fn colorings_with_enumeration_oracle() {
        let g = generators::cycle(7);
        let model = coloring::model(&g, 3);
        let oracle = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
        for seed in 0..10 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let sampler = SequentialSampler::new(oracle.clone(), 0.1);
            let run = sampler.run_sequential(&net, &ordering::identity(&g));
            let config = Config::from_values(run.outputs);
            assert!(
                coloring::is_proper(&g, &config),
                "seed {seed}: improper coloring"
            );
        }
    }

    #[test]
    fn different_orders_same_target_distribution() {
        // marginal frequencies should agree across scan orders
        let g = generators::cycle(6);
        let model = hardcore::model(&g, 1.0);
        let oracle = saw(1.0);
        let trials = 20_000usize;
        let mut occ_id = 0usize;
        let mut occ_rev = 0usize;
        for seed in 0..trials as u64 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let sampler = SequentialSampler::new(oracle.clone(), 0.02);
            let a = sampler.run_sequential(&net, &ordering::identity(&g));
            if a.outputs[3] == Value(1) {
                occ_id += 1;
            }
            let net2 = Network::new(Instance::unconditioned(model.clone()), seed + 1_000_000);
            let b = sampler.run_sequential(&net2, &ordering::reverse(&g));
            if b.outputs[3] == Value(1) {
                occ_rev += 1;
            }
        }
        let f1 = occ_id as f64 / trials as f64;
        let f2 = occ_rev as f64 / trials as f64;
        assert!(
            (f1 - f2).abs() < 0.02,
            "order changed marginals: {f1} vs {f2}"
        );
    }

    use lds_gibbs::distribution;
}
