//! Baseline samplers the distributed algorithms are compared against.
//!
//! * [`glauber_dynamics`] — single-site Glauber dynamics (heat-bath MCMC),
//!   the classic *sequential* sampler; approximate, with mixing time
//!   `O(n log n)` in the uniqueness regime. Each update is local, but the
//!   chain is inherently sequential — the comparison point motivating the
//!   paper's parallel samplers.
//! * [`global_chain_rule`] — the trivial `diam(G)`-round LOCAL algorithm:
//!   gather the whole graph at every node and sample exactly with shared
//!   randomness. Exact but maximally non-local; its "round count" is the
//!   diameter, the quantity the paper's `Ω(diam)` lower bound talks
//!   about.

use lds_gibbs::{distribution, Config, GibbsModel, PartialConfig, Value};
use lds_graph::{traversal, NodeId};
use rand::Rng;

/// One exact sample via whole-graph gathering (the `diam`-round trivial
/// algorithm). Returns the configuration and the simulated round count
/// (the graph's diameter).
pub fn global_chain_rule<R: Rng + ?Sized>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    rng: &mut R,
) -> (Config, usize) {
    let config = distribution::sample_exact(model, pinning, rng);
    let rounds = traversal::diameter(model.graph()) as usize;
    (config, rounds)
}

/// Runs single-site Glauber dynamics for `steps` updates starting from a
/// greedy feasible extension of the pinning. Pinned nodes are never
/// updated. Returns `None` if no locally feasible starting state exists.
///
/// Each update resamples one uniformly random free node from its exact
/// conditional distribution given its neighborhood — computable from the
/// factors touching the node only.
pub fn glauber_dynamics<R: Rng + ?Sized>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    steps: usize,
    rng: &mut R,
) -> Option<Config> {
    let start = lds_gibbs::admissible::greedy_feasible_extension(model, pinning)?;
    let mut config = start.to_config();
    let free: Vec<NodeId> = pinning.free_nodes().collect();
    if free.is_empty() {
        return Some(config);
    }
    let q = model.alphabet_size();
    for _ in 0..steps {
        let v = free[rng.gen_range(0..free.len())];
        let mut weights = vec![0.0f64; q];
        for (c, w) in weights.iter_mut().enumerate() {
            let mut local = 1.0f64;
            for &fi in model.factors_touching(v) {
                let f = &model.factors()[fi];
                local *= f
                    .eval_partial(|s| {
                        Some(if s == v {
                            Value::from_index(c)
                        } else {
                            config.get(s)
                        })
                    })
                    .expect("full config");
                if local == 0.0 {
                    break;
                }
            }
            *w = local;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            continue; // frozen site (cannot happen for soft models)
        }
        let val = distribution::sample_from_marginal(&weights, rng);
        config.set(v, val);
    }
    Some(config)
}

/// Estimates the marginal at `v` by averaging Glauber samples (each run
/// restarted independently with `steps` updates).
pub fn glauber_marginal<R: Rng + ?Sized>(
    model: &GibbsModel,
    pinning: &PartialConfig,
    v: NodeId,
    steps: usize,
    samples: usize,
    rng: &mut R,
) -> Vec<f64> {
    let q = model.alphabet_size();
    let mut counts = vec![0usize; q];
    let mut produced = 0usize;
    for _ in 0..samples {
        if let Some(c) = glauber_dynamics(model, pinning, steps, rng) {
            counts[c.get(v).index()] += 1;
            produced += 1;
        }
    }
    if produced == 0 {
        return vec![1.0 / q as f64; q];
    }
    counts
        .into_iter()
        .map(|c| c as f64 / produced as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::metrics;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glauber_preserves_feasibility() {
        let g = generators::cycle(8);
        let m = hardcore::model(&g, 1.5);
        let tau = PartialConfig::empty(8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let c = glauber_dynamics(&m, &tau, 200, &mut rng).unwrap();
            assert!(m.weight(&c) > 0.0);
        }
    }

    #[test]
    fn glauber_converges_to_target_marginal() {
        let g = generators::cycle(6);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(6);
        let mut rng = StdRng::seed_from_u64(9);
        let est = glauber_marginal(&m, &tau, NodeId(0), 400, 4000, &mut rng);
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        assert!(
            metrics::tv_distance(&exact, &est) < 0.03,
            "glauber {est:?} vs exact {exact:?}"
        );
    }

    #[test]
    fn glauber_respects_pins() {
        let g = generators::path(5);
        let m = coloring::model(&g, 3);
        let mut tau = PartialConfig::empty(5);
        tau.pin(NodeId(2), Value(1));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let c = glauber_dynamics(&m, &tau, 100, &mut rng).unwrap();
            assert_eq!(c.get(NodeId(2)), Value(1));
            assert!(coloring::is_proper(&g, &c));
        }
    }

    #[test]
    fn global_baseline_rounds_is_diameter() {
        let g = generators::path(9);
        let m = hardcore::model(&g, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let (c, rounds) = global_chain_rule(&m, &PartialConfig::empty(9), &mut rng);
        assert_eq!(rounds, 8);
        assert!(m.weight(&c) > 0.0);
    }

    #[test]
    fn fully_pinned_instance_returns_immediately() {
        let g = generators::path(3);
        let m = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(3);
        tau.pin(NodeId(0), Value(0));
        tau.pin(NodeId(1), Value(1));
        tau.pin(NodeId(2), Value(0));
        let mut rng = StdRng::seed_from_u64(0);
        let c = glauber_dynamics(&m, &tau, 50, &mut rng).unwrap();
        assert_eq!(c.get(NodeId(1)), Value(1));
    }
}
