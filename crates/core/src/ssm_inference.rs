//! Strong spatial mixing ⟺ approximate inference (paper, Theorem 5.1).
//!
//! **Direction 1 (inference ⟹ SSM).** If a deterministic LOCAL inference
//! algorithm has complexity `t(n, δ)`, then for any two feasible pinnings
//! `σ, τ` differing only at distance `≥ t+1` from `v`, the algorithm
//! cannot distinguish the instances at `v`, so
//! `d_TV(μ^σ_v, μ^τ_v) ≤ 2·min{δ : t(n, δ) ≤ t − 1}` — the class
//! exhibits SSM with rate `δ_n(t) = 2·min{δ : t(n,δ) ≤ t−1}`.
//! [`implied_ssm_rate`] computes this for decay-planned oracles and
//! [`verify_indistinguishability`] checks the mechanism itself.
//!
//! **Direction 2 (SSM ⟹ inference).** Given SSM with rate `δ_n(·)` and a
//! locally admissible local Gibbs distribution, the enumeration oracle
//! ([`lds_oracle::EnumerationOracle`]) *is* the paper's algorithm:
//! radius `t(n, δ) = min{t : δ_n(t) ≤ δ} + O(1)`.
//! [`inference_from_ssm`] packages it.

use lds_gibbs::{GibbsModel, PartialConfig};
use lds_graph::NodeId;
use lds_oracle::{DecayRate, EnumerationOracle, InferenceOracle};

/// Direction 1 quantitatively: an oracle with radius planning
/// `t(n, δ) = ⌈log_{1/α}(c/δ)⌉` implies SSM with rate
/// `δ_n(t) = 2·c·α^{t−1}` (the smallest `δ` the radius-`t−1` algorithm
/// can promise, doubled by the triangle inequality).
pub fn implied_ssm_rate(oracle_rate: DecayRate) -> DecayRate {
    DecayRate::new(
        oracle_rate.alpha(),
        2.0 * oracle_rate.constant() / oracle_rate.alpha(),
    )
}

/// Direction 2: the SSM-based inference algorithm (Theorem 5.1's
/// construction) for a class with mixing rate `rate`.
pub fn inference_from_ssm(rate: DecayRate) -> EnumerationOracle {
    EnumerationOracle::new(rate)
}

/// The indistinguishability mechanism behind Direction 1: two pinnings
/// that agree on `B_t(v)` must produce identical outputs at `v` for any
/// radius-`t` local oracle. Returns the maximum absolute difference of
/// the two outputs (0 for honest local algorithms).
pub fn verify_indistinguishability<O: InferenceOracle>(
    oracle: &O,
    model: &GibbsModel,
    sigma: &PartialConfig,
    tau: &PartialConfig,
    v: NodeId,
    t: usize,
) -> f64 {
    let a = oracle.marginal(model, sigma, v, t);
    let b = oracle.marginal(model, tau, v, t);
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::models::two_spin::TwoSpinParams;
    use lds_gibbs::{distribution, metrics, Value};
    use lds_graph::{generators, traversal};
    use lds_oracle::TwoSpinSawOracle;

    #[test]
    fn implied_rate_is_weaker_by_the_triangle_inequality() {
        let oracle_rate = DecayRate::new(0.5, 2.0);
        let ssm = implied_ssm_rate(oracle_rate);
        assert_eq!(ssm.alpha(), 0.5);
        // δ_n(t) = 2·c·α^{t-1} = (2c/α)·α^t
        assert!((ssm.constant() - 8.0).abs() < 1e-12);
        assert!(ssm.error_at(3) > oracle_rate.error_at(3));
    }

    #[test]
    fn local_oracles_cannot_see_far_disagreements() {
        let g = generators::cycle(16);
        let m = hardcore::model(&g, 1.2);
        // two pinnings differing only at node 8, far from node 0
        let mut sigma = PartialConfig::empty(16);
        sigma.pin(NodeId(8), Value(0));
        let mut tau = PartialConfig::empty(16);
        tau.pin(NodeId(8), Value(1));
        let d = traversal::bfs_distances(&g, NodeId(0))[8] as usize;
        let t = d - 1; // strictly less than the distance
        let saw = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.2), DecayRate::new(0.5, 2.0));
        let diff = verify_indistinguishability(&saw, &m, &sigma, &tau, NodeId(0), t);
        assert_eq!(
            diff, 0.0,
            "radius-{t} oracle distinguished distance-{d} pins"
        );
        let enumo = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
        // enumeration oracle peeks t + ℓ; stay one step shorter
        let diff2 = verify_indistinguishability(&enumo, &m, &sigma, &tau, NodeId(0), t - 1);
        assert_eq!(diff2, 0.0);
    }

    #[test]
    fn ssm_implies_inference_with_planned_radius() {
        // direction 2 end-to-end: enumeration oracle with the model's
        // measured rate achieves the requested error
        let g = generators::cycle(14);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(14);
        // hardcore on a cycle mixes at rate ≤ λ/(1+λ)² ≈ 0.25; use 0.5
        let oracle = inference_from_ssm(DecayRate::new(0.5, 2.0));
        for delta in [0.2, 0.05, 0.01] {
            let t = oracle.radius(14, delta);
            let est = oracle.marginal(&m, &tau, NodeId(3), t);
            let exact = distribution::marginal(&m, &tau, NodeId(3)).unwrap();
            let err = metrics::tv_distance(&exact, &est);
            assert!(err <= delta, "δ={delta}: err {err} at radius {t}");
        }
    }

    #[test]
    fn ssm_bound_is_respected_empirically() {
        // the SSM inequality itself: dTV(μ^σ_v, μ^τ_v) ≤ δ_n(dist)
        let g = generators::cycle(12);
        let m = hardcore::model(&g, 1.0);
        let rate = DecayRate::new(0.5, 2.0);
        for d in 2..6usize {
            let mut sigma = PartialConfig::empty(12);
            sigma.pin(NodeId::from_index(d), Value(0));
            let mut tau = PartialConfig::empty(12);
            tau.pin(NodeId::from_index(d), Value(1));
            let mu_s = distribution::marginal(&m, &sigma, NodeId(0)).unwrap();
            let mu_t = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
            let tv = metrics::tv_distance(&mu_s, &mu_t);
            assert!(
                tv <= rate.error_at(d),
                "distance {d}: tv {tv} > bound {}",
                rate.error_at(d)
            );
        }
    }
}
