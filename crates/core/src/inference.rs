//! Approximate inference as a LOCAL algorithm.
//!
//! The *approximate inference* problem (paper, Section 2): given an
//! instance `(G, x, τ)` and error `δ`, every node `v` outputs an estimate
//! `μ̂_v` with `d_TV(μ̂_v, μ^τ_v) ≤ δ`.
//!
//! [`LocalInference`] wraps any [`InferenceOracle`] as a LOCAL algorithm:
//! each node gathers its radius-`t(n, δ)` view and runs the oracle *inside
//! the view* (restricted model, restricted pinning), so locality is
//! enforced by construction.
//!
//! Proposition 3.3 (inference algorithms can be assumed deterministic and
//! failure-free) is realized structurally: both shipped oracles are
//! deterministic functions of the view and never fail, so the failure
//! bits are always 0.

use lds_localnet::local::{LocalAlgorithm, NodeOutcome};
use lds_localnet::View;
use lds_oracle::InferenceOracle;

/// The approximate-inference LOCAL algorithm built from an oracle.
///
/// Output at each node: the estimated marginal distribution `μ̂_v` as a
/// length-`q` probability vector.
#[derive(Clone, Debug)]
pub struct LocalInference<'a, O> {
    oracle: &'a O,
    delta: f64,
}

impl<'a, O: InferenceOracle> LocalInference<'a, O> {
    /// Creates the algorithm for total-variation error `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `δ ≤ 0`.
    pub fn new(oracle: &'a O, delta: f64) -> Self {
        assert!(delta > 0.0, "error target must be positive");
        LocalInference { oracle, delta }
    }

    /// The error target `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The wrapped oracle.
    pub fn oracle(&self) -> &O {
        self.oracle
    }
}

impl<O: InferenceOracle> LocalAlgorithm for LocalInference<'_, O> {
    type Output = Vec<f64>;

    fn radius(&self, n: usize) -> usize {
        // the oracle peeks one locality-width past its radius for the
        // frontier ring; the +ℓ is folded into the oracle's own gather,
        // so the LOCAL radius is t + ℓ with ℓ = O(1). We charge t + 1
        // for the pairwise models shipped here.
        self.oracle.radius(n, self.delta) + 1
    }

    fn run_at(&self, view: &View) -> NodeOutcome<Vec<f64>> {
        let t = view.radius().saturating_sub(1);
        let marginal = self
            .oracle
            .marginal(view.model(), view.pinning(), view.center_local(), t);
        NodeOutcome::ok(marginal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::models::two_spin::TwoSpinParams;
    use lds_gibbs::{distribution, metrics, PartialConfig};
    use lds_graph::{generators, NodeId};
    use lds_localnet::local::run_local;
    use lds_localnet::{Instance, Network};
    use lds_oracle::{DecayRate, EnumerationOracle, TwoSpinSawOracle};

    #[test]
    fn all_nodes_receive_marginals_within_delta() {
        let g = generators::cycle(10);
        let m = hardcore::model(&g, 1.0);
        let inst = Instance::unconditioned(m.clone());
        let net = Network::new(inst, 1);
        let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
        let algo = LocalInference::new(&oracle, 0.05);
        let run = run_local(&net, &algo);
        assert!(run.succeeded());
        let tau = PartialConfig::empty(10);
        for v in g.nodes() {
            let exact = distribution::marginal(&m, &tau, v).unwrap();
            let err = metrics::tv_distance(&exact, &run.outputs[v.index()]);
            assert!(err <= 0.05, "node {v}: err {err}");
        }
    }

    #[test]
    fn view_restriction_matches_global_oracle() {
        // running the oracle inside the view equals running it globally:
        // the oracle only reads the ball either way.
        let g = generators::torus(4, 4);
        let m = hardcore::model(&g, 0.8);
        let net = Network::new(Instance::unconditioned(m.clone()), 3);
        let oracle = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
        let algo = LocalInference::new(&oracle, 0.25);
        let run = run_local(&net, &algo);
        let t = oracle.radius(16, 0.25);
        let tau = PartialConfig::empty(16);
        for v in [NodeId(0), NodeId(5), NodeId(10)] {
            let global = oracle.marginal(&m, &tau, v, t);
            let local = &run.outputs[v.index()];
            assert!(
                metrics::tv_distance(&global, local) < 1e-9,
                "node {v}: view-restricted oracle diverged"
            );
        }
    }

    #[test]
    fn deterministic_and_failure_free() {
        // Proposition 3.3: inference needs no randomness and no failures.
        let g = generators::cycle(8);
        let net = Network::new(Instance::unconditioned(hardcore::model(&g, 1.2)), 9);
        let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.2), DecayRate::new(0.5, 2.0));
        let algo = LocalInference::new(&oracle, 0.1);
        let a = run_local(&net, &algo);
        let b = run_local(&net, &algo);
        assert!(a.succeeded() && b.succeeded());
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_delta() {
        let oracle = TwoSpinSawOracle::new(TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
        let _ = LocalInference::new(&oracle, 0.0);
    }
}
