//! The paper's primary contribution: local distributed sampling and
//! counting algorithms and the reductions between them.
//!
//! Feng & Yin, *On Local Distributed Sampling and Counting* (PODC 2018)
//! prove, for self-reducible classes of instances in the LOCAL model:
//!
//! | Paper result | Module |
//! |---|---|
//! | Approximate inference as a LOCAL algorithm (and Prop. 3.3 derandomization) | [`inference`] |
//! | Theorem 3.2: inference ⟹ approximate sampling (SLOCAL sequential sampler + Lemma 3.1) | [`sampler`] |
//! | Theorem 3.4: sampling ⟹ inference | [`sampling_to_inference`] |
//! | Theorem 4.2 / Prop. 4.3: the distributed JVV exact sampler (local rejection sampling) | [`jvv`] |
//! | Theorem 5.1: inference ⟺ strong spatial mixing | [`ssm_inference`] |
//! | Corollary 5.3: per-model exact samplers (matchings, hardcore, colorings, 2-spin, hypergraph matchings) | [`apps`] |
//! | Chain-rule counting from inference (the "counting" of the title) | [`counting`] |
//! | Round-complexity formulas for the applications | [`complexity`] |
//! | Baselines: global chain-rule sampling, Glauber dynamics | [`baselines`] |
//!
//! # Quickstart
//!
//! ```
//! use lds_core::sampler::SequentialSampler;
//! use lds_gibbs::models::hardcore;
//! use lds_gibbs::models::two_spin::TwoSpinParams;
//! use lds_gibbs::PartialConfig;
//! use lds_graph::generators;
//! use lds_localnet::{scheduler, Instance, Network};
//! use lds_oracle::{DecayRate, TwoSpinSawOracle};
//!
//! let g = generators::cycle(12);
//! let inst = Instance::unconditioned(hardcore::model(&g, 1.0));
//! let net = Network::new(inst, 7);
//! let oracle = TwoSpinSawOracle::new(
//!     TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
//! let sampler = SequentialSampler::new(&oracle, 0.05);
//! let (run, _schedule) = scheduler::run_slocal_in_local(&net, &sampler, 0);
//! assert_eq!(run.outputs.len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod baselines;
pub mod counting;
pub mod complexity;
pub mod inference;
pub mod jvv;
pub mod sampler;
pub mod sampling_to_inference;
pub mod ssm_inference;

pub use inference::LocalInference;
pub use jvv::{JvvOutcome, JvvStats, LocalJvv};
pub use sampler::SequentialSampler;
