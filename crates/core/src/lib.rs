//! The paper's primary contribution: local distributed sampling and
//! counting algorithms and the reductions between them.
//!
//! Feng & Yin, *On Local Distributed Sampling and Counting* (PODC 2018)
//! prove, for self-reducible classes of instances in the LOCAL model:
//!
//! | Paper result | Module |
//! |---|---|
//! | Approximate inference as a LOCAL algorithm (and Prop. 3.3 derandomization) | [`inference`] |
//! | Theorem 3.2: inference ⟹ approximate sampling (SLOCAL sequential sampler + Lemma 3.1) | [`sampler`] |
//! | Theorem 3.4: sampling ⟹ inference | [`sampling_to_inference`] |
//! | Theorem 4.2 / Prop. 4.3: the distributed JVV exact sampler (local rejection sampling) | [`jvv`] |
//! | Theorem 5.1: inference ⟺ strong spatial mixing | [`ssm_inference`] |
//! | Corollary 5.3: per-model exact samplers (matchings, hardcore, colorings, 2-spin, hypergraph matchings) | the `lds-engine` facade ([`regime`] holds the shared checks) |
//! | Chain-rule counting from inference (the "counting" of the title) | [`counting`] |
//! | Round-complexity formulas for the applications | [`complexity`] |
//! | Baselines: global chain-rule sampling, Glauber dynamics | [`baselines`] |
//! | Local Glauber dynamics (Fischer–Ghaffari, arXiv:1802.06676) as a chromatic-scan backend | [`glauber`] |
//!
//! # Quickstart
//!
//! The reductions and samplers in this crate are generic plumbing; the
//! recommended entry point is the `lds-engine` facade, which wires a
//! model, its regime check, and the right oracle together at build time:
//!
//! ```
//! use lds_engine::{Engine, ModelSpec, Task};
//! use lds_graph::generators;
//!
//! let engine = Engine::builder()
//!     .model(ModelSpec::Hardcore { lambda: 1.0 })
//!     .graph(generators::cycle(12))
//!     .seed(7)
//!     .build()
//!     .expect("λ = 1 is below λ_c(2) = ∞");
//! let run = engine.run(Task::SampleApprox).expect("valid task");
//! assert_eq!(run.config().expect("sampling task").len(), 12);
//! ```
//!
//! Direct use of the machinery (e.g. [`sampler::SequentialSampler`] over
//! a hand-picked oracle) remains available for experiments that need to
//! instrument individual passes; see the module docs below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod complexity;
pub mod counting;
pub mod glauber;
pub mod inference;
pub mod jvv;
pub mod regime;
pub mod sampler;
pub mod sampling_to_inference;
pub mod ssm_inference;
pub mod stats;

pub use glauber::{GlauberKernel, GlauberStats};
pub use inference::LocalInference;
pub use jvv::{JvvOutcome, JvvStats, LocalJvv};
pub use sampler::SequentialSampler;
