//! Statistical test helpers: chi-square goodness of fit.
//!
//! The workspace's exactness claims (`local-JVV` conditioned on success
//! follows `μ^τ` *exactly*, Theorem 4.2) are locked down empirically by
//! `tests/statistical.rs`: sample many times with fixed seeds, count
//! occurrences per configuration, and compare against the brute-force
//! enumerated distribution with Pearson's chi-square test. This module
//! provides the test statistic and its p-value (the regularized upper
//! incomplete gamma function `Q(k/2, χ²/2)`), dependency-free.

/// Result of a chi-square goodness-of-fit test.
#[derive(Clone, Copy, Debug)]
pub struct ChiSquare {
    /// Pearson's `χ² = Σ (O_i − E_i)² / E_i` over the pooled bins.
    pub statistic: f64,
    /// Degrees of freedom: pooled bins − 1.
    pub dof: usize,
    /// `Pr[χ²_dof ≥ statistic]` — small values reject the null
    /// hypothesis that the observations follow the expected law.
    pub p_value: f64,
    /// Number of bins after pooling low-expectation bins.
    pub bins: usize,
}

/// Pearson chi-square goodness-of-fit of observed counts against a
/// discrete law given by (unnormalized) weights.
///
/// Bins whose expected count falls below `min_expected` (Cochran's rule
/// uses 5) are pooled deterministically: the bins are scanned in order
/// and consecutive bins are merged until the running expectation reaches
/// the threshold; an undersized final group is merged into its
/// predecessor.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or the weights do
/// not sum to a positive finite number.
pub fn goodness_of_fit(observed: &[u64], weights: &[f64], min_expected: f64) -> ChiSquare {
    assert_eq!(observed.len(), weights.len(), "bin arity mismatch");
    assert!(!observed.is_empty(), "need at least one bin");
    let total: u64 = observed.iter().sum();
    let mass: f64 = weights.iter().sum();
    assert!(
        mass.is_finite() && mass > 0.0,
        "weights must have positive finite mass"
    );

    // pool consecutive bins until each group's expectation clears the
    // threshold
    let mut groups: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut acc_o = 0.0f64;
    let mut acc_e = 0.0f64;
    for (&o, &w) in observed.iter().zip(weights) {
        acc_o += o as f64;
        acc_e += w / mass * total as f64;
        if acc_e >= min_expected {
            groups.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        match groups.last_mut() {
            Some(last) => {
                last.0 += acc_o;
                last.1 += acc_e;
            }
            None => groups.push((acc_o, acc_e)),
        }
    }

    let statistic: f64 = groups
        .iter()
        .filter(|(_, e)| *e > 0.0)
        .map(|(o, e)| (o - e) * (o - e) / e)
        .sum();
    let bins = groups.len();
    let dof = bins.saturating_sub(1);
    ChiSquare {
        statistic,
        dof,
        p_value: chi_square_pvalue(statistic, dof),
        bins,
    }
}

/// The chi-square survival function `Pr[χ²_dof ≥ x] = Q(dof/2, x/2)`.
pub fn chi_square_pvalue(x: f64, dof: usize) -> f64 {
    if dof == 0 || x <= 0.0 {
        return 1.0;
    }
    gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// `ln Γ(x)` for `x > 0` (Lanczos, g = 5, accurate to ~1e-13).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs a positive argument, got {x}");
    const COEF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    let mut y = y;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// The regularized upper incomplete gamma function `Q(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const EPS: f64 = 1e-14;
    const ITMAX: usize = 500;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..ITMAX {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)`, convergent for
/// `x ≥ a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    const ITMAX: usize = 500;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=ITMAX {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "ln Γ({n})");
        }
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn pvalues_match_tables() {
        // classic critical values: Pr[χ²_k ≥ x] = 0.05
        for (dof, x) in [(1, 3.841), (2, 5.991), (5, 11.070), (10, 18.307)] {
            let p = chi_square_pvalue(x, dof);
            assert!((p - 0.05).abs() < 2e-4, "dof {dof}: p {p}");
        }
        assert_eq!(chi_square_pvalue(0.0, 4), 1.0);
        assert!(chi_square_pvalue(100.0, 3) < 1e-10);
        // mean of the distribution: p around 0.4-0.6
        let p = chi_square_pvalue(5.0, 5);
        assert!((0.3..0.7).contains(&p), "p {p}");
    }

    #[test]
    fn perfect_fit_has_high_pvalue() {
        let observed = [250u64, 250, 250, 250];
        let weights = [1.0, 1.0, 1.0, 1.0];
        let t = goodness_of_fit(&observed, &weights, 5.0);
        assert_eq!(t.dof, 3);
        assert!(t.statistic < 1e-12);
        assert!(t.p_value > 0.999);
    }

    #[test]
    fn gross_misfit_is_rejected() {
        let observed = [900u64, 50, 25, 25];
        let weights = [1.0, 1.0, 1.0, 1.0];
        let t = goodness_of_fit(&observed, &weights, 5.0);
        assert!(t.p_value < 1e-6, "p {}", t.p_value);
    }

    #[test]
    fn low_expectation_bins_pool() {
        // 100 samples over weights {98, 1, 1}: the two light bins pool
        // into the heavy group's tail
        let observed = [97u64, 2, 1];
        let weights = [98.0, 1.0, 1.0];
        let t = goodness_of_fit(&observed, &weights, 5.0);
        assert!(t.bins < 3, "bins {}", t.bins);
        assert!(t.p_value > 0.05);
    }
}
