//! The distributed JVV sampler — exact sampling via local rejection
//! sampling (paper, Theorem 4.2, Proposition 4.3, Section 4.2).
//!
//! `local-JVV` is a three-pass SLOCAL algorithm over a multiplicative
//! inference oracle `A` with error `ε` (the paper instantiates
//! `ε = 1/n³`; [`LocalJvv::paper_epsilon`]):
//!
//! 1. **Ground state.** Scan the ordering and extend `τ` to a feasible
//!    configuration `σ₀`, at each node picking an arbitrary value with
//!    positive estimated marginal (positive estimate ⟹ positive truth,
//!    thanks to the *multiplicative* guarantee).
//! 2. **Random configuration.** Scan again and sample
//!    `Y(v_i) ~ μ̂^{Y_{<i}}_{v_i}` with each node's private randomness —
//!    the chain-rule sampler whose density `μ̂^τ` satisfies
//!    `e^{−nε} ≤ μ̂^τ(σ)/μ^τ(σ) ≤ e^{nε}` (Claim 4.5).
//! 3. **Local rejection.** Walk a configuration path
//!    `σ₀ → σ₁ → ... → σ_n = Y` where `σ_i` agrees with `Y` on the first
//!    `i` scanned nodes, stays feasible, and differs from `σ_{i−1}` only
//!    inside `B_t(v_i)` (Claim 4.6 — realized here by greedy repair,
//!    valid for locally admissible models). Node `v_i` accepts with
//!    probability
//!    `q_{v_i} = (μ̂^τ(σ_{i−1})·w(σ_i)) / (μ̂^τ(σ_i)·w(σ_{i−1})) · s`
//!    where `s = e^{−3nε}` is the slack absorbing the oracle error
//!    (Claim 4.7: `e^{−5nε} ≤ q_{v_i} ≤ 1`); both ratios telescope to
//!    quantities computable within radius `O(t)` of `v_i` because distant
//!    marginal calls see indistinguishable instances.
//!
//! Conditioned on **no** rejection the output `Y` follows `μ^τ`
//! **exactly** (Lemma 4.8): the acceptance product
//! `∏ q_{v_i} = (μ̂^τ(σ₀)/w(σ₀))·s^n·w(Y)/μ̂^τ(Y)` times the sampling
//! density `μ̂^τ(Y)` is proportional to `w(Y)` — rejection sampling with
//! locally computable acceptance. Success probability `≥ e^{−5n²ε}`,
//! which is `1 − O(1/n)` at the paper's `ε = 1/n³`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lds_gibbs::{distribution, Config, PartialConfig, Value};
use lds_graph::{traversal, NodeId};
use lds_localnet::local::LocalRun;
use lds_localnet::scheduler::{self, ChromaticSchedule, ShardingStats};
use lds_localnet::slocal::{
    self, multipass_locality, ScanKernel, SlocalAlgorithm, SlocalKernel, SlocalRun,
};
use lds_localnet::Network;
use lds_oracle::MultiplicativeInference;
use lds_runtime::{CancelToken, Cancelled, ThreadPool};
use rand::Rng;

/// Randomness stream for pass 2 (sampling `Y`).
pub const STREAM_JVV_SAMPLE: u64 = 2;
/// Randomness stream for pass 3 (rejection coins).
pub const STREAM_JVV_REJECT: u64 = 3;

/// Execution statistics of one `local-JVV` run.
#[derive(Clone, Debug, Default)]
pub struct JvvStats {
    /// Product of the acceptance probabilities `∏ q_{v_i}` (the success
    /// probability of this execution's rejection phase given `Y`).
    pub acceptance_product: f64,
    /// Number of acceptance probabilities that had to be clamped to 1 —
    /// always 0 when the oracle honors its error bound.
    pub clamped: usize,
    /// Number of nodes where the feasibility repair of Claim 4.6 failed —
    /// always 0 for locally admissible models.
    pub repair_failures: usize,
    /// The single-pass locality (Lemma 4.4 folding of the three passes).
    pub locality: usize,
}

/// Output of a detailed `local-JVV` execution.
#[derive(Clone, Debug)]
pub struct JvvOutcome {
    /// The sampled configuration `Y` and per-node failure bits `F′`.
    pub run: SlocalRun<Value>,
    /// Statistics.
    pub stats: JvvStats,
}

/// The `local-JVV` exact sampler.
#[derive(Clone, Debug)]
pub struct LocalJvv<'a, O> {
    oracle: &'a O,
    eps: f64,
}

impl<'a, O> LocalJvv<'a, O>
where
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
{
    /// Creates the sampler over a multiplicative-error oracle with
    /// per-marginal error `ε`.
    ///
    /// # Panics
    ///
    /// Panics if `ε ≤ 0`.
    pub fn new(oracle: &'a O, eps: f64) -> Self {
        assert!(eps > 0.0, "oracle error must be positive");
        LocalJvv { oracle, eps }
    }

    /// The paper's instantiation `ε = 1/n³` (Proposition 4.3), giving
    /// success probability `1 − O(1/n)`.
    pub fn paper_epsilon(n: usize) -> f64 {
        1.0 / (n.max(2) as f64).powi(3)
    }

    /// The slack factor `s = e^{−3nε}` of the rejection probabilities.
    pub fn slack(&self, n: usize) -> f64 {
        (-3.0 * n as f64 * self.eps).exp()
    }

    /// The rejection-phase success lower bound `e^{−5n²ε}` (Lemma 4.8
    /// generalized to arbitrary `ε`).
    pub fn success_lower_bound(&self, n: usize) -> f64 {
        (-5.0 * (n * n) as f64 * self.eps).exp()
    }

    /// The pass-1 kernel (ground state σ₀). Kernels own a clone of the
    /// oracle so they can ship to the pool's workers as `'static` jobs.
    fn ground_kernel(&self) -> GroundKernel<O> {
        GroundKernel {
            oracle: self.oracle.clone(),
            eps: self.eps,
        }
    }

    /// The pass-2 kernel (random configuration `Y`).
    fn chain_kernel(&self) -> ChainKernel<O> {
        ChainKernel {
            oracle: self.oracle.clone(),
            eps: self.eps,
        }
    }

    /// The pass-3 kernel (local rejection), given the outputs of passes
    /// 1 and 2 over `order`.
    fn reject_kernel(
        &self,
        net: &Network,
        order: &[NodeId],
        ground: SlocalRun<Value>,
        sampled: SlocalRun<Value>,
    ) -> RejectKernel<O> {
        let model = net.instance().model();
        let n = model.node_count();
        let ell = model.locality().max(1);
        let t = self.oracle.radius_mul(model, self.eps);
        let mut pos = vec![usize::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        RejectKernel {
            oracle: self.oracle.clone(),
            eps: self.eps,
            ctx: Arc::new(RejectContext {
                order: order.to_vec(),
                pos,
                sigma0: Config::from_values(ground.outputs),
                y: Config::from_values(sampled.outputs),
                ground_failures: ground.failures,
                t,
                ell,
                slack: self.slack(n),
                locality: multipass_locality(&[t, t, 3 * t + ell]),
            }),
        }
    }

    /// Runs the three passes sequentially over `order` and returns the
    /// full outcome.
    pub fn run_detailed(&self, net: &Network, order: &[NodeId]) -> JvvOutcome {
        let ground = slocal::run_kernel_sequential(net, &self.ground_kernel(), order);
        let sampled = slocal::run_kernel_sequential(net, &self.chain_kernel(), order);
        let reject = self.reject_kernel(net, order, ground, sampled);
        slocal::run_scan_sequential(net, &reject, order)
    }

    /// Runs all three passes with same-color clusters simulated
    /// concurrently on the pool. Passes 1–2 are pinning-extension
    /// kernels, so Lemma 3.1's parallel cluster simulation applies
    /// verbatim; pass 3 runs through the same chromatic engine as a
    /// [`ScanKernel`] whose within-color resample decisions commute (see
    /// the commutation proof on `RejectKernel` in this module's source).
    /// Bit-identical to [`LocalJvv::run_detailed`] on
    /// `schedule.order` at any pool width; also returns per-pass
    /// wall-clock times.
    pub fn run_scheduled(
        &self,
        net: &Network,
        schedule: &ChromaticSchedule,
        pool: &ThreadPool,
    ) -> (JvvOutcome, JvvPassTimings) {
        self.run_scheduled_cancellable(net, schedule, pool, &CancelToken::never())
            .expect("a never-token cannot cancel")
    }

    /// [`LocalJvv::run_scheduled`] with cooperative cancellation: the
    /// token is threaded into each pass's chromatic runner (checked
    /// between color rounds) and checked between passes. Checks consume
    /// no randomness, so a completed run is bit-identical to the
    /// uncancellable one; a cancelled run returns `Err(`[`Cancelled`]`)`
    /// with no partial outcome.
    pub fn run_scheduled_cancellable(
        &self,
        net: &Network,
        schedule: &ChromaticSchedule,
        pool: &ThreadPool,
        cancel: &CancelToken,
    ) -> Result<(JvvOutcome, JvvPassTimings), Cancelled> {
        let mut timings = JvvPassTimings::default();
        let start = Instant::now();
        let (ground, stats) = scheduler::run_kernel_chromatic_cancellable(
            net,
            &self.ground_kernel(),
            schedule,
            pool,
            cancel,
        )?;
        timings.ground = start.elapsed();
        timings.sharding.merge(&stats);
        let start = Instant::now();
        let (sampled, stats) = scheduler::run_kernel_chromatic_cancellable(
            net,
            &self.chain_kernel(),
            schedule,
            pool,
            cancel,
        )?;
        timings.sample = start.elapsed();
        timings.sharding.merge(&stats);
        let start = Instant::now();
        let reject = self.reject_kernel(net, &schedule.order, ground, sampled);
        let (outcome, stats) =
            scheduler::run_kernel_chromatic_cancellable(net, &reject, schedule, pool, cancel)?;
        timings.reject = start.elapsed();
        timings.sharding.merge(&stats);
        Ok((outcome, timings))
    }

    /// The full **pre-refactor** three-pass sequential execution:
    /// passes 1–2 as sequential kernel scans (unchanged by the pass-3
    /// refactor) composed with [`LocalJvv::rejection_pass_reference`].
    /// The pass-3 equivalence proptest (`tests/pass3_parallel.rs`)
    /// compares [`LocalJvv::run_scheduled`] at every pool width against
    /// this, bit for bit. Not part of the serving path.
    #[doc(hidden)]
    pub fn run_detailed_reference(&self, net: &Network, order: &[NodeId]) -> JvvOutcome {
        let ground = slocal::run_kernel_sequential(net, &self.ground_kernel(), order);
        let sampled = slocal::run_kernel_sequential(net, &self.chain_kernel(), order);
        self.rejection_pass_reference(net, order, ground, sampled)
    }

    /// The refactored pass-3 kernel run sequentially over `order` from
    /// the given pass-1/2 outputs — test hook for comparing the kernel
    /// fold against [`LocalJvv::rejection_pass_reference`] on
    /// hand-crafted inputs (e.g. synthetic ground-failure bits, which
    /// the full pipeline only produces on infeasible-fallback paths).
    #[doc(hidden)]
    pub fn rejection_pass_scan(
        &self,
        net: &Network,
        order: &[NodeId],
        ground: SlocalRun<Value>,
        sampled: SlocalRun<Value>,
    ) -> JvvOutcome {
        let reject = self.reject_kernel(net, order, ground, sampled);
        slocal::run_scan_sequential(net, &reject, order)
    }

    /// Pass 3 (local rejection) given the ground state and the sampled
    /// configuration from passes 1 and 2 — the **frozen pre-refactor
    /// sequential scan**, kept verbatim as the reference implementation
    /// that the pass-3 equivalence proptest (`tests/pass3_parallel.rs`)
    /// compares the [`RejectKernel`] execution against, bit for bit. Not
    /// part of the serving path.
    #[doc(hidden)]
    pub fn rejection_pass_reference(
        &self,
        net: &Network,
        order: &[NodeId],
        ground: SlocalRun<Value>,
        sampled: SlocalRun<Value>,
    ) -> JvvOutcome {
        let model = net.instance().model();
        let tau = net.instance().pinning();
        let g = model.graph();
        let n = model.node_count();
        let ell = model.locality().max(1);
        let t = self.oracle.radius_mul(model, self.eps);
        let slack = self.slack(n);
        let mut stats = JvvStats {
            acceptance_product: 1.0,
            locality: multipass_locality(&[t, t, 3 * t + ell]),
            ..JvvStats::default()
        };
        // pass-1 fallback failures carry over; pass 2 never fails
        let mut failures = ground.failures;
        let sigma0 = Config::from_values(ground.outputs);
        let y = Config::from_values(sampled.outputs);

        // position of each node in the scan order
        let mut pos = vec![usize::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }

        // ---- Pass 3: local rejection ----
        let mut sigma_prev = sigma0.clone();
        for (i, &vi) in order.iter().enumerate() {
            // σ_i: agree with Y on order[..=i], differ from σ_{i-1} only
            // inside B_t(vi), stay feasible (Claim 4.6 via greedy repair).
            let ball: Vec<NodeId> = traversal::ball(g, vi, t.max(ell));
            let sigma_i = match repair(model, &sigma_prev, &y, &ball, &pos, i) {
                Some(c) => c,
                None => {
                    stats.repair_failures += 1;
                    failures[vi.index()] = true;
                    continue;
                }
            };

            // acceptance probability q_{v_i}
            let cutoff = 2 * t.max(ell) + ell;
            let dist = traversal::bfs_distances(g, vi);
            let mut ratio = 1.0f64;
            // density ratio μ̂^τ(σ_{i-1}) / μ̂^τ(σ_i): only scan positions
            // within the cutoff ball differ.
            for &vj in order {
                let d = dist[vj.index()];
                if d == traversal::UNREACHABLE || d as usize > cutoff {
                    continue;
                }
                if tau.is_pinned(vj) {
                    continue;
                }
                let j = pos[vj.index()];
                let prev_val = sigma_prev.get(vj);
                let new_val = sigma_i.get(vj);
                let prefix_prev = prefix_pinning(tau, order, &sigma_prev, j);
                let prefix_new = prefix_pinning(tau, order, &sigma_i, j);
                if prev_val == new_val && prefix_prev == prefix_new {
                    continue;
                }
                let mu_prev = self.oracle.marginal_mul(model, &prefix_prev, vj, self.eps);
                let mu_new = self.oracle.marginal_mul(model, &prefix_new, vj, self.eps);
                let num = mu_prev[prev_val.index()];
                let den = mu_new[new_val.index()];
                if den > 0.0 {
                    ratio *= num / den;
                }
            }
            // weight ratio w(σ_i) / w(σ_{i-1}): factors touching the ball
            for &u in &ball {
                for &fi in model.factors_touching(u) {
                    let f = &model.factors()[fi];
                    // count each factor once: at its minimum ball member
                    let first = f
                        .scope()
                        .iter()
                        .filter(|s| {
                            dist[s.index()] != traversal::UNREACHABLE
                                && (dist[s.index()] as usize) <= t.max(ell)
                        })
                        .min()
                        .copied();
                    if first != Some(u) {
                        continue;
                    }
                    let w_new = f
                        .eval_partial(|s| Some(sigma_i.get(s)))
                        .expect("full config");
                    let w_prev = f
                        .eval_partial(|s| Some(sigma_prev.get(s)))
                        .expect("full config");
                    if w_prev > 0.0 {
                        ratio *= w_new / w_prev;
                    }
                }
            }

            let mut q_vi = ratio * slack;
            if q_vi > 1.0 {
                stats.clamped += 1;
                q_vi = 1.0;
            }
            stats.acceptance_product *= q_vi;
            let mut rng = net.node_rng(vi, STREAM_JVV_REJECT);
            if !rng.gen_bool(q_vi.max(0.0)) {
                failures[vi.index()] = true;
            }
            sigma_prev = sigma_i;
        }

        let outputs: Vec<Value> = (0..n).map(|i| y.get(NodeId::from_index(i))).collect();
        JvvOutcome {
            run: SlocalRun { outputs, failures },
            stats,
        }
    }
}

/// Per-pass wall-clock times of a scheduled `local-JVV` execution, plus
/// the sharding telemetry the three chromatic runs accumulated.
#[derive(Clone, Debug, Default)]
pub struct JvvPassTimings {
    /// Pass 1 (ground state σ₀).
    pub ground: Duration,
    /// Pass 2 (chain-rule sampling of `Y`).
    pub sample: Duration,
    /// Pass 3 (local rejection).
    pub reject: Duration,
    /// Halo/bytes-cloned telemetry merged across the three passes.
    pub sharding: ShardingStats,
}

/// Pass-1 kernel: extend `τ` feasibly by picking the first value with
/// positive estimated marginal (positive estimate ⟹ positive truth by
/// the multiplicative guarantee). Reads pins within the oracle radius
/// `t`; failure only on the defensive fallback path.
#[derive(Clone)]
struct GroundKernel<O> {
    oracle: O,
    eps: f64,
}

impl<O: MultiplicativeInference + Sync> SlocalKernel for GroundKernel<O> {
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool) {
        let model = net.instance().model();
        let q = model.alphabet_size();
        // only *positivity* matters here (positive estimate ⟹ positive
        // truth); `support_mul` lets the oracle certify it without
        // computing the magnitude — for the SAW oracle a one-or-two
        // level tree instead of the full planned radius
        let support = self.oracle.support_mul(model, sigma, v, self.eps);
        if let Some(c) = (0..q).find(|&c| support[c]) {
            return (Value::from_index(c), false);
        }
        // defensive fallback: greedy local feasibility
        let fallback =
            (0..q).find(|&c| model.is_locally_feasible(&sigma.with_pin(v, Value::from_index(c))));
        match fallback {
            Some(c) => (Value::from_index(c), false),
            None => (Value(0), true),
        }
    }
}

/// Pass-2 kernel: sample `Y_v ~ μ̂^{Y_{<v}}_v` with `v`'s private
/// randomness (stream [`STREAM_JVV_SAMPLE`]). Never fails.
#[derive(Clone)]
struct ChainKernel<O> {
    oracle: O,
    eps: f64,
}

impl<O: MultiplicativeInference + Sync> SlocalKernel for ChainKernel<O> {
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool) {
        let model = net.instance().model();
        let mu = self.oracle.marginal_mul(model, sigma, v, self.eps);
        let mut rng = net.node_rng(v, STREAM_JVV_SAMPLE);
        (distribution::sample_from_marginal(&mu, &mut rng), false)
    }
}

/// Immutable context of one pass-3 execution, shared by every clone of
/// the kernel (the chromatic runner clones the kernel into each worker
/// job).
struct RejectContext {
    /// The scan ordering `π` (all nodes).
    order: Vec<NodeId>,
    /// `pos[v] = i` ⟺ `order[i] = v`.
    pos: Vec<usize>,
    /// Pass-1 output `σ₀` — the initial configuration path state.
    sigma0: Config,
    /// Pass-2 output `Y` — the candidate sample.
    y: Config,
    /// Pass-1 failure bits, carried into the final run (pass 2 never
    /// fails).
    ground_failures: Vec<bool>,
    /// Oracle radius `t`.
    t: usize,
    /// Model locality `ℓ`.
    ell: usize,
    /// The slack factor `s = e^{−3nε}`.
    slack: f64,
    /// Single-pass folded locality (Lemma 4.4 on `[t, t, 3t + ℓ]`).
    locality: usize,
}

/// Per-node effect of the rejection scan: the configuration-path delta
/// plus the acceptance bookkeeping, replayed onto the global state in
/// schedule order.
struct RejectEffect {
    /// Values `σ_i` takes where it differs from `σ_{i−1}` — confined to
    /// `B_{max(t,ℓ)}(v_i)` by Claim 4.6's repair.
    writes: Vec<(NodeId, Value)>,
    /// The rejection bit of `v_i` (`F′` — OR-ed into the pass-1 bit,
    /// exactly as the sequential scan does: a failure bit, once set, is
    /// never cleared).
    fail: bool,
    /// Acceptance probability `q_{v_i}`; `None` when the feasibility
    /// repair failed and no acceptance test ran.
    q: Option<f64>,
    /// Whether `q_{v_i}` had to be clamped to 1.
    clamped: bool,
}

/// Pass-3 kernel: the local rejection scan of Theorem 4.2 as a
/// [`ScanKernel`], so [`scheduler::run_kernel_chromatic`] can simulate
/// same-color clusters concurrently — the last of the three `local-JVV`
/// passes to go through Lemma 3.1's parallel cluster simulation.
///
/// **Why within-color resample decisions commute** (the equivalence
/// proof the chromatic runner relies on; property-tested bit-for-bit in
/// `tests/pass3_parallel.rs`):
///
/// Processing `v_i` (a) *writes* the configuration path only inside
/// `B_W(v_i)` with `W = max(t, ℓ)` — Claim 4.6's repair changes
/// `σ_{i−1} → σ_i` only inside the repair ball, and the greedy
/// feasibility extension's choice at a free ball node depends only on
/// factors touching it (range `ℓ`); and (b) *reads* the path only inside
/// `B_R(v_i)` with `R = 2·max(t, ℓ) + ℓ + t = 3t + ℓ` for `t ≥ ℓ`: the
/// density ratio visits nodes `v_j` within the cutoff `2·max(t, ℓ) + ℓ`
/// and queries the oracle there, which by its multiplicative radius
/// contract reads pins within a further `t` of `v_j` (the telescoping of
/// Claim 4.7 — distant marginal calls see indistinguishable instances).
/// The prefix-equality short-circuit is also `R`-local: the two prefixes
/// it compares are built from `σ_{i−1}` and `σ_i`, which agree outside
/// `B_W(v_i)`, so the comparison outcome is a function of the ball
/// region alone. The global feasibility checks inside the repair are
/// factor-local, and away from `B_R(v_i)` both the true sequential path
/// state and a cluster's snapshot state are feasible configurations (the
/// path invariant), so they decide identically.
///
/// The chromatic schedule separates same-color clusters by
/// `> r + 1` in `G` with `r = t + 2(t + (3t + ℓ)) = 9t + 2ℓ` (Lemma 4.4
/// folding of the three passes) — strictly more than the interaction
/// bound `W + R = 4·max(t, ℓ) + t + ℓ` whenever `8t + 1 > 2ℓ` (always
/// here: every model in the workspace has `ℓ = 1` and every oracle
/// `t ≥ 0`, and when the schedule caps `r` at the graph diameter,
/// same-color clusters land in different components and cannot interact
/// at all). Hence no concurrent cluster can observe another's writes:
/// processing order within a color is immaterial, i.e. the resample
/// decisions commute, and replaying the effects in cluster order
/// reproduces the sequential scan **bit for bit**. The acceptance
/// product is likewise folded in schedule order ([`ScanKernel::finish`])
/// so even its floating-point rounding sequence matches the sequential
/// scan.
#[derive(Clone)]
struct RejectKernel<O> {
    oracle: O,
    eps: f64,
    ctx: Arc<RejectContext>,
}

impl<O: MultiplicativeInference + Sync> RejectKernel<O> {
    /// One rejection step: build `σ_i` from `σ_{i−1}` (Claim 4.6),
    /// compute the acceptance probability `q_{v_i}` (Claim 4.7), flip
    /// `v_i`'s private coin. Pure function of the path state within
    /// `B_R(v_i)`, the context, and `v_i`'s randomness.
    ///
    /// **Halo-local by construction**: every read of `sigma_prev` stays
    /// within `B_{R}(v_i)` — the repair works on ball-restricted values,
    /// the feasibility checks visit only factors touching the ball
    /// (factors farther out are positive by the path invariant, so the
    /// frozen reference's global scan decides identically), and the
    /// chain-rule prefixes handed to the oracle are restricted to the
    /// scan positions the oracle can actually reach
    /// (`dist(v_i, v_j) ≤ cutoff` plus the oracle radius `t`). A full
    /// prefix differing only beyond that region yields the exact factor
    /// `x/x = 1` in the reference, so restricting is bit-identical.
    /// This is what lets the chromatic runner ship halo projections of
    /// the configuration path instead of full clones — and it also
    /// removes the reference's per-position full-pinning clones from
    /// the sequential hot path.
    fn step(&self, net: &Network, sigma_prev: &Config, vi: NodeId) -> RejectEffect {
        let ctx = &*self.ctx;
        let model = net.instance().model();
        let tau = net.instance().pinning();
        let g = model.graph();
        let n = model.node_count();
        let i = ctx.pos[vi.index()];
        let w = ctx.t.max(ctx.ell);
        // σ_i: agree with Y on order[..=i], differ from σ_{i-1} only
        // inside B_t(vi), stay feasible (Claim 4.6 via greedy repair).
        let ball: Vec<NodeId> = traversal::ball(g, vi, w);
        let mut ball_idx = vec![usize::MAX; n];
        for (k, &u) in ball.iter().enumerate() {
            ball_idx[u.index()] = k;
        }
        let ball_vals = match repair_local(model, sigma_prev, &ctx.y, &ball, &ball_idx, &ctx.pos, i)
        {
            Some(vals) => vals,
            None => {
                return RejectEffect {
                    writes: Vec::new(),
                    fail: true,
                    q: None,
                    clamped: false,
                }
            }
        };
        // where σ_i differs from σ_{i−1}: confined to the ball, listed
        // in ball (BFS) order like the frozen reference
        let writes: Vec<(NodeId, Value)> = ball
            .iter()
            .enumerate()
            .filter(|&(k, &u)| ball_vals[k] != sigma_prev.get(u))
            .map(|(k, &u)| (u, ball_vals[k]))
            .collect();
        let val_i = |u: NodeId| -> Value {
            match ball_idx[u.index()] {
                usize::MAX => sigma_prev.get(u),
                k => ball_vals[k],
            }
        };

        // acceptance probability q_{v_i}
        let cutoff = 2 * w + ctx.ell;
        let dist = traversal::bfs_distances(g, vi);
        // scan positions any queried oracle can see: vj within `cutoff`,
        // reading pins a further `t` out
        let read_radius = cutoff + ctx.t;
        let mut read_nodes: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|u| {
                let d = dist[u.index()];
                d != traversal::UNREACHABLE && (d as usize) <= read_radius
            })
            .collect();
        read_nodes.sort_unstable_by_key(|u| ctx.pos[u.index()]);
        let mut prefix_prev = PrefixScratch::new(tau);
        let mut prefix_new = PrefixScratch::new(tau);
        let mut ratio = 1.0f64;
        // density ratio μ̂^τ(σ_{i-1}) / μ̂^τ(σ_i): only scan positions
        // within the cutoff ball differ.
        for &vj in &ctx.order {
            let d = dist[vj.index()];
            if d == traversal::UNREACHABLE || d as usize > cutoff {
                continue;
            }
            if tau.is_pinned(vj) {
                continue;
            }
            let j = ctx.pos[vj.index()];
            let prev_val = sigma_prev.get(vj);
            let new_val = val_i(vj);
            // the reference's prefix-equality short-circuit, decided
            // without building prefixes: the full prefixes at position
            // j differ iff some repair write sits at a position < j
            if prev_val == new_val && writes.iter().all(|&(u, _)| ctx.pos[u.index()] >= j) {
                continue;
            }
            prefix_prev.set_prefix(&read_nodes, &ctx.pos, j, |u| sigma_prev.get(u));
            let mu_prev = self
                .oracle
                .marginal_mul(model, prefix_prev.pinning(), vj, self.eps);
            prefix_new.set_prefix(&read_nodes, &ctx.pos, j, val_i);
            let mu_new = self
                .oracle
                .marginal_mul(model, prefix_new.pinning(), vj, self.eps);
            let num = mu_prev[prev_val.index()];
            let den = mu_new[new_val.index()];
            if den > 0.0 {
                ratio *= num / den;
            }
        }
        // weight ratio w(σ_i) / w(σ_{i-1}): factors touching the ball
        for &u in &ball {
            for &fi in model.factors_touching(u) {
                let f = &model.factors()[fi];
                // count each factor once: at its minimum ball member
                let first = f
                    .scope()
                    .iter()
                    .filter(|s| {
                        dist[s.index()] != traversal::UNREACHABLE && (dist[s.index()] as usize) <= w
                    })
                    .min()
                    .copied();
                if first != Some(u) {
                    continue;
                }
                let w_new = f.eval_partial(|s| Some(val_i(s))).expect("full config");
                let w_prev = f
                    .eval_partial(|s| Some(sigma_prev.get(s)))
                    .expect("full config");
                if w_prev > 0.0 {
                    ratio *= w_new / w_prev;
                }
            }
        }

        let mut q_vi = ratio * ctx.slack;
        let clamped = q_vi > 1.0;
        if clamped {
            q_vi = 1.0;
        }
        let mut rng = net.node_rng(vi, STREAM_JVV_REJECT);
        let fail = !rng.gen_bool(q_vi.max(0.0));
        RejectEffect {
            writes,
            fail,
            q: Some(q_vi),
            clamped,
        }
    }
}

/// Reusable chain-rule prefix `τ ∧ (order[..j] ∩ read region ↦ config)`:
/// seeded with `τ` once per rejection step, re-pinned per queried
/// position, rolled back afterwards — no per-position full clones.
struct PrefixScratch {
    pc: PartialConfig,
    /// Nodes pinned on top of `τ`, with `τ`'s original slot for rollback.
    touched: Vec<(NodeId, Option<Value>)>,
}

impl PrefixScratch {
    fn new(tau: &PartialConfig) -> Self {
        PrefixScratch {
            pc: tau.clone(),
            touched: Vec::new(),
        }
    }

    /// Loads the prefix at scan position `j`: pins every read-region
    /// node with position `< j` (`read_nodes` is sorted by position) to
    /// its value under `get`, after rolling back the previous load.
    fn set_prefix(
        &mut self,
        read_nodes: &[NodeId],
        pos: &[usize],
        j: usize,
        get: impl Fn(NodeId) -> Value,
    ) {
        for (u, old) in self.touched.drain(..) {
            match old {
                Some(v) => self.pc.pin(u, v),
                None => self.pc.unpin(u),
            }
        }
        for &u in read_nodes {
            if pos[u.index()] >= j {
                break;
            }
            self.touched.push((u, self.pc.get(u)));
            self.pc.pin(u, get(u));
        }
    }

    fn pinning(&self) -> &PartialConfig {
        &self.pc
    }
}

/// Claim 4.6 constructively and **ball-locally**: the values `σ_i` takes
/// on `ball` — agreeing with `Y` on scanned positions `≤ i`, equal to
/// `σ_prev` outside the ball, feasible. Greedy repair of the unscanned
/// ball nodes in increasing id order (sound for locally admissible
/// models), mirroring [`repair`]'s decisions exactly while reading
/// `σ_prev` only on `ball + ℓ` and visiting only factors touching the
/// ball — factors farther out evaluate on the untouched path state,
/// which is feasible (the path invariant), so the reference's global
/// feasibility scan decides identically.
fn repair_local(
    model: &lds_gibbs::GibbsModel,
    sigma_prev: &Config,
    y: &Config,
    ball: &[NodeId],
    ball_idx: &[usize],
    pos: &[usize],
    i: usize,
) -> Option<Vec<Value>> {
    let q = model.alphabet_size();
    // σ_i on the ball: scanned positions (vi included) take Y's values;
    // the rest are repaired below
    let mut vals: Vec<Option<Value>> = ball
        .iter()
        .map(|&u| {
            if pos[u.index()] <= i {
                Some(y.get(u))
            } else {
                None
            }
        })
        .collect();
    // the candidate pinning's value at any node; `None` = still free
    fn val_at(
        vals: &[Option<Value>],
        ball_idx: &[usize],
        sigma_prev: &Config,
        u: NodeId,
    ) -> Option<Value> {
        match ball_idx[u.index()] {
            usize::MAX => Some(sigma_prev.get(u)),
            k => vals[k],
        }
    }
    // factors touching the ball, each visited once
    let mut touching: Vec<usize> = ball
        .iter()
        .flat_map(|&u| model.factors_touching(u).iter().copied())
        .collect();
    touching.sort_unstable();
    touching.dedup();
    // upfront feasibility: every fully determined factor positive (the
    // reference checks all fully pinned factors globally; away from the
    // ball they evaluate on the feasible path state and pass)
    for &fi in &touching {
        let f = &model.factors()[fi];
        if let Some(w) = f.eval_partial(|s| val_at(&vals, ball_idx, sigma_prev, s)) {
            if w <= 0.0 {
                return None;
            }
        }
    }
    // greedy extension of the unscanned ball nodes in increasing id
    // order — the reference's free_nodes() scan order. A candidate is
    // accepted iff every factor it completes is positive; factors not
    // touching the node are unchanged and were verified positive when
    // they completed, so this equals the reference's global check.
    let mut free: Vec<NodeId> = ball
        .iter()
        .copied()
        .filter(|&u| pos[u.index()] > i)
        .collect();
    free.sort_unstable();
    for u in free {
        let k = ball_idx[u.index()];
        let mut placed = false;
        for c in (0..q).map(Value::from_index) {
            vals[k] = Some(c);
            let ok = model.factors_touching(u).iter().all(|&fi| {
                match model.factors()[fi].eval_partial(|s| val_at(&vals, ball_idx, sigma_prev, s)) {
                    Some(w) => w > 0.0,
                    None => true,
                }
            });
            if ok {
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(
        vals.into_iter()
            .map(|v| v.expect("ball fully repaired"))
            .collect(),
    )
}

impl<O: MultiplicativeInference + Sync> ScanKernel for RejectKernel<O> {
    type State = Config;
    type Effect = RejectEffect;
    type Run = JvvOutcome;

    fn init(&self, _net: &Network) -> Config {
        self.ctx.sigma0.clone()
    }

    fn process(&self, net: &Network, state: &mut Config, v: NodeId) -> Option<RejectEffect> {
        // every node runs its rejection step, pinned ones included —
        // exactly like the sequential scan
        let effect = self.step(net, state, v);
        for &(u, val) in &effect.writes {
            state.set(u, val);
        }
        Some(effect)
    }

    fn apply(&self, state: &mut Config, _v: NodeId, effect: &RejectEffect) {
        for &(u, val) in &effect.writes {
            state.set(u, val);
        }
    }

    /// Halo restriction of the configuration path: only the halo slots
    /// carry path state — [`RejectKernel::step`] never reads past them —
    /// so the copy is `O(|halo|)`. The buffer keeps full length (the
    /// step indexes by global id); out-of-halo slots are dead storage.
    fn project(&self, state: &Config, halo: &[NodeId]) -> Config {
        let mut p = Config::constant(state.len(), Value(0));
        for &u in halo {
            p.set(u, state.get(u));
        }
        p
    }

    fn project_into(
        &self,
        state: &Config,
        halo: &[NodeId],
        scratch: &mut Config,
        _stale: &[NodeId],
    ) {
        // stale slots need no erasing: out-of-halo slots of a full-length
        // buffer are never read by the halo-local step
        for &u in halo {
            scratch.set(u, state.get(u));
        }
    }

    fn projected_bytes(&self, _n: usize, halo: usize) -> u64 {
        (halo * core::mem::size_of::<Value>()) as u64
    }

    fn finish(
        &self,
        _net: &Network,
        _state: Config,
        effects: Vec<(NodeId, RejectEffect)>,
    ) -> JvvOutcome {
        let ctx = &*self.ctx;
        let mut stats = JvvStats {
            acceptance_product: 1.0,
            locality: ctx.locality,
            ..JvvStats::default()
        };
        // pass-1 fallback failures carry over; pass 2 never fails
        let mut failures = ctx.ground_failures.clone();
        // fold in schedule order: same floating-point op sequence as the
        // sequential scan, at every pool width
        for (v, effect) in effects {
            // OR, don't assign: the sequential scan only ever *sets*
            // failure bits, so a pass-1 fallback failure survives even
            // when v's rejection coin passes
            failures[v.index()] |= effect.fail;
            match effect.q {
                Some(q) => {
                    stats.acceptance_product *= q;
                    stats.clamped += effect.clamped as usize;
                }
                None => stats.repair_failures += 1,
            }
        }
        let n = ctx.y.len();
        let outputs: Vec<Value> = (0..n).map(|i| ctx.y.get(NodeId::from_index(i))).collect();
        JvvOutcome {
            run: SlocalRun { outputs, failures },
            stats,
        }
    }
}

/// The pinning `τ ∧ (order[..upto] ↦ config)` — the prefix state the
/// chain-rule density `μ̂^τ` conditions on at scan position `upto`.
fn prefix_pinning(
    base: &PartialConfig,
    order: &[NodeId],
    config: &Config,
    upto: usize,
) -> PartialConfig {
    let mut p = base.clone();
    for &u in &order[..upto] {
        p.pin(u, config.get(u));
    }
    p
}

/// Claim 4.6 constructively: find `σ_i` agreeing with `Y` on scanned
/// positions `≤ i`, equal to `σ_prev` outside `ball`, feasible. Greedy
/// repair inside the ball (sound for locally admissible models).
fn repair(
    model: &lds_gibbs::GibbsModel,
    sigma_prev: &Config,
    y: &Config,
    ball: &[NodeId],
    pos: &[usize],
    i: usize,
) -> Option<Config> {
    let n = model.node_count();
    let in_ball = {
        let mut b = vec![false; n];
        for &u in ball {
            b[u.index()] = true;
        }
        b
    };
    let mut pinning = PartialConfig::empty(n);
    for u in (0..n).map(NodeId::from_index) {
        if !in_ball[u.index()] {
            // unchanged outside the ball
            pinning.pin(u, sigma_prev.get(u));
        } else if pos[u.index()] <= i {
            // scanned nodes (including v_i itself) take Y's values
            pinning.pin(u, y.get(u));
        }
    }
    if !model.is_locally_feasible(&pinning) {
        return None;
    }
    let full = lds_gibbs::admissible::greedy_feasible_extension(model, &pinning)?;
    Some(full.to_config())
}

impl<O: MultiplicativeInference + Clone + Send + Sync + 'static> SlocalAlgorithm
    for LocalJvv<'_, O>
{
    type Output = Value;

    fn locality(&self, _n: usize) -> usize {
        // conservative: computed precisely per-model in run_detailed
        // (multipass_locality of [t, t, 3t + ℓ]); the trait method cannot
        // see the model, so report a placeholder refined by the runner.
        0
    }

    fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<Value> {
        self.run_detailed(net, order).run
    }
}

/// Runs `local-JVV` in the LOCAL model via the Lemma 3.1 transformation,
/// with the locality computed from the model (Theorem 4.2's
/// `O(t(n)·log² n)` rounds). Returns the LOCAL run (failures combine the
/// rejection bits `F′` with the decomposition bits `F″`), the schedule,
/// and the JVV statistics.
pub fn sample_exact_local<O: MultiplicativeInference + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    eps: f64,
    stream: u64,
) -> (LocalRun<Value>, ChromaticSchedule, JvvStats) {
    let (run, schedule, stats, _timings) =
        sample_exact_local_with(net, oracle, eps, stream, &ThreadPool::sequential());
    (run, schedule, stats)
}

/// Per-phase wall-clock of a [`sample_exact_local_with`] execution.
#[derive(Clone, Debug, Default)]
pub struct ExactSampleTimings {
    /// Decomposition + chromatic-schedule construction.
    pub schedule: Duration,
    /// The three `local-JVV` passes.
    pub passes: JvvPassTimings,
}

/// [`sample_exact_local`] with passes 1–2 simulating same-color clusters
/// concurrently on `pool` (bit-identical at any pool width), returning
/// per-phase wall-clock times alongside the run.
pub fn sample_exact_local_with<O: MultiplicativeInference + Clone + Send + Sync + 'static>(
    net: &Network,
    oracle: &O,
    eps: f64,
    stream: u64,
    pool: &ThreadPool,
) -> (
    LocalRun<Value>,
    ChromaticSchedule,
    JvvStats,
    ExactSampleTimings,
) {
    sample_exact_local_cancellable_with(net, oracle, eps, stream, pool, &CancelToken::never())
        .expect("a never-token cannot cancel")
}

/// [`sample_exact_local_with`] with cooperative cancellation threaded
/// through all three passes (checked between color rounds and between
/// passes). A cancelled run returns `Err(`[`Cancelled`]`)` with no
/// partial result; a completed run is bit-identical to the
/// uncancellable one.
pub fn sample_exact_local_cancellable_with<
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
>(
    net: &Network,
    oracle: &O,
    eps: f64,
    stream: u64,
    pool: &ThreadPool,
    cancel: &CancelToken,
) -> Result<
    (
        LocalRun<Value>,
        ChromaticSchedule,
        JvvStats,
        ExactSampleTimings,
    ),
    Cancelled,
> {
    let model = net.instance().model();
    let ell = model.locality().max(1);
    let t = oracle.radius_mul(model, eps);
    let locality = multipass_locality(&[t, t, 3 * t + ell]);
    let start = Instant::now();
    cancel.check()?;
    let schedule = scheduler::chromatic_schedule(net, locality, stream);
    let schedule_wall = start.elapsed();
    let jvv = LocalJvv::new(oracle, eps);
    let (outcome, passes) = jvv.run_scheduled_cancellable(net, &schedule, pool, cancel)?;
    let n = net.node_count();
    let failures: Vec<bool> = (0..n)
        .map(|v| outcome.run.failures[v] || schedule.failed[v])
        .collect();
    Ok((
        LocalRun {
            outputs: outcome.run.outputs,
            failures,
            rounds: schedule.rounds,
        },
        schedule,
        outcome.stats,
        ExactSampleTimings {
            schedule: schedule_wall,
            passes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::metrics;
    use lds_gibbs::models::two_spin::TwoSpinParams;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_graph::{generators, ordering};
    use lds_localnet::Instance;
    use lds_oracle::{BoostedOracle, DecayRate, EnumerationOracle, TwoSpinSawOracle};

    fn boosted_saw(lambda: f64) -> BoostedOracle<TwoSpinSawOracle> {
        BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(lambda),
            DecayRate::new(0.5, 2.0),
        ))
    }

    #[test]
    fn ground_state_and_output_are_feasible() {
        let g = generators::cycle(7);
        let model = hardcore::model(&g, 1.0);
        let oracle = boosted_saw(1.0);
        let jvv = LocalJvv::new(&oracle, 0.05);
        for seed in 0..10 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let out = jvv.run_detailed(&net, &ordering::identity(&g));
            let y = Config::from_values(out.run.outputs.clone());
            assert!(model.weight(&y) > 0.0, "seed {seed}: infeasible Y");
            assert_eq!(out.stats.repair_failures, 0);
        }
    }

    #[test]
    fn acceptance_probabilities_within_bounds() {
        let g = generators::cycle(6);
        let model = hardcore::model(&g, 1.3);
        let oracle = boosted_saw(1.3);
        let eps = 0.01;
        let jvv = LocalJvv::new(&oracle, eps);
        let net = Network::new(Instance::unconditioned(model), 3);
        let out = jvv.run_detailed(&net, &ordering::identity(&g));
        assert_eq!(out.stats.clamped, 0, "oracle violated its error bound");
        assert!(out.stats.acceptance_product <= 1.0 + 1e-12);
        assert!(
            out.stats.acceptance_product >= jvv.success_lower_bound(6) - 1e-9,
            "acceptance {} below bound {}",
            out.stats.acceptance_product,
            jvv.success_lower_bound(6)
        );
    }

    #[test]
    fn exactness_on_small_cycle() {
        // conditioned on success, outputs must follow μ^τ exactly
        let n = 5usize;
        let g = generators::cycle(n);
        let model = hardcore::model(&g, 1.0);
        let oracle = boosted_saw(1.0);
        let jvv = LocalJvv::new(&oracle, 0.02);
        let order = ordering::identity(&g);
        let trials = 30_000usize;
        let mut accepted = Vec::new();
        for seed in 0..trials as u64 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let out = jvv.run_detailed(&net, &order);
            if out.run.succeeded() {
                accepted.push(Config::from_values(out.run.outputs));
            }
        }
        let success_rate = accepted.len() as f64 / trials as f64;
        assert!(
            success_rate >= jvv.success_lower_bound(n) - 0.02,
            "success rate {success_rate}"
        );
        let emp = metrics::empirical_distribution(&accepted);
        let exact = distribution::joint_distribution(&model, &PartialConfig::empty(n)).unwrap();
        let tv = metrics::tv_distance_joint(&emp, &exact);
        assert!(tv < 0.05, "conditioned-on-success TV {tv}");
    }

    #[test]
    fn exactness_with_exact_oracle_via_enumeration() {
        // with an exact oracle (radius covers the graph) the acceptance
        // is the constant slack and the output is exactly the chain rule
        let n = 4usize;
        let g = generators::path(n);
        let model = hardcore::model(&g, 2.0);
        let base = EnumerationOracle::new(DecayRate::new(0.1, 4.0));
        let oracle = BoostedOracle::new(base);
        let eps = 1e-6;
        let jvv = LocalJvv::new(&oracle, eps);
        let net = Network::new(Instance::unconditioned(model.clone()), 0);
        let out = jvv.run_detailed(&net, &ordering::identity(&g));
        // q_{v_i} = slack for every node when the oracle is exact
        let expect = jvv.slack(n).powi(n as i32);
        assert!(
            (out.stats.acceptance_product - expect).abs() < 1e-9,
            "acceptance {} expected {}",
            out.stats.acceptance_product,
            expect
        );
    }

    #[test]
    fn respects_pinning() {
        let g = generators::cycle(6);
        let model = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(6);
        tau.pin(NodeId(2), Value(1));
        let inst = Instance::new(model, tau).unwrap();
        let oracle = boosted_saw(1.0);
        let jvv = LocalJvv::new(&oracle, 0.05);
        for seed in 0..10 {
            let net = Network::new(inst.clone(), seed);
            let out = jvv.run_detailed(&net, &ordering::identity(net.instance().model().graph()));
            assert_eq!(out.run.outputs[2], Value(1));
            assert_eq!(out.run.outputs[1], Value(0));
            assert_eq!(out.run.outputs[3], Value(0));
        }
    }

    #[test]
    fn local_version_reports_rounds_and_success() {
        let g = generators::cycle(10);
        let model = hardcore::model(&g, 1.0);
        let net = Network::new(Instance::unconditioned(model), 1);
        let oracle = boosted_saw(1.0);
        let (run, schedule, stats) = sample_exact_local(&net, &oracle, 0.05, 0);
        assert!(run.rounds > 0);
        assert_eq!(run.rounds, schedule.rounds);
        assert!(stats.locality > 0);
    }

    #[test]
    fn colorings_jvv_produces_proper_colorings() {
        let g = generators::cycle(6);
        let model = coloring::model(&g, 3);
        let base = EnumerationOracle::new(DecayRate::new(0.4, 2.0));
        let oracle = BoostedOracle::new(base);
        let jvv = LocalJvv::new(&oracle, 0.05);
        for seed in 0..5 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let out = jvv.run_detailed(&net, &ordering::identity(&g));
            let y = Config::from_values(out.run.outputs);
            assert!(coloring::is_proper(&g, &y), "seed {seed}");
        }
    }

    use lds_gibbs::PartialConfig;
}
