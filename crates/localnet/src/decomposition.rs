//! Randomized network decomposition (Linial–Saks).
//!
//! A `(C, D)` *network decomposition* partitions the nodes into clusters,
//! each assigned one of `C` colors, such that clusters of the same color
//! are non-adjacent and every cluster has weak diameter at most `D`. The
//! SLOCAL→LOCAL transformation (paper, Lemma 3.1, following
//! Ghaffari–Kuhn–Maus) runs on an `(O(log n), O(log n))` decomposition of
//! the power graph `G^{r+1}`.
//!
//! We implement the classic randomized construction of Linial & Saks: in
//! each of `O(log n)` phases every remaining node `y` draws a truncated
//! geometric radius `r_y`; each remaining node `u` joins the candidate
//! center of **maximum id** among `{y : dist(u, y) ≤ r_y}` (distances in
//! the remaining graph), and is *finalized* in this phase iff its distance
//! to that center is strictly below `r_y`. Finalized same-phase clusters
//! with different centers are provably non-adjacent; each phase finalizes
//! each node with constant probability, so `O(log n)` phases suffice
//! w.h.p. Nodes still unclustered when the color budget runs out are
//! **locally certified failures** — exactly the failure mode Lemma 3.1
//! charges to `Σ_v E[F″_v]`.

use lds_graph::{traversal, Graph, NodeId};
use rand::Rng;

/// Marker for nodes without a cluster/color.
pub const UNCLUSTERED: u32 = u32::MAX;

/// Tuning parameters of the decomposition.
#[derive(Clone, Copy, Debug)]
pub struct DecompositionParams {
    /// Maximum number of colors (phases) before giving up; `O(log n)`.
    pub color_cap: usize,
    /// Truncation of the geometric radius distribution; `O(log n)`.
    pub radius_cap: usize,
}

impl DecompositionParams {
    /// Defaults giving an `(O(log n), O(log n))` decomposition w.h.p.:
    /// `color_cap = 8·⌈log₂ n⌉ + 8`, `radius_cap = ⌈log₂ n⌉ + 1`.
    pub fn for_size(n: usize) -> Self {
        let log = usize::BITS as usize - n.max(2).leading_zeros() as usize;
        DecompositionParams {
            color_cap: 8 * log + 8,
            radius_cap: log + 1,
        }
    }
}

/// A network decomposition: per-node cluster ids and colors, per-cluster
/// centers, and failure flags for unclustered nodes.
#[derive(Clone, Debug)]
pub struct NetworkDecomposition {
    /// Cluster id per node ([`UNCLUSTERED`] if failed).
    pub cluster: Vec<u32>,
    /// Color (phase) per node ([`UNCLUSTERED`] if failed).
    pub color: Vec<u32>,
    /// Number of colors used.
    pub colors: usize,
    /// Center node of each cluster, indexed by cluster id.
    pub centers: Vec<NodeId>,
    /// Locally certified failure flags (`F″_v`): unclustered nodes.
    pub failed: Vec<bool>,
}

impl NetworkDecomposition {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.centers.len()
    }

    /// Members of each cluster, indexed by cluster id.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut m = vec![Vec::new(); self.centers.len()];
        for (i, &c) in self.cluster.iter().enumerate() {
            if c != UNCLUSTERED {
                m[c as usize].push(NodeId::from_index(i));
            }
        }
        m
    }

    /// Returns `true` if no node failed to be clustered.
    pub fn is_complete(&self) -> bool {
        self.failed.iter().all(|&f| !f)
    }

    /// Verifies the defining property on the graph the decomposition was
    /// computed on: same-color adjacent nodes are in the same cluster.
    pub fn verify_color_separation(&self, g: &Graph) -> bool {
        g.edges().iter().all(|e| {
            let (u, v) = (e.u.index(), e.v.index());
            self.color[u] == UNCLUSTERED
                || self.color[v] == UNCLUSTERED
                || self.color[u] != self.color[v]
                || self.cluster[u] == self.cluster[v]
        })
    }

    /// Maximum weak radius of any cluster measured in `base`: the largest
    /// `dist_base(center, member)`. Weak diameter is at most twice this.
    pub fn max_weak_radius(&self, base: &Graph) -> usize {
        let mut worst = 0usize;
        for (cid, members) in self.members().iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let d = traversal::bfs_distances(base, self.centers[cid]);
            for &v in members {
                worst = worst.max(d[v.index()] as usize);
            }
        }
        worst
    }

    /// Maximum weak radius per color (in `base`), indexed by color.
    pub fn weak_radius_by_color(&self, base: &Graph) -> Vec<usize> {
        let mut by_color = vec![0usize; self.colors];
        for (cid, members) in self.members().iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let color = members
                .first()
                .map(|v| self.color[v.index()] as usize)
                .expect("nonempty");
            let d = traversal::bfs_distances(base, self.centers[cid]);
            for &v in members {
                by_color[color] = by_color[color].max(d[v.index()] as usize);
            }
        }
        by_color
    }
}

/// Truncated geometric radius: `Pr[r = j] = 2^{-(j+1)}` for `j < cap`,
/// remaining mass on `cap`.
fn truncated_geometric<R: Rng + ?Sized>(cap: usize, rng: &mut R) -> usize {
    let mut r = 0usize;
    while r < cap && rng.gen_bool(0.5) {
        r += 1;
    }
    r
}

/// Runs the Linial–Saks decomposition on `g`.
///
/// The returned decomposition satisfies color separation by construction
/// (verified in tests); nodes not finalized within `params.color_cap`
/// phases carry `failed = true`.
pub fn linial_saks<R: Rng + ?Sized>(
    g: &Graph,
    params: DecompositionParams,
    rng: &mut R,
) -> NetworkDecomposition {
    let n = g.node_count();
    let mut cluster = vec![UNCLUSTERED; n];
    let mut color = vec![UNCLUSTERED; n];
    let mut centers: Vec<NodeId> = Vec::new();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut remaining_count = n;
    let mut phase = 0usize;

    while remaining_count > 0 && phase < params.color_cap {
        // 1. draw radii for remaining nodes
        let radii: Vec<usize> = (0..n)
            .map(|v| {
                if remaining[v] {
                    truncated_geometric(params.radius_cap, rng)
                } else {
                    0
                }
            })
            .collect();

        // 2. each remaining u finds the max-id center y with
        //    dist_rem(u, y) <= r_y; BFS from every candidate center.
        //    best[u] = (y_id, dist) with max y_id preferred.
        let mut best: Vec<Option<(u32, u32)>> = vec![None; n];
        for y in 0..n {
            if !remaining[y] {
                continue;
            }
            let ry = radii[y];
            // truncated BFS within remaining nodes
            let mut dist = vec![u32::MAX; n];
            let mut queue = std::collections::VecDeque::new();
            dist[y] = 0;
            queue.push_back(NodeId::from_index(y));
            while let Some(u) = queue.pop_front() {
                let du = dist[u.index()];
                let better = match best[u.index()] {
                    None => true,
                    Some((by, _)) => (y as u32) > by,
                };
                if better {
                    best[u.index()] = Some((y as u32, du));
                }
                if (du as usize) < ry {
                    for &w in g.neighbors(u) {
                        if remaining[w.index()] && dist[w.index()] == u32::MAX {
                            dist[w.index()] = du + 1;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }

        // 3. finalize nodes strictly inside their center's radius
        let mut new_cluster_of_center: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        for u in 0..n {
            if !remaining[u] {
                continue;
            }
            if let Some((y, d)) = best[u] {
                if (d as usize) < radii[y as usize] {
                    let cid = *new_cluster_of_center.entry(y).or_insert_with(|| {
                        centers.push(NodeId(y));
                        (centers.len() - 1) as u32
                    });
                    cluster[u] = cid;
                    color[u] = phase as u32;
                    remaining[u] = false;
                    remaining_count -= 1;
                }
            }
        }
        phase += 1;
    }

    let failed: Vec<bool> = remaining;
    NetworkDecomposition {
        cluster,
        color,
        colors: phase,
        centers,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decompose(g: &Graph, seed: u64) -> NetworkDecomposition {
        let mut rng = StdRng::seed_from_u64(seed);
        linial_saks(g, DecompositionParams::for_size(g.node_count()), &mut rng)
    }

    #[test]
    fn clusters_cover_all_nodes_whp() {
        for seed in 0..5 {
            let g = generators::torus(6, 6);
            let d = decompose(&g, seed);
            assert!(d.is_complete(), "seed {seed} left nodes unclustered");
            assert!(d.cluster_count() >= 1);
        }
    }

    #[test]
    fn color_separation_holds() {
        for seed in 0..5 {
            let g = generators::random_regular(40, 4, &mut StdRng::seed_from_u64(seed));
            let d = decompose(&g, seed);
            assert!(d.verify_color_separation(&g), "seed {seed}");
        }
    }

    #[test]
    fn color_and_radius_are_logarithmic() {
        let g = generators::torus(8, 8); // n = 64
        let d = decompose(&g, 3);
        let log = 7; // ceil(log2 64) + 1
        assert!(d.colors <= 8 * log + 8);
        assert!(d.max_weak_radius(&g) <= 2 * log);
    }

    #[test]
    fn members_partition_clustered_nodes() {
        let g = generators::grid(5, 5);
        let d = decompose(&g, 11);
        let members = d.members();
        let total: usize = members.iter().map(Vec::len).sum();
        let clustered = d.failed.iter().filter(|&&f| !f).count();
        assert_eq!(total, clustered);
        for (cid, m) in members.iter().enumerate() {
            for &v in m {
                assert_eq!(d.cluster[v.index()], cid as u32);
            }
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, []);
        let d = decompose(&g, 0);
        assert!(d.is_complete());
        assert_eq!(d.cluster_count(), 1);
        assert_eq!(d.max_weak_radius(&g), 0);
    }

    #[test]
    fn zero_color_cap_fails_everyone() {
        let g = generators::cycle(5);
        let mut rng = StdRng::seed_from_u64(1);
        let d = linial_saks(
            &g,
            DecompositionParams {
                color_cap: 0,
                radius_cap: 3,
            },
            &mut rng,
        );
        assert!(!d.is_complete());
        assert_eq!(d.failed.iter().filter(|&&f| f).count(), 5);
    }

    use lds_graph::Graph;
}
