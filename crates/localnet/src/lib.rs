//! LOCAL and SLOCAL model simulators.
//!
//! This crate realizes the computational models of Feng & Yin (PODC 2018):
//!
//! * [`Instance`] — a sampling/counting instance `(G, x, τ)`
//!   (Definition 2.2): a Gibbs model plus a feasible pinning.
//! * [`Network`] — the distributed network: the instance plus per-node
//!   randomness (each node holds "an arbitrarily long random bit string",
//!   realized as a per-node RNG seed derived from a network seed).
//! * [`View`] — the radius-`t` view a LOCAL node gathers: the ball
//!   `B_t(v)` as a local-id subgraph, the restricted model `w_B` (factors
//!   fully inside the ball), the restricted pinning, member seeds and
//!   distances. A `LocalAlgorithm` computes each node's output from its
//!   view and nothing else — exactly the LOCAL model of Section 2.
//! * [`local`] — the [`LocalAlgorithm`](local::LocalAlgorithm) trait and
//!   runner with round accounting and Las Vegas failure bits.
//! * [`slocal`] — the [`SlocalAlgorithm`](slocal::SlocalAlgorithm) trait:
//!   sequential local algorithms scanning an adversarial ordering
//!   (Ghaffari–Kuhn–Maus SLOCAL model).
//! * [`decomposition`] — randomized Linial–Saks style
//!   `(O(log n), O(log n))` network decompositions with locally
//!   certifiable failures.
//! * [`scheduler`] — the SLOCAL→LOCAL transformation (paper, Lemma 3.1):
//!   decompose the power graph `G^{r+1}`, derive the chromatic schedule
//!   ordering and the simulated round count `O(r log² n)`.
//!
//! # Example
//!
//! ```
//! use lds_gibbs::models::hardcore;
//! use lds_gibbs::PartialConfig;
//! use lds_graph::{generators, NodeId};
//! use lds_localnet::{Instance, Network};
//!
//! let g = generators::cycle(8);
//! let inst = Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(8)).unwrap();
//! let net = Network::new(inst, 42);
//! let view = net.view(NodeId(0), 2);
//! assert_eq!(view.subgraph().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomposition;
mod instance;
pub mod local;
mod network;
pub mod scheduler;
pub mod slocal;
mod view;

pub use instance::{InfeasiblePinning, Instance};
pub use network::Network;
pub use view::View;
