use std::sync::Arc;

use lds_graph::{traversal, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Instance, View};

/// The distributed network: an [`Instance`] plus per-node randomness.
///
/// Each node of the LOCAL model holds an arbitrarily long private random
/// bit string (paper, Section 2 "The LOCAL Model"). We realize this with a
/// per-node 64-bit seed derived deterministically from the network seed by
/// a SplitMix64 step, so that
///
/// * a node's randomness is *part of its view* — gathering `B_t(v)`
///   collects the seeds of all members, exactly like the model's
///   "inputs and random bits of the nodes within that radius", and
/// * re-running an algorithm with the same network seed reproduces the
///   same randomness (needed to *reconstruct* a node's output
///   distribution in the sampling→inference reduction, Theorem 3.4).
///
/// The instance is held behind an [`Arc`] so that many executions of the
/// same instance (different seeds, as in batched sampling or Monte Carlo
/// reconstruction) share one copy of the graph and factor tables.
#[derive(Clone, Debug)]
pub struct Network {
    instance: Arc<Instance>,
    seed: u64,
}

/// SplitMix64 finalizer: decorrelates per-node seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Network {
    /// Creates a network over the instance with the given master seed.
    pub fn new(instance: Instance, seed: u64) -> Self {
        Network {
            instance: Arc::new(instance),
            seed,
        }
    }

    /// Creates a network sharing an already-wrapped instance — the O(1)
    /// constructor for running many seeds against one instance.
    pub fn from_shared(instance: Arc<Instance>, seed: u64) -> Self {
        Network { instance, seed }
    }

    /// The instance `(G, x, τ)`.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// A shared handle to the instance (for spawning sibling networks
    /// with other seeds without cloning the model).
    pub fn shared_instance(&self) -> Arc<Instance> {
        Arc::clone(&self.instance)
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.instance.node_count()
    }

    /// The master seed of this execution.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The private random seed of node `v` for round usage `stream`
    /// (different algorithms/passes use different streams so their
    /// randomness is independent).
    pub fn node_seed(&self, v: NodeId, stream: u64) -> u64 {
        splitmix64(
            self.seed
                .wrapping_mul(0x2545f4914f6cdd1d)
                .wrapping_add(splitmix64((v.0 as u64) << 20 | stream)),
        )
    }

    /// An RNG seeded with node `v`'s private randomness for `stream`.
    pub fn node_rng(&self, v: NodeId, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.node_seed(v, stream))
    }

    /// Gathers the radius-`t` view of node `v`: ball topology, restricted
    /// model `w_B`, restricted pinning, member seeds (stream 0 seeds are
    /// derivable from the view by re-deriving with the member ids, so we
    /// expose member ids and the master seed through the view).
    pub fn view(&self, v: NodeId, t: usize) -> View {
        let mut members = traversal::ball(self.instance.model().graph(), v, t);
        // Local ids are assigned in increasing global-id order so that
        // id-based tie-breaking inside a view matches the global graph
        // (the unique IDs are part of the gathered information).
        members.sort_unstable();
        View::build(self, v, t, &members)
    }

    /// Returns a new network with extra pins merged into the pinning (the
    /// local self-reduction step); randomness is unchanged.
    pub fn with_pins(&self, extra: &lds_gibbs::PartialConfig) -> Network {
        Network {
            instance: Arc::new(self.instance.with_pins(extra)),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::PartialConfig;
    use lds_graph::generators;

    fn net() -> Network {
        let g = generators::cycle(6);
        Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(6)).unwrap(),
            7,
        )
    }

    #[test]
    fn node_seeds_are_deterministic_and_distinct() {
        let n = net();
        assert_eq!(n.node_seed(NodeId(0), 0), n.node_seed(NodeId(0), 0));
        assert_ne!(n.node_seed(NodeId(0), 0), n.node_seed(NodeId(1), 0));
        assert_ne!(n.node_seed(NodeId(0), 0), n.node_seed(NodeId(0), 1));
    }

    #[test]
    fn different_master_seeds_differ() {
        let g = generators::cycle(6);
        let i = Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(6)).unwrap();
        let n1 = Network::new(i.clone(), 1);
        let n2 = Network::new(i, 2);
        assert_ne!(n1.node_seed(NodeId(3), 0), n2.node_seed(NodeId(3), 0));
    }

    #[test]
    fn view_gathers_ball() {
        let n = net();
        let v = n.view(NodeId(2), 1);
        assert_eq!(v.subgraph().len(), 3);
        assert!(v.subgraph().contains(NodeId(1)));
        assert!(v.subgraph().contains(NodeId(3)));
    }
}
