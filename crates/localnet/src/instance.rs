use std::fmt;

use lds_gibbs::{GibbsModel, PartialConfig};

/// Error returned when constructing an [`Instance`] whose pinning is not
/// even locally feasible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasiblePinning;

impl fmt::Display for InfeasiblePinning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pinning violates a fully pinned constraint")
    }
}

impl std::error::Error for InfeasiblePinning {}

/// A distributed sampling/counting instance `(G, x, τ)` (paper,
/// Definition 2.2): a joint distribution `μ = μ_{(G,x)}` given as a
/// [`GibbsModel`], together with a feasible pinning `τ ∈ Σ^Λ`. The target
/// distribution is the conditional `μ^τ`.
///
/// # Example
///
/// ```
/// use lds_gibbs::models::hardcore;
/// use lds_gibbs::{PartialConfig, Value};
/// use lds_graph::{generators, NodeId};
/// use lds_localnet::Instance;
///
/// let g = generators::path(3);
/// let mut tau = PartialConfig::empty(3);
/// tau.pin(NodeId(0), Value(1));
/// let inst = Instance::new(hardcore::model(&g, 1.0), tau).unwrap();
/// assert_eq!(inst.pinning().pinned_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Instance {
    model: GibbsModel,
    pinning: PartialConfig,
}

impl Instance {
    /// Creates an instance, verifying the pinning is locally feasible.
    ///
    /// Full (global) feasibility is exponential to verify; the paper
    /// assumes instances come with feasible `τ`. For locally admissible
    /// models (Definition 2.5) local feasibility *is* feasibility, which
    /// covers every model family shipped in [`lds_gibbs::models`] under
    /// their standard parameter regimes.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasiblePinning`] if a fully pinned factor evaluates to
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if the pinning length differs from the model's node count.
    pub fn new(model: GibbsModel, pinning: PartialConfig) -> Result<Self, InfeasiblePinning> {
        assert_eq!(
            pinning.len(),
            model.node_count(),
            "pinning must cover the node set"
        );
        if !model.is_locally_feasible(&pinning) {
            return Err(InfeasiblePinning);
        }
        Ok(Instance { model, pinning })
    }

    /// Creates an instance with the empty pinning (always feasible).
    pub fn unconditioned(model: GibbsModel) -> Self {
        let n = model.node_count();
        Instance {
            model,
            pinning: PartialConfig::empty(n),
        }
    }

    /// The joint distribution `μ_{(G,x)}`.
    pub fn model(&self) -> &GibbsModel {
        &self.model
    }

    /// The pinning `τ`.
    pub fn pinning(&self) -> &PartialConfig {
        &self.pinning
    }

    /// Number of network nodes `n`.
    pub fn node_count(&self) -> usize {
        self.model.node_count()
    }

    /// Returns a new instance with extra pins merged in (the
    /// self-reduction `τ ∧ σ`); no feasibility re-check is performed.
    pub fn with_pins(&self, extra: &PartialConfig) -> Instance {
        let mut pinning = self.pinning.clone();
        pinning.extend_with(extra);
        Instance {
            model: self.model.clone(),
            pinning,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::Value;
    use lds_graph::{generators, NodeId};

    #[test]
    fn accepts_feasible_pinning() {
        let g = generators::path(3);
        let mut tau = PartialConfig::empty(3);
        tau.pin(NodeId(0), Value(1));
        tau.pin(NodeId(2), Value(1));
        assert!(Instance::new(hardcore::model(&g, 1.0), tau).is_ok());
    }

    #[test]
    fn rejects_locally_infeasible_pinning() {
        let g = generators::path(2);
        let mut tau = PartialConfig::empty(2);
        tau.pin(NodeId(0), Value(1));
        tau.pin(NodeId(1), Value(1));
        let err = Instance::new(hardcore::model(&g, 1.0), tau).unwrap_err();
        assert_eq!(err, InfeasiblePinning);
        assert!(err.to_string().contains("constraint"));
    }

    #[test]
    fn with_pins_merges() {
        let g = generators::path(3);
        let inst = Instance::unconditioned(hardcore::model(&g, 1.0));
        let mut extra = PartialConfig::empty(3);
        extra.pin(NodeId(1), Value(0));
        let inst2 = inst.with_pins(&extra);
        assert_eq!(inst2.pinning().pinned_count(), 1);
        assert_eq!(inst.pinning().pinned_count(), 0);
    }
}
