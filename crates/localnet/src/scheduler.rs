//! The SLOCAL→LOCAL transformation (paper, Lemma 3.1).
//!
//! Given an SLOCAL algorithm `A` with locality `r`, the LOCAL algorithm
//! `B`:
//!
//! 1. computes an `(O(log n), O(log n))` network decomposition of the
//!    power graph `G^{r+1}` (so same-color clusters are at pairwise
//!    distance `> r + 1` in `G`),
//! 2. processes colors in increasing order; within a color, every cluster
//!    simulates `A` on its members **in parallel** (the cluster's leader
//!    gathers the cluster plus a radius-`r` halo, runs the scan, and
//!    disseminates the states), which is sound because concurrent
//!    clusters are too far apart for their radius-`r` reads to interact;
//! 3. the resulting execution is *identical* to running `A` sequentially
//!    on the ordering `π` = (colors, then clusters, then members), so
//!    conditioned on the decomposition succeeding the output distribution
//!    is exactly `μ̂_{I,π}` for that ordering — the statement of
//!    Lemma 3.1.
//!
//! Simulated round cost charged here:
//! `Σ_colors (2·weak_radius_color + r + 1)`, the cost of gather +
//! disseminate per color class; with `O(log n)` colors and weak radius
//! `O((r+1) log n)` in `G` this is the paper's `O(r log² n)`.
//!
//! Decomposition failures are surfaced as per-node failure bits `F″_v`
//! with `Σ_v E[F″_v] = O(1/n²)` under the default parameters, and are
//! independent of the algorithm's own randomness — as required by the
//! proof of Proposition 4.3.

use std::sync::Arc;

use lds_graph::{power, NodeId};
use lds_runtime::{streams, StreamRng, ThreadPool};

use crate::decomposition::{linial_saks, DecompositionParams, NetworkDecomposition, UNCLUSTERED};
use crate::local::LocalRun;
use crate::slocal::{ScanKernel, SlocalAlgorithm};
use crate::Network;

/// A chromatic schedule: the sequential ordering realized by the parallel
/// cluster simulation, plus the simulated round cost.
#[derive(Clone, Debug)]
pub struct ChromaticSchedule {
    /// The ordering `π` the parallel simulation is equivalent to. Includes
    /// all nodes; unclustered (failed) nodes are appended at the end.
    pub order: Vec<NodeId>,
    /// The parallel form of the schedule: for each color in increasing
    /// order, the clusters of that color (members sorted by id). Same-
    /// color clusters are at pairwise distance `> r + 1` in `G`, so they
    /// may be simulated concurrently; flattening this nesting and
    /// appending [`ChromaticSchedule::tail`] reproduces `order` exactly.
    pub color_clusters: Vec<Vec<Vec<NodeId>>>,
    /// Unclustered (failed) nodes, processed sequentially after all
    /// colors — the tail of `order`.
    pub tail: Vec<NodeId>,
    /// Failure bits `F″_v` from the decomposition.
    pub failed: Vec<bool>,
    /// Simulated LOCAL rounds.
    pub rounds: usize,
    /// Colors used by the decomposition.
    pub colors: usize,
    /// Largest weak radius of a cluster, measured in `G`.
    pub max_weak_radius: usize,
    /// The decomposition itself (on `G^{r+1}`).
    pub decomposition: NetworkDecomposition,
}

/// Computes the chromatic schedule for locality `r` on the network's
/// graph: decomposition of `G^{r+1}`, equivalent ordering, and round cost.
///
/// `stream` decorrelates scheduling randomness from algorithm randomness
/// (pass distinct streams for nested uses). Decomposition randomness is
/// derived through the [`StreamRng`] tree under the
/// [`streams::DECOMPOSITION`] domain, so it is independent of the
/// algorithm randomness drawn from the per-node streams (Proposition
/// 4.3) while sharing the one master seed.
pub fn chromatic_schedule(net: &Network, locality: usize, stream: u64) -> ChromaticSchedule {
    let g = net.instance().model().graph();
    let n = g.node_count();
    // A LOCAL node never needs to gather beyond the graph's diameter:
    // radius `diam` already delivers the whole graph, so larger declared
    // localities are capped here (keeps simulated rounds honest on small
    // benchmark graphs whose diameter is below the asymptotic radius).
    let diam = lds_graph::traversal::diameter(g) as usize;
    let locality = locality.min(diam.max(1));
    let h = power::power(g, locality + 1);
    let mut rng = StreamRng::derive(net.seed(), streams::DECOMPOSITION)
        .substream(stream)
        .rng();
    let decomposition = linial_saks(&h, DecompositionParams::for_size(n), &mut rng);

    // Group clusters by (color, cluster id); members sorted by id.
    let members = decomposition.members();
    let mut cluster_ids: Vec<usize> = (0..members.len())
        .filter(|&cid| !members[cid].is_empty())
        .collect();
    cluster_ids.sort_by_key(|&cid| {
        let color = members[cid]
            .first()
            .map(|v| decomposition.color[v.index()])
            .unwrap_or(UNCLUSTERED);
        (color, cid)
    });
    let mut color_clusters: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); decomposition.colors];
    for &cid in &cluster_ids {
        let mut m = members[cid].clone();
        m.sort_unstable();
        let color = decomposition.color[m[0].index()] as usize;
        color_clusters[color].push(m);
    }
    // failed nodes last (they output defaults and carry F″ = 1)
    let tail: Vec<NodeId> = (0..n)
        .filter(|&v| decomposition.failed[v])
        .map(NodeId::from_index)
        .collect();
    let order: Vec<NodeId> = color_clusters
        .iter()
        .flatten()
        .flatten()
        .chain(tail.iter())
        .copied()
        .collect();
    debug_assert_eq!(order.len(), n);

    // Round cost: per color, gather cluster + halo and disseminate.
    let radius_by_color = decomposition.weak_radius_by_color(g);
    let rounds: usize = radius_by_color
        .iter()
        .map(|&wr| 2 * wr + locality + 1)
        .sum();

    ChromaticSchedule {
        failed: decomposition.failed.clone(),
        rounds,
        colors: decomposition.colors,
        max_weak_radius: decomposition.max_weak_radius(g),
        order,
        color_clusters,
        tail,
        decomposition,
    }
}

/// Runs any [`ScanKernel`] under the chromatic schedule with same-color
/// clusters simulated **concurrently** on the pool — the literal
/// parallel simulation of Lemma 3.1, replacing the sequential
/// within-color scan. Pinning-extension kernels
/// ([`crate::slocal::SlocalKernel`]) run
/// here through their blanket `ScanKernel` impl; richer kernels
/// (`local-JVV`'s rejection pass) implement `ScanKernel` directly.
///
/// Colors are processed in order; within a color every cluster scans its
/// members sequentially against a snapshot of the scan state accumulated
/// through the previous colors, and the per-node effects are replayed
/// onto the global state **in cluster order** — the order the sequential
/// scan uses. Same-color clusters are at pairwise distance `> r + 1`,
/// so (under the kernel's locality contract) no cluster can observe
/// another's state mutations, and the merged result is **bit-identical**
/// to [`crate::slocal::run_scan_sequential`] on `schedule.order` — at
/// any pool width. Unclustered (failed) nodes are processed sequentially
/// at the end, exactly as in the sequential scan.
///
/// The kernel ships to the pool's workers as part of a `'static` job, so
/// it must own its context (`Clone + Send + Sync + 'static`) — oracles
/// travel by value or `Arc`, never by borrow.
pub fn run_kernel_chromatic<K>(
    net: &Network,
    kernel: &K,
    schedule: &ChromaticSchedule,
    pool: &ThreadPool,
) -> K::Run
where
    K: ScanKernel + Clone + Send + Sync + 'static,
{
    if pool.is_sequential() {
        // the sequential scan is the same execution without the
        // per-cluster state snapshots — one state for the whole schedule
        // instead of one clone per cluster
        return crate::slocal::run_scan_sequential(net, kernel, &schedule.order);
    }
    let mut state = kernel.init(net);
    let mut effects: Vec<(NodeId, K::Effect)> = Vec::new();
    for clusters in &schedule.color_clusters {
        if let [cluster] = clusters.as_slice() {
            // a single cluster this color: scan it inline on the global
            // state — same execution, no snapshot clone, no fan-out
            for &v in cluster {
                if let Some(e) = kernel.process(net, &mut state, v) {
                    effects.push((v, e));
                }
            }
            continue;
        }
        let snapshot = Arc::new(state.clone());
        let runs: Vec<Vec<(NodeId, K::Effect)>> = pool.par_map(clusters, {
            let net = net.clone();
            let kernel = kernel.clone();
            move |cluster: &Vec<NodeId>| {
                let mut local = (*snapshot).clone();
                let mut out = Vec::with_capacity(cluster.len());
                for &v in cluster {
                    if let Some(e) = kernel.process(&net, &mut local, v) {
                        out.push((v, e));
                    }
                }
                out
            }
        });
        // replay in cluster order — the order the sequential scan uses
        for cluster_out in runs {
            for (v, e) in cluster_out {
                kernel.apply(&mut state, v, &e);
                effects.push((v, e));
            }
        }
    }
    for &v in &schedule.tail {
        if let Some(e) = kernel.process(net, &mut state, v) {
            effects.push((v, e));
        }
    }
    kernel.finish(net, state, effects)
}

/// Runs an SLOCAL algorithm as a LOCAL algorithm via the chromatic
/// schedule (Lemma 3.1). The returned run's `failures` combine the
/// algorithm's own `F′_v` with the decomposition's `F″_v`; conditioned on
/// all-success the outputs follow `μ̂_{I,π}` for the schedule's ordering.
pub fn run_slocal_in_local<A: SlocalAlgorithm>(
    net: &Network,
    algo: &A,
    stream: u64,
) -> (LocalRun<A::Output>, ChromaticSchedule) {
    let n = net.node_count();
    let schedule = chromatic_schedule(net, algo.locality(n), stream);
    let seq = algo.run_sequential(net, &schedule.order);
    let failures: Vec<bool> = (0..n)
        .map(|v| seq.failures[v] || schedule.failed[v])
        .collect();
    (
        LocalRun {
            outputs: seq.outputs,
            failures,
            rounds: schedule.rounds,
        },
        schedule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slocal::SlocalRun;
    use crate::Instance;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::PartialConfig;
    use lds_graph::{generators, ordering, traversal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(n_side: usize, seed: u64) -> Network {
        let g = generators::torus(n_side, n_side);
        let n = g.node_count();
        Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(n)).unwrap(),
            seed,
        )
    }

    #[test]
    fn schedule_order_is_a_permutation() {
        let net = net(5, 3);
        let s = chromatic_schedule(&net, 2, 0);
        assert!(ordering::is_permutation(
            net.instance().model().graph(),
            &s.order
        ));
    }

    #[test]
    fn same_color_clusters_are_far_apart() {
        let net = net(6, 9);
        let r = 2usize;
        let s = chromatic_schedule(&net, r, 0);
        let g = net.instance().model().graph();
        let d = &s.decomposition;
        // brute-force: same color, different cluster => distance > r+1
        for u in g.nodes() {
            if d.color[u.index()] == UNCLUSTERED {
                continue;
            }
            let dist = traversal::bfs_distances(g, u);
            for v in g.nodes() {
                if v <= u || d.color[v.index()] == UNCLUSTERED {
                    continue;
                }
                if d.color[u.index()] == d.color[v.index()]
                    && d.cluster[u.index()] != d.cluster[v.index()]
                {
                    assert!(
                        dist[v.index()] as usize > r + 1,
                        "{u} and {v} same color but distance {}",
                        dist[v.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn color_clusters_flatten_to_the_order() {
        for seed in 0..5 {
            let net = net(5, seed);
            let s = chromatic_schedule(&net, 2, 0);
            let flat: Vec<_> = s
                .color_clusters
                .iter()
                .flatten()
                .flatten()
                .chain(s.tail.iter())
                .copied()
                .collect();
            assert_eq!(flat, s.order);
            for (color, clusters) in s.color_clusters.iter().enumerate() {
                for cluster in clusters {
                    assert!(!cluster.is_empty(), "color {color} has an empty cluster");
                    for &v in cluster {
                        assert_eq!(s.decomposition.color[v.index()], color as u32);
                    }
                }
            }
        }
    }

    /// A locality-1 kernel whose value at `v` depends on the pins of
    /// `v`'s neighbors and `v`'s private randomness — enough to expose
    /// any divergence between the parallel and sequential scans.
    #[derive(Clone)]
    struct ParityKernel;

    impl crate::slocal::SlocalKernel for ParityKernel {
        fn process(
            &self,
            net: &Network,
            sigma: &lds_gibbs::PartialConfig,
            v: lds_graph::NodeId,
        ) -> (lds_gibbs::Value, bool) {
            use rand::Rng;
            let g = net.instance().model().graph();
            let occupied = g
                .neighbors(v)
                .filter(|&&w| sigma.get(w) == Some(lds_gibbs::Value(1)))
                .count();
            let coin = net.node_rng(v, 7).gen_bool(0.5) as usize;
            (lds_gibbs::Value::from_index((occupied + coin) % 2), false)
        }
    }

    #[test]
    fn chromatic_kernel_run_matches_sequential_scan_bitwise() {
        use crate::slocal::run_kernel_sequential;
        use lds_runtime::ThreadPool;
        for seed in 0..4 {
            let net = net(5, seed);
            let s = chromatic_schedule(&net, 1, 0);
            let seq = run_kernel_sequential(&net, &ParityKernel, &s.order);
            for threads in [1, 2, 8] {
                let par = run_kernel_chromatic(&net, &ParityKernel, &s, &ThreadPool::new(threads));
                assert_eq!(par.outputs, seq.outputs, "seed {seed} threads {threads}");
                assert_eq!(par.failures, seq.failures);
            }
        }
    }

    #[test]
    fn rounds_scale_with_locality_and_logs() {
        let net = net(6, 1);
        let s1 = chromatic_schedule(&net, 1, 0);
        let s3 = chromatic_schedule(&net, 6, 0);
        assert!(s1.rounds >= s1.colors); // at least one round per color
        assert!(s3.rounds > s1.rounds); // larger locality costs more
    }

    /// An order-revealing SLOCAL algorithm: output = scan position.
    struct Position;

    impl SlocalAlgorithm for Position {
        type Output = usize;

        fn locality(&self, _n: usize) -> usize {
            1
        }

        fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<usize> {
            let mut out = vec![0usize; net.node_count()];
            for (i, &v) in order.iter().enumerate() {
                out[v.index()] = i;
            }
            SlocalRun {
                outputs: out,
                failures: vec![false; net.node_count()],
            }
        }
    }

    #[test]
    fn transformation_runs_algorithm_on_schedule_order() {
        let net = net(4, 17);
        let (run, schedule) = run_slocal_in_local(&net, &Position, 0);
        assert_eq!(run.rounds, schedule.rounds);
        // node at schedule.order[i] must have output i
        for (i, &v) in schedule.order.iter().enumerate() {
            assert_eq!(run.outputs[v.index()], i);
        }
    }

    #[test]
    fn decomposition_failures_propagate() {
        // force failures with an impossible color cap by shrinking the
        // schedule through a tiny custom decomposition
        let netw = net(4, 2);
        let g = netw.instance().model().graph();
        let h = power::power(g, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let d = linial_saks(
            &h,
            DecompositionParams {
                color_cap: 0,
                radius_cap: 1,
            },
            &mut rng,
        );
        assert!(!d.is_complete());
        assert_eq!(d.failed.iter().filter(|&&f| f).count(), g.node_count());
    }
}
