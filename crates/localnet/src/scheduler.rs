//! The SLOCAL→LOCAL transformation (paper, Lemma 3.1).
//!
//! Given an SLOCAL algorithm `A` with locality `r`, the LOCAL algorithm
//! `B`:
//!
//! 1. computes an `(O(log n), O(log n))` network decomposition of the
//!    power graph `G^{r+1}` (so same-color clusters are at pairwise
//!    distance `> r + 1` in `G`),
//! 2. processes colors in increasing order; within a color, every cluster
//!    simulates `A` on its members **in parallel** (the cluster's leader
//!    gathers the cluster plus a radius-`r` halo, runs the scan, and
//!    disseminates the states), which is sound because concurrent
//!    clusters are too far apart for their radius-`r` reads to interact;
//! 3. the resulting execution is *identical* to running `A` sequentially
//!    on the ordering `π` = (colors, then clusters, then members), so
//!    conditioned on the decomposition succeeding the output distribution
//!    is exactly `μ̂_{I,π}` for that ordering — the statement of
//!    Lemma 3.1.
//!
//! Simulated round cost charged here:
//! `Σ_colors (2·weak_radius_color + r + 1)`, the cost of gather +
//! disseminate per color class; with `O(log n)` colors and weak radius
//! `O((r+1) log n)` in `G` this is the paper's `O(r log² n)`.
//!
//! Decomposition failures are surfaced as per-node failure bits `F″_v`
//! with `Σ_v E[F″_v] = O(1/n²)` under the default parameters, and are
//! independent of the algorithm's own randomness — as required by the
//! proof of Proposition 4.3.

use lds_graph::{power, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::decomposition::{linial_saks, DecompositionParams, NetworkDecomposition, UNCLUSTERED};
use crate::local::LocalRun;
use crate::slocal::SlocalAlgorithm;
use crate::Network;

/// A chromatic schedule: the sequential ordering realized by the parallel
/// cluster simulation, plus the simulated round cost.
#[derive(Clone, Debug)]
pub struct ChromaticSchedule {
    /// The ordering `π` the parallel simulation is equivalent to. Includes
    /// all nodes; unclustered (failed) nodes are appended at the end.
    pub order: Vec<NodeId>,
    /// Failure bits `F″_v` from the decomposition.
    pub failed: Vec<bool>,
    /// Simulated LOCAL rounds.
    pub rounds: usize,
    /// Colors used by the decomposition.
    pub colors: usize,
    /// Largest weak radius of a cluster, measured in `G`.
    pub max_weak_radius: usize,
    /// The decomposition itself (on `G^{r+1}`).
    pub decomposition: NetworkDecomposition,
}

/// Computes the chromatic schedule for locality `r` on the network's
/// graph: decomposition of `G^{r+1}`, equivalent ordering, and round cost.
///
/// `stream` decorrelates scheduling randomness from algorithm randomness
/// (pass distinct streams for nested uses).
pub fn chromatic_schedule(net: &Network, locality: usize, stream: u64) -> ChromaticSchedule {
    let g = net.instance().model().graph();
    let n = g.node_count();
    // A LOCAL node never needs to gather beyond the graph's diameter:
    // radius `diam` already delivers the whole graph, so larger declared
    // localities are capped here (keeps simulated rounds honest on small
    // benchmark graphs whose diameter is below the asymptotic radius).
    let diam = lds_graph::traversal::diameter(g) as usize;
    let locality = locality.min(diam.max(1));
    let h = power::power(g, locality + 1);
    let mut rng = StdRng::seed_from_u64(net.seed() ^ 0xdec0_u64 ^ stream.wrapping_mul(0x9e37));
    let decomposition = linial_saks(&h, DecompositionParams::for_size(n), &mut rng);

    // Group nodes into (color, cluster) buckets.
    let members = decomposition.members();
    let mut cluster_ids: Vec<usize> = (0..members.len()).collect();
    cluster_ids.sort_by_key(|&cid| {
        let color = members[cid]
            .first()
            .map(|v| decomposition.color[v.index()])
            .unwrap_or(UNCLUSTERED);
        (color, cid)
    });
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for &cid in &cluster_ids {
        let mut m = members[cid].clone();
        m.sort_unstable();
        order.extend_from_slice(&m);
    }
    // failed nodes last (they output defaults and carry F″ = 1)
    for v in 0..n {
        if decomposition.failed[v] {
            order.push(NodeId::from_index(v));
        }
    }

    // Round cost: per color, gather cluster + halo and disseminate.
    let radius_by_color = decomposition.weak_radius_by_color(g);
    let rounds: usize = radius_by_color
        .iter()
        .map(|&wr| 2 * wr + locality + 1)
        .sum();

    ChromaticSchedule {
        failed: decomposition.failed.clone(),
        rounds,
        colors: decomposition.colors,
        max_weak_radius: decomposition.max_weak_radius(g),
        order,
        decomposition,
    }
}

/// Runs an SLOCAL algorithm as a LOCAL algorithm via the chromatic
/// schedule (Lemma 3.1). The returned run's `failures` combine the
/// algorithm's own `F′_v` with the decomposition's `F″_v`; conditioned on
/// all-success the outputs follow `μ̂_{I,π}` for the schedule's ordering.
pub fn run_slocal_in_local<A: SlocalAlgorithm>(
    net: &Network,
    algo: &A,
    stream: u64,
) -> (LocalRun<A::Output>, ChromaticSchedule) {
    let n = net.node_count();
    let schedule = chromatic_schedule(net, algo.locality(n), stream);
    let seq = algo.run_sequential(net, &schedule.order);
    let failures: Vec<bool> = (0..n)
        .map(|v| seq.failures[v] || schedule.failed[v])
        .collect();
    (
        LocalRun {
            outputs: seq.outputs,
            failures,
            rounds: schedule.rounds,
        },
        schedule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slocal::SlocalRun;
    use crate::Instance;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::PartialConfig;
    use lds_graph::{generators, ordering, traversal};

    fn net(n_side: usize, seed: u64) -> Network {
        let g = generators::torus(n_side, n_side);
        let n = g.node_count();
        Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(n)).unwrap(),
            seed,
        )
    }

    #[test]
    fn schedule_order_is_a_permutation() {
        let net = net(5, 3);
        let s = chromatic_schedule(&net, 2, 0);
        assert!(ordering::is_permutation(
            net.instance().model().graph(),
            &s.order
        ));
    }

    #[test]
    fn same_color_clusters_are_far_apart() {
        let net = net(6, 9);
        let r = 2usize;
        let s = chromatic_schedule(&net, r, 0);
        let g = net.instance().model().graph();
        let d = &s.decomposition;
        // brute-force: same color, different cluster => distance > r+1
        for u in g.nodes() {
            if d.color[u.index()] == UNCLUSTERED {
                continue;
            }
            let dist = traversal::bfs_distances(g, u);
            for v in g.nodes() {
                if v <= u || d.color[v.index()] == UNCLUSTERED {
                    continue;
                }
                if d.color[u.index()] == d.color[v.index()]
                    && d.cluster[u.index()] != d.cluster[v.index()]
                {
                    assert!(
                        dist[v.index()] as usize > r + 1,
                        "{u} and {v} same color but distance {}",
                        dist[v.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn rounds_scale_with_locality_and_logs() {
        let net = net(6, 1);
        let s1 = chromatic_schedule(&net, 1, 0);
        let s3 = chromatic_schedule(&net, 6, 0);
        assert!(s1.rounds >= s1.colors); // at least one round per color
        assert!(s3.rounds > s1.rounds); // larger locality costs more
    }

    /// An order-revealing SLOCAL algorithm: output = scan position.
    struct Position;

    impl SlocalAlgorithm for Position {
        type Output = usize;

        fn locality(&self, _n: usize) -> usize {
            1
        }

        fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<usize> {
            let mut out = vec![0usize; net.node_count()];
            for (i, &v) in order.iter().enumerate() {
                out[v.index()] = i;
            }
            SlocalRun {
                outputs: out,
                failures: vec![false; net.node_count()],
            }
        }
    }

    #[test]
    fn transformation_runs_algorithm_on_schedule_order() {
        let net = net(4, 17);
        let (run, schedule) = run_slocal_in_local(&net, &Position, 0);
        assert_eq!(run.rounds, schedule.rounds);
        // node at schedule.order[i] must have output i
        for (i, &v) in schedule.order.iter().enumerate() {
            assert_eq!(run.outputs[v.index()], i);
        }
    }

    #[test]
    fn decomposition_failures_propagate() {
        // force failures with an impossible color cap by shrinking the
        // schedule through a tiny custom decomposition
        let netw = net(4, 2);
        let g = netw.instance().model().graph();
        let h = power::power(g, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let d = linial_saks(
            &h,
            DecompositionParams {
                color_cap: 0,
                radius_cap: 1,
            },
            &mut rng,
        );
        assert!(!d.is_complete());
        assert_eq!(d.failed.iter().filter(|&&f| f).count(), g.node_count());
    }
}
