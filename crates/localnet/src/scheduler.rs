//! The SLOCAL→LOCAL transformation (paper, Lemma 3.1).
//!
//! Given an SLOCAL algorithm `A` with locality `r`, the LOCAL algorithm
//! `B`:
//!
//! 1. computes an `(O(log n), O(log n))` network decomposition of the
//!    power graph `G^{r+1}` (so same-color clusters are at pairwise
//!    distance `> r + 1` in `G`),
//! 2. processes colors in increasing order; within a color, every cluster
//!    simulates `A` on its members **in parallel** (the cluster's leader
//!    gathers the cluster plus a radius-`r` halo, runs the scan, and
//!    disseminates the states), which is sound because concurrent
//!    clusters are too far apart for their radius-`r` reads to interact;
//! 3. the resulting execution is *identical* to running `A` sequentially
//!    on the ordering `π` = (colors, then clusters, then members), so
//!    conditioned on the decomposition succeeding the output distribution
//!    is exactly `μ̂_{I,π}` for that ordering — the statement of
//!    Lemma 3.1.
//!
//! Simulated round cost charged here:
//! `Σ_colors (2·weak_radius_color + r + 1)`, the cost of gather +
//! disseminate per color class; with `O(log n)` colors and weak radius
//! `O((r+1) log n)` in `G` this is the paper's `O(r log² n)`.
//!
//! Decomposition failures are surfaced as per-node failure bits `F″_v`
//! with `Σ_v E[F″_v] = O(1/n²)` under the default parameters, and are
//! independent of the algorithm's own randomness — as required by the
//! proof of Proposition 4.3.

use std::sync::{Arc, Mutex, OnceLock};

use lds_graph::{power, traversal, Graph, NodeId};
use lds_obs::trace::{self, TraceEvent};
use lds_runtime::{streams, CancelToken, Cancelled, StreamRng, ThreadPool};

/// Chromatic-runner observability handles, resolved once. Counters are
/// bumped per color round (not per node), and the trace events are
/// behind the sampling knob, so the instrumented runner's hot loops are
/// unchanged in shape.
struct RunnerMetrics {
    /// Color rounds executed by the projected (parallel) runner.
    rounds: Arc<lds_obs::Counter>,
    /// Clusters simulated through a halo projection.
    projected: Arc<lds_obs::Counter>,
    /// Clusters scanned inline on the global state.
    inline: Arc<lds_obs::Counter>,
    /// Bytes of scan state shipped to workers.
    bytes: Arc<lds_obs::Counter>,
}

fn runner_metrics() -> &'static RunnerMetrics {
    static METRICS: OnceLock<RunnerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = lds_obs::global();
        RunnerMetrics {
            rounds: reg.counter("chromatic_color_rounds"),
            projected: reg.counter("chromatic_clusters_projected"),
            inline: reg.counter("chromatic_clusters_inline"),
            bytes: reg.counter("chromatic_bytes_projected"),
        }
    })
}

use crate::decomposition::{linial_saks, DecompositionParams, NetworkDecomposition, UNCLUSTERED};
use crate::local::LocalRun;
use crate::slocal::{ScanKernel, SlocalAlgorithm};
use crate::Network;

/// A chromatic schedule: the sequential ordering realized by the parallel
/// cluster simulation, plus the simulated round cost.
#[derive(Clone, Debug)]
pub struct ChromaticSchedule {
    /// The ordering `π` the parallel simulation is equivalent to. Includes
    /// all nodes; unclustered (failed) nodes are appended at the end.
    pub order: Vec<NodeId>,
    /// The parallel form of the schedule: for each color in increasing
    /// order, the clusters of that color (members sorted by id). Same-
    /// color clusters are at pairwise distance `> r + 1` in `G`, so they
    /// may be simulated concurrently; flattening this nesting and
    /// appending [`ChromaticSchedule::tail`] reproduces `order` exactly.
    /// Shared (`Arc`) so the runner can ship member lists to pool
    /// workers without cloning them every color round.
    pub color_clusters: Arc<Vec<Vec<Vec<NodeId>>>>,
    /// Unclustered (failed) nodes, processed sequentially after all
    /// colors — the tail of `order`.
    pub tail: Vec<NodeId>,
    /// Failure bits `F″_v` from the decomposition.
    pub failed: Vec<bool>,
    /// Simulated LOCAL rounds.
    pub rounds: usize,
    /// Colors used by the decomposition.
    pub colors: usize,
    /// Largest weak radius of a cluster, measured in `G`.
    pub max_weak_radius: usize,
    /// The locality `r` the schedule was built for, after the diameter
    /// cap — the halo radius of the sharded simulation.
    pub locality: usize,
    /// The decomposition itself (on `G^{r+1}`).
    pub decomposition: NetworkDecomposition,
    /// Lazily computed per-cluster halos (see
    /// [`ChromaticSchedule::halos`]); parallel to `color_clusters`.
    halos: OnceLock<Vec<Vec<Vec<NodeId>>>>,
}

impl ChromaticSchedule {
    /// Per-cluster halos, parallel to
    /// [`ChromaticSchedule::color_clusters`]: `halos()[c][i]` is
    /// `B_r(C)` for cluster `i` of color `c` — the cluster's members
    /// plus their radius-`r` boundary (`r` = [`ChromaticSchedule::locality`]),
    /// in increasing id order. This is exactly the state region a
    /// locality-`r` kernel can read or write while scanning the
    /// cluster, so the sharded runner ships only these slots.
    ///
    /// Computed once per schedule on first use (the width-1 sequential
    /// path never pays for it) and reused across colors **and** across
    /// passes sharing the schedule (local-JVV runs all three passes on
    /// one schedule). `g` must be the carrier graph the schedule was
    /// built on — later calls return the memoized halos, so a
    /// different graph would silently be ignored.
    pub fn halos(&self, g: &Graph) -> &[Vec<Vec<NodeId>>] {
        debug_assert_eq!(
            g.node_count(),
            self.order.len(),
            "halos requested for a graph the schedule was not built on"
        );
        self.halos.get_or_init(|| {
            self.color_clusters
                .iter()
                .map(|clusters| {
                    clusters
                        .iter()
                        .map(|cluster| traversal::multi_source_ball(g, cluster, self.locality))
                        .collect()
                })
                .collect()
        })
    }
}

/// Telemetry of one sharded kernel execution: how much scan state the
/// chromatic runner actually shipped to workers, against the halo
/// bound. `bytes_cloned ≤ halo_bytes_bound` if and only if every
/// projected cluster copied `O(|halo|)` slots — the CI telemetry gate
/// that keeps the full-clone path from silently coming back.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardingStats {
    /// Clusters simulated through a halo projection (parallel fan-out).
    pub projected_clusters: usize,
    /// Clusters scanned inline on the global state (single-cluster
    /// colors — no snapshot, no projection).
    pub inline_clusters: usize,
    /// Sum of halo sizes over the projected clusters.
    pub halo_sum: usize,
    /// Largest halo among the projected clusters.
    pub max_halo: usize,
    /// Bytes of scan state copied into worker payloads
    /// ([`ScanKernel::projected_bytes`] summed over projections).
    pub bytes_cloned: u64,
    /// What a perfect halo restriction would have copied: the same
    /// accounting evaluated at `n = |halo|`.
    pub halo_bytes_bound: u64,
}

impl ShardingStats {
    /// Accumulates another execution's stats (e.g. across the three
    /// local-JVV passes sharing one schedule).
    pub fn merge(&mut self, other: &ShardingStats) {
        self.projected_clusters += other.projected_clusters;
        self.inline_clusters += other.inline_clusters;
        self.halo_sum += other.halo_sum;
        self.max_halo = self.max_halo.max(other.max_halo);
        self.bytes_cloned += other.bytes_cloned;
        self.halo_bytes_bound += other.halo_bytes_bound;
    }

    /// Mean halo size over projected clusters (0 when none).
    pub fn mean_halo(&self) -> f64 {
        if self.projected_clusters == 0 {
            0.0
        } else {
            self.halo_sum as f64 / self.projected_clusters as f64
        }
    }

    /// `true` when every projection stayed within the halo bound.
    pub fn within_halo_bound(&self) -> bool {
        self.bytes_cloned <= self.halo_bytes_bound
    }
}

/// Computes the chromatic schedule for locality `r` on the network's
/// graph: decomposition of `G^{r+1}`, equivalent ordering, and round cost.
///
/// `stream` decorrelates scheduling randomness from algorithm randomness
/// (pass distinct streams for nested uses). Decomposition randomness is
/// derived through the [`StreamRng`] tree under the
/// [`streams::DECOMPOSITION`] domain, so it is independent of the
/// algorithm randomness drawn from the per-node streams (Proposition
/// 4.3) while sharing the one master seed.
pub fn chromatic_schedule(net: &Network, locality: usize, stream: u64) -> ChromaticSchedule {
    let g = net.instance().model().graph();
    let n = g.node_count();
    // A LOCAL node never needs to gather beyond the graph's diameter:
    // radius `diam` already delivers the whole graph, so larger declared
    // localities are capped here (keeps simulated rounds honest on small
    // benchmark graphs whose diameter is below the asymptotic radius).
    let diam = lds_graph::traversal::diameter(g) as usize;
    let locality = locality.min(diam.max(1));
    let h = power::power(g, locality + 1);
    let mut rng = StreamRng::derive(net.seed(), streams::DECOMPOSITION)
        .substream(stream)
        .rng();
    let decomposition = linial_saks(&h, DecompositionParams::for_size(n), &mut rng);

    // Group clusters by (color, cluster id); members sorted by id. One
    // pass over the clusters builds both the nested parallel form and
    // the flattened ordering: each member list is moved (not cloned)
    // into its color slot, and `order` grows alongside instead of being
    // re-derived by flattening afterwards.
    let mut members = decomposition.members();
    let mut cluster_ids: Vec<usize> = (0..members.len())
        .filter(|&cid| !members[cid].is_empty())
        .collect();
    cluster_ids.sort_by_key(|&cid| {
        let color = members[cid]
            .first()
            .map(|v| decomposition.color[v.index()])
            .unwrap_or(UNCLUSTERED);
        (color, cid)
    });
    let mut color_clusters: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); decomposition.colors];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for &cid in &cluster_ids {
        let mut m = std::mem::take(&mut members[cid]);
        m.sort_unstable();
        let color = decomposition.color[m[0].index()] as usize;
        order.extend_from_slice(&m);
        color_clusters[color].push(m);
    }
    // failed nodes last (they output defaults and carry F″ = 1)
    let tail: Vec<NodeId> = (0..n)
        .filter(|&v| decomposition.failed[v])
        .map(NodeId::from_index)
        .collect();
    order.extend_from_slice(&tail);
    debug_assert_eq!(order.len(), n);

    // Round cost: per color, gather cluster + halo and disseminate.
    let radius_by_color = decomposition.weak_radius_by_color(g);
    let rounds: usize = radius_by_color
        .iter()
        .map(|&wr| 2 * wr + locality + 1)
        .sum();

    ChromaticSchedule {
        failed: decomposition.failed.clone(),
        rounds,
        colors: decomposition.colors,
        max_weak_radius: decomposition.max_weak_radius(g),
        order,
        color_clusters: Arc::new(color_clusters),
        tail,
        locality,
        decomposition,
        halos: OnceLock::new(),
    }
}

/// Per-color fan-out results: each cluster's reusable projection buffer
/// coming back from its worker, plus the cluster's effects in scan
/// order.
type ClusterRuns<S, E> = Vec<(S, Vec<(NodeId, E)>)>;

/// Runs any [`ScanKernel`] under the chromatic schedule with same-color
/// clusters simulated **concurrently** on the pool — the literal
/// parallel simulation of Lemma 3.1, replacing the sequential
/// within-color scan. Pinning-extension kernels
/// ([`crate::slocal::SlocalKernel`]) run
/// here through their blanket `ScanKernel` impl; richer kernels
/// (`local-JVV`'s rejection pass) implement `ScanKernel` directly.
///
/// Colors are processed in order; within a color every cluster scans its
/// members sequentially against a **halo projection** of the scan state
/// accumulated through the previous colors — the cluster's members plus
/// their radius-`r` boundary ([`ChromaticSchedule::halos`]), which is
/// exactly what the paper's cluster leader gathers — and the per-node
/// effects are replayed onto the global state **in cluster order**, the
/// order the sequential scan uses. Same-color clusters are at pairwise
/// distance `> r + 1`, so (under the kernel's locality contract) no
/// cluster can read past its own halo, and the merged result is
/// **bit-identical** to [`crate::slocal::run_scan_sequential`] on
/// `schedule.order` — at any pool width. Unclustered (failed) nodes are
/// processed sequentially at the end, exactly as in the sequential scan.
///
/// No full-state snapshot is ever cloned: the caller builds one
/// `O(|halo|)` projection per cluster ([`ScanKernel::project`]) into
/// arena-recycled buffers, workers take their payload through a shared
/// slot (the `par_map` items are bare indices), and buffers come back
/// for the next color — so steady-state per-round copying is the halo
/// sum, not `n · #clusters`. [`ShardingStats`] reports what was shipped.
///
/// The kernel ships to the pool's workers as part of a `'static` job, so
/// it must own its context (`Clone + Send + Sync + 'static`) — oracles
/// travel by value or `Arc`, never by borrow.
pub fn run_kernel_chromatic<K>(
    net: &Network,
    kernel: &K,
    schedule: &ChromaticSchedule,
    pool: &ThreadPool,
) -> K::Run
where
    K: ScanKernel + Clone + Send + Sync + 'static,
{
    run_kernel_chromatic_with_stats(net, kernel, schedule, pool).0
}

/// [`run_kernel_chromatic`] returning the sharding telemetry alongside
/// the run result.
pub fn run_kernel_chromatic_with_stats<K>(
    net: &Network,
    kernel: &K,
    schedule: &ChromaticSchedule,
    pool: &ThreadPool,
) -> (K::Run, ShardingStats)
where
    K: ScanKernel + Clone + Send + Sync + 'static,
{
    run_kernel_chromatic_cancellable(net, kernel, schedule, pool, &CancelToken::never())
        .expect("a never-token cannot cancel")
}

/// [`run_kernel_chromatic_with_stats`] with cooperative cancellation.
///
/// The token is checked at the **start of every color round** and once
/// before the unclustered tail — never inside a round — so a run that
/// completes is bit-identical to the same run without a token (checks
/// consume no randomness), and a cancelled run returns
/// `Err(`[`Cancelled`]`)` having produced no partial result. This is
/// the enforcement point for per-request deadlines: the engine wraps a
/// deadline in a [`CancelToken`] and maps `Cancelled` into its typed
/// `DeadlineExceeded`.
pub fn run_kernel_chromatic_cancellable<K>(
    net: &Network,
    kernel: &K,
    schedule: &ChromaticSchedule,
    pool: &ThreadPool,
    cancel: &CancelToken,
) -> Result<(K::Run, ShardingStats), Cancelled>
where
    K: ScanKernel + Clone + Send + Sync + 'static,
{
    let mut stats = ShardingStats::default();
    if pool.is_sequential() {
        // the sequential scan is the same execution without the
        // per-cluster projections — one state for the whole schedule
        return Ok((
            crate::slocal::run_scan_sequential_cancellable(net, kernel, &schedule.order, cancel)?,
            stats,
        ));
    }
    let n = net.node_count();
    let halos = schedule.halos(net.instance().model().graph());
    let mut state = kernel.init(net);
    let mut effects: Vec<(NodeId, K::Effect)> = Vec::new();
    // Scratch arena: projections come back from the workers with their
    // run's effects and are re-projected next color, so buffer
    // allocations are paid once per lane, not once per cluster-round.
    // Each entry remembers which halo it was last projected for (as
    // `(color, cluster)` indices into `halos`) so the kernel can erase
    // exactly the stale slots.
    let mut arena: Vec<(K::State, (usize, usize))> = Vec::new();
    let metrics = runner_metrics();
    for (color, clusters) in schedule.color_clusters.iter().enumerate() {
        cancel.check()?;
        if let [cluster] = clusters.as_slice() {
            // a single cluster this color: scan it inline on the global
            // state — same execution, no projection, no fan-out
            stats.inline_clusters += 1;
            metrics.rounds.inc();
            metrics.inline.inc();
            trace::emit(TraceEvent::RoundStart {
                color: color as u32,
            });
            for &v in cluster {
                if let Some(e) = kernel.process(net, &mut state, v) {
                    effects.push((v, e));
                }
            }
            trace::emit(TraceEvent::RoundEnd {
                color: color as u32,
                clusters: 1,
            });
            continue;
        }
        if clusters.is_empty() {
            continue;
        }
        metrics.rounds.inc();
        trace::emit(TraceEvent::RoundStart {
            color: color as u32,
        });
        // project on the caller's thread (the only reader of `state`);
        // workers receive owned payloads through take-once slots
        let mut slots: Vec<Mutex<Option<K::State>>> = Vec::with_capacity(clusters.len());
        for ci in 0..clusters.len() {
            let halo = &halos[color][ci];
            let projected = match arena.pop() {
                Some((mut scratch, (pc, pi))) => {
                    kernel.project_into(&state, halo, &mut scratch, &halos[pc][pi]);
                    scratch
                }
                None => kernel.project(&state, halo),
            };
            stats.projected_clusters += 1;
            stats.halo_sum += halo.len();
            stats.max_halo = stats.max_halo.max(halo.len());
            stats.bytes_cloned += kernel.projected_bytes(n, halo.len());
            stats.halo_bytes_bound += kernel.projected_bytes(halo.len(), halo.len());
            metrics.projected.inc();
            metrics.bytes.add(kernel.projected_bytes(n, halo.len()));
            trace::emit(TraceEvent::ClusterDispatch {
                color: color as u32,
                cluster: ci as u32,
                halo: halo.len() as u32,
            });
            slots.push(Mutex::new(Some(projected)));
        }
        let slots = Arc::new(slots);
        let indices: Vec<usize> = (0..clusters.len()).collect();
        let runs: ClusterRuns<K::State, K::Effect> = pool.par_map(&indices, {
            let net = net.clone();
            let kernel = kernel.clone();
            let clusters = Arc::clone(&schedule.color_clusters);
            let slots = Arc::clone(&slots);
            move |&ci| {
                let mut local = slots[ci]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot is taken exactly once");
                let cluster = &clusters[color][ci];
                let mut out = Vec::with_capacity(cluster.len());
                for &v in cluster {
                    if let Some(e) = kernel.process(&net, &mut local, v) {
                        out.push((v, e));
                    }
                }
                (local, out)
            }
        });
        // replay in cluster order — the order the sequential scan uses —
        // and return the buffers to the arena for the next color
        let round_clusters = runs.len() as u32;
        for (ci, (scratch, cluster_out)) in runs.into_iter().enumerate() {
            arena.push((scratch, (color, ci)));
            for (v, e) in cluster_out {
                kernel.apply(&mut state, v, &e);
                effects.push((v, e));
            }
        }
        trace::emit(TraceEvent::RoundEnd {
            color: color as u32,
            clusters: round_clusters,
        });
    }
    cancel.check()?;
    for &v in &schedule.tail {
        if let Some(e) = kernel.process(net, &mut state, v) {
            effects.push((v, e));
        }
    }
    Ok((kernel.finish(net, state, effects), stats))
}

/// The **frozen pre-sharding** chromatic runner: full-state snapshot per
/// color (`Arc<state.clone()>`), a second full clone per cluster, no
/// projections. Kept verbatim as the reference implementation the halo
/// equivalence proptest (`tests/halo_sharding.rs`) compares
/// [`run_kernel_chromatic`] against, bit for bit. Not part of any
/// serving path.
#[doc(hidden)]
pub fn run_kernel_chromatic_reference<K>(
    net: &Network,
    kernel: &K,
    schedule: &ChromaticSchedule,
    pool: &ThreadPool,
) -> K::Run
where
    K: ScanKernel + Clone + Send + Sync + 'static,
{
    if pool.is_sequential() {
        return crate::slocal::run_scan_sequential(net, kernel, &schedule.order);
    }
    let mut state = kernel.init(net);
    let mut effects: Vec<(NodeId, K::Effect)> = Vec::new();
    for clusters in schedule.color_clusters.iter() {
        if let [cluster] = clusters.as_slice() {
            for &v in cluster {
                if let Some(e) = kernel.process(net, &mut state, v) {
                    effects.push((v, e));
                }
            }
            continue;
        }
        let snapshot = Arc::new(state.clone());
        let runs: Vec<Vec<(NodeId, K::Effect)>> = pool.par_map(clusters, {
            let net = net.clone();
            let kernel = kernel.clone();
            move |cluster: &Vec<NodeId>| {
                let mut local = (*snapshot).clone();
                let mut out = Vec::with_capacity(cluster.len());
                for &v in cluster {
                    if let Some(e) = kernel.process(&net, &mut local, v) {
                        out.push((v, e));
                    }
                }
                out
            }
        });
        for cluster_out in runs {
            for (v, e) in cluster_out {
                kernel.apply(&mut state, v, &e);
                effects.push((v, e));
            }
        }
    }
    for &v in &schedule.tail {
        if let Some(e) = kernel.process(net, &mut state, v) {
            effects.push((v, e));
        }
    }
    kernel.finish(net, state, effects)
}

/// Runs an SLOCAL algorithm as a LOCAL algorithm via the chromatic
/// schedule (Lemma 3.1). The returned run's `failures` combine the
/// algorithm's own `F′_v` with the decomposition's `F″_v`; conditioned on
/// all-success the outputs follow `μ̂_{I,π}` for the schedule's ordering.
pub fn run_slocal_in_local<A: SlocalAlgorithm>(
    net: &Network,
    algo: &A,
    stream: u64,
) -> (LocalRun<A::Output>, ChromaticSchedule) {
    let n = net.node_count();
    let schedule = chromatic_schedule(net, algo.locality(n), stream);
    let seq = algo.run_sequential(net, &schedule.order);
    let failures: Vec<bool> = (0..n)
        .map(|v| seq.failures[v] || schedule.failed[v])
        .collect();
    (
        LocalRun {
            outputs: seq.outputs,
            failures,
            rounds: schedule.rounds,
        },
        schedule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slocal::SlocalRun;
    use crate::Instance;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::PartialConfig;
    use lds_graph::{generators, ordering, traversal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(n_side: usize, seed: u64) -> Network {
        let g = generators::torus(n_side, n_side);
        let n = g.node_count();
        Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(n)).unwrap(),
            seed,
        )
    }

    #[test]
    fn schedule_order_is_a_permutation() {
        let net = net(5, 3);
        let s = chromatic_schedule(&net, 2, 0);
        assert!(ordering::is_permutation(
            net.instance().model().graph(),
            &s.order
        ));
    }

    #[test]
    fn same_color_clusters_are_far_apart() {
        let net = net(6, 9);
        let r = 2usize;
        let s = chromatic_schedule(&net, r, 0);
        let g = net.instance().model().graph();
        let d = &s.decomposition;
        // brute-force: same color, different cluster => distance > r+1
        for u in g.nodes() {
            if d.color[u.index()] == UNCLUSTERED {
                continue;
            }
            let dist = traversal::bfs_distances(g, u);
            for v in g.nodes() {
                if v <= u || d.color[v.index()] == UNCLUSTERED {
                    continue;
                }
                if d.color[u.index()] == d.color[v.index()]
                    && d.cluster[u.index()] != d.cluster[v.index()]
                {
                    assert!(
                        dist[v.index()] as usize > r + 1,
                        "{u} and {v} same color but distance {}",
                        dist[v.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn color_clusters_flatten_to_the_order() {
        for seed in 0..5 {
            let net = net(5, seed);
            let s = chromatic_schedule(&net, 2, 0);
            let flat: Vec<_> = s
                .color_clusters
                .iter()
                .flatten()
                .flatten()
                .chain(s.tail.iter())
                .copied()
                .collect();
            assert_eq!(flat, s.order);
            for (color, clusters) in s.color_clusters.iter().enumerate() {
                for cluster in clusters {
                    assert!(!cluster.is_empty(), "color {color} has an empty cluster");
                    for &v in cluster {
                        assert_eq!(s.decomposition.color[v.index()], color as u32);
                    }
                }
            }
        }
    }

    /// A locality-1 kernel whose value at `v` depends on the pins of
    /// `v`'s neighbors and `v`'s private randomness — enough to expose
    /// any divergence between the parallel and sequential scans.
    #[derive(Clone)]
    struct ParityKernel;

    impl crate::slocal::SlocalKernel for ParityKernel {
        fn process(
            &self,
            net: &Network,
            sigma: &lds_gibbs::PartialConfig,
            v: lds_graph::NodeId,
        ) -> (lds_gibbs::Value, bool) {
            use rand::Rng;
            let g = net.instance().model().graph();
            let occupied = g
                .neighbors(v)
                .filter(|&&w| sigma.get(w) == Some(lds_gibbs::Value(1)))
                .count();
            let coin = net.node_rng(v, 7).gen_bool(0.5) as usize;
            (lds_gibbs::Value::from_index((occupied + coin) % 2), false)
        }
    }

    #[test]
    fn chromatic_kernel_run_matches_sequential_scan_bitwise() {
        use crate::slocal::run_kernel_sequential;
        use lds_runtime::ThreadPool;
        for seed in 0..4 {
            let net = net(5, seed);
            let s = chromatic_schedule(&net, 1, 0);
            let seq = run_kernel_sequential(&net, &ParityKernel, &s.order);
            for threads in [1, 2, 8] {
                let par = run_kernel_chromatic(&net, &ParityKernel, &s, &ThreadPool::new(threads));
                assert_eq!(par.outputs, seq.outputs, "seed {seed} threads {threads}");
                assert_eq!(par.failures, seq.failures);
            }
        }
    }

    #[test]
    fn rounds_scale_with_locality_and_logs() {
        let net = net(6, 1);
        let s1 = chromatic_schedule(&net, 1, 0);
        let s3 = chromatic_schedule(&net, 6, 0);
        assert!(s1.rounds >= s1.colors); // at least one round per color
        assert!(s3.rounds > s1.rounds); // larger locality costs more
    }

    /// An order-revealing SLOCAL algorithm: output = scan position.
    struct Position;

    impl SlocalAlgorithm for Position {
        type Output = usize;

        fn locality(&self, _n: usize) -> usize {
            1
        }

        fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<usize> {
            let mut out = vec![0usize; net.node_count()];
            for (i, &v) in order.iter().enumerate() {
                out[v.index()] = i;
            }
            SlocalRun {
                outputs: out,
                failures: vec![false; net.node_count()],
            }
        }
    }

    #[test]
    fn transformation_runs_algorithm_on_schedule_order() {
        let net = net(4, 17);
        let (run, schedule) = run_slocal_in_local(&net, &Position, 0);
        assert_eq!(run.rounds, schedule.rounds);
        // node at schedule.order[i] must have output i
        for (i, &v) in schedule.order.iter().enumerate() {
            assert_eq!(run.outputs[v.index()], i);
        }
    }

    #[test]
    fn decomposition_failures_propagate() {
        // force failures with an impossible color cap by shrinking the
        // schedule through a tiny custom decomposition
        let netw = net(4, 2);
        let g = netw.instance().model().graph();
        let h = power::power(g, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let d = linial_saks(
            &h,
            DecompositionParams {
                color_cap: 0,
                radius_cap: 1,
            },
            &mut rng,
        );
        assert!(!d.is_complete());
        assert_eq!(d.failed.iter().filter(|&&f| f).count(), g.node_count());
    }
}
