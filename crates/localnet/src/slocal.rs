//! The SLOCAL model (Ghaffari–Kuhn–Maus).
//!
//! An SLOCAL algorithm with locality `r` scans the nodes in an arbitrary
//! adversarial ordering `π = (v_1, ..., v_n)`; when processing `v_i` it
//! reads the states of all nodes within distance `r`, performs unbounded
//! computation, updates its own state and fixes its output (paper,
//! Section 3).
//!
//! In this simulator an [`SlocalAlgorithm`] is a sequential procedure that
//! receives the network and the ordering, and is trusted (and tested) to
//! respect its declared locality. The accompanying helper
//! [`multipass_locality`] implements the locality arithmetic of the
//! paper's Lemma 4.4: a `k`-pass SLOCAL algorithm with per-pass localities
//! `r_1, ..., r_k` collapses to a single pass with locality
//! `r_1 + 2·(r_2 + ... + r_k)`, and write-radius `w` folds into `r + w`.

use lds_gibbs::{PartialConfig, Value};
use lds_graph::NodeId;
use lds_runtime::{CancelToken, Cancelled};

use crate::Network;

/// Result of a sequential SLOCAL execution.
#[derive(Clone, Debug)]
pub struct SlocalRun<T> {
    /// Per-node outputs `Y_v` indexed by node id.
    pub outputs: Vec<T>,
    /// Per-node failure bits `F′_v` indexed by node id.
    pub failures: Vec<bool>,
}

impl<T> SlocalRun<T> {
    /// Returns `true` if no node failed.
    pub fn succeeded(&self) -> bool {
        self.failures.iter().all(|&f| !f)
    }
}

/// A sequential local algorithm.
///
/// Contract: when processing node `v_i`, the implementation may only
/// depend on (a) the instance within distance `locality()` of `v_i`, (b)
/// the states written by previously processed nodes within that radius,
/// and (c) `v_i`'s private randomness. The simulator cannot mechanically
/// enforce this for arbitrary Rust code; the workspace's implementations
/// document their locality and the test suites verify
/// ordering-insensitivity and locality via boundary-perturbation tests.
pub trait SlocalAlgorithm {
    /// Per-node output type.
    type Output: Clone;

    /// The locality `r(n)` of the single-pass equivalent (after Lemma 4.4
    /// folding if the algorithm is conceptually multi-pass).
    fn locality(&self, n: usize) -> usize;

    /// Processes all nodes sequentially in the given order.
    fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<Self::Output>;
}

/// A *pinning-extension* SLOCAL algorithm, factored into its per-node
/// kernel.
///
/// Most of the paper's sequential algorithms (the Theorem 3.2 chain-rule
/// sampler, `local-JVV`'s ground-state and sampling passes) share one
/// shape: the scan state is exactly the pinning of already-processed
/// nodes, and processing node `v_i` computes a [`Value`] from the pins
/// within distance `r` of `v_i` plus `v_i`'s private randomness. A
/// kernel exposes that per-node step so the chromatic scheduler can
/// simulate same-color clusters **concurrently** (Lemma 3.1's parallel
/// cluster simulation, [`crate::scheduler::run_kernel_chromatic`])
/// instead of scanning the ordering one node at a time.
///
/// Contract (trusted, as with [`SlocalAlgorithm`]): `process` may depend
/// only on the instance within the algorithm's locality of `v`, the pins
/// of `sigma` within that radius, and `v`'s private randomness from
/// `net`. Under that contract the concurrent simulation is
/// execution-equivalent to [`run_kernel_sequential`] on the schedule's
/// ordering — property-tested in `tests/parallel.rs`.
pub trait SlocalKernel: Sync {
    /// Computes node `v`'s output from the pins of previously processed
    /// nodes. Returns the value and a Las Vegas failure bit.
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool);
}

/// The general SLOCAL scan kernel: explicit scan state, per-node
/// effects, and a fold into the final run result.
///
/// [`SlocalKernel`] covers the pinning-extension shape (state = the
/// pinning of processed nodes, effect = the pinned value); passes whose
/// scan state is richer — `local-JVV`'s rejection pass threads a full
/// feasible configuration `σ_{i−1}` through the scan and accumulates
/// acceptance statistics — implement `ScanKernel` directly. Every
/// `SlocalKernel` is a `ScanKernel` through a blanket impl, so
/// [`crate::scheduler::run_kernel_chromatic`] drives both shapes with
/// one engine.
///
/// Contract (what makes the chromatic cluster-parallel simulation
/// execution-equivalent to the sequential scan):
///
/// * `process(net, state, v)` must mutate `state` exactly as the
///   sequential scan would, and its reads/writes of `state` must stay
///   within the kernel's declared locality of `v`;
/// * `apply(state, v, effect)` must reproduce on another state the state
///   mutation `process` performed (the runner replays cluster-local
///   effects onto the global state, in schedule order);
/// * `finish` folds the effects **in schedule order**, so any
///   order-sensitive accumulation (e.g. a floating-point product) sees
///   the same operation sequence at every pool width.
pub trait ScanKernel: Sync {
    /// Scan state threaded through the ordering (cloned per concurrent
    /// cluster by the chromatic runner).
    type State: Clone + Send + Sync + 'static;
    /// Per-node result, replayable onto a state via
    /// [`ScanKernel::apply`].
    type Effect: Send + 'static;
    /// The folded result of a full scan.
    type Run;

    /// The scan's initial state.
    fn init(&self, net: &Network) -> Self::State;

    /// Processes node `v` against `state`, mutating it exactly as the
    /// sequential scan would. Returns `None` when the node is skipped
    /// (e.g. pinned by the instance).
    fn process(&self, net: &Network, state: &mut Self::State, v: NodeId) -> Option<Self::Effect>;

    /// Replays the state mutation of a `process(.., v)` that returned
    /// `effect` onto another state.
    fn apply(&self, state: &mut Self::State, v: NodeId, effect: &Self::Effect);

    /// Restricts the scan state to a cluster's halo (the cluster's
    /// members plus their radius-`r` boundary, `r` the schedule
    /// locality): the returned state must make `process` behave
    /// **bit-identically** for any node whose state reads stay inside
    /// `halo`, and processing such nodes must confine its state writes
    /// to `halo` as well. The chromatic runner ships one projection per
    /// concurrent cluster instead of a full snapshot clone.
    ///
    /// The default is a full copy — correct for every kernel, so
    /// existing kernels keep compiling; kernels on the hot path override
    /// it (and [`ScanKernel::projected_bytes`]) with a real restriction
    /// so the per-cluster payload is `O(|halo|)`, not `O(n)`.
    fn project(&self, state: &Self::State, halo: &[NodeId]) -> Self::State {
        let _ = halo;
        state.clone()
    }

    /// [`ScanKernel::project`] into a reusable scratch state — the
    /// arena path that amortizes per-round allocations across colors.
    ///
    /// Contract: `scratch` was produced by a previous
    /// `project`/`project_into` of **this kernel** for the halo `stale`
    /// and then mutated only inside `stale` (the write half of the
    /// `project` contract). The implementation must erase the stale
    /// slots before (or by) filling the new halo. The default discards
    /// the scratch and allocates a fresh projection.
    fn project_into(
        &self,
        state: &Self::State,
        halo: &[NodeId],
        scratch: &mut Self::State,
        stale: &[NodeId],
    ) {
        let _ = stale;
        *scratch = self.project(state, halo);
    }

    /// Telemetry: approximate bytes of scan state copied when shipping
    /// one cluster's projection, on an `n`-node instance with a
    /// `halo`-node halo. Must mirror [`ScanKernel::project`]: the
    /// default full copy accounts the whole dense state; a real
    /// restriction accounts only the halo slots. The runner sums this
    /// into [`crate::scheduler::ShardingStats`] and CI gates the sum
    /// against the halo bound, so a kernel silently falling back to
    /// full copies is caught.
    fn projected_bytes(&self, n: usize, halo: usize) -> u64 {
        let _ = halo;
        (n * core::mem::size_of::<usize>()) as u64
    }

    /// Folds the final state and the effects (in schedule order) into
    /// the run result.
    fn finish(
        &self,
        net: &Network,
        state: Self::State,
        effects: Vec<(NodeId, Self::Effect)>,
    ) -> Self::Run;
}

/// Every pinning-extension kernel is a [`ScanKernel`] whose state is the
/// pinning of processed nodes: processing pins the computed value, the
/// effect is `(value, failure)`, and the fold reads the outputs off the
/// fully pinned state.
impl<K: SlocalKernel + ?Sized> ScanKernel for K {
    type State = PartialConfig;
    type Effect = (Value, bool);
    type Run = SlocalRun<Value>;

    fn init(&self, net: &Network) -> PartialConfig {
        net.instance().pinning().clone()
    }

    fn process(
        &self,
        net: &Network,
        state: &mut PartialConfig,
        v: NodeId,
    ) -> Option<(Value, bool)> {
        if state.is_pinned(v) {
            return None;
        }
        let (val, fail) = SlocalKernel::process(self, net, state, v);
        state.pin(v, val);
        Some((val, fail))
    }

    fn apply(&self, state: &mut PartialConfig, v: NodeId, &(val, _): &(Value, bool)) {
        state.pin(v, val);
    }

    /// Halo restriction of a pinning state: only the halo's pins are
    /// copied. Sound because a pinning-extension kernel reads pins
    /// within its locality of the processed node and pins only the node
    /// itself — both inside the halo by the schedule's construction.
    fn project(&self, state: &PartialConfig, halo: &[NodeId]) -> PartialConfig {
        let mut p = PartialConfig::empty(state.len());
        for &v in halo {
            if let Some(val) = state.get(v) {
                p.pin(v, val);
            }
        }
        p
    }

    fn project_into(
        &self,
        state: &PartialConfig,
        halo: &[NodeId],
        scratch: &mut PartialConfig,
        stale: &[NodeId],
    ) {
        // every pin in the scratch — projected halo pins and the pins
        // made while processing its cluster — lies inside the stale halo
        for &v in stale {
            scratch.unpin(v);
        }
        debug_assert_eq!(scratch.pinned_count(), 0, "scratch escaped its stale halo");
        for &v in halo {
            if let Some(val) = state.get(v) {
                scratch.pin(v, val);
            }
        }
    }

    fn projected_bytes(&self, _n: usize, halo: usize) -> u64 {
        (halo * core::mem::size_of::<Option<Value>>()) as u64
    }

    fn finish(
        &self,
        net: &Network,
        state: PartialConfig,
        effects: Vec<(NodeId, (Value, bool))>,
    ) -> SlocalRun<Value> {
        let n = net.node_count();
        let mut failures = vec![false; n];
        for (v, (_, fail)) in effects {
            failures[v.index()] = fail;
        }
        let outputs: Vec<Value> = (0..n)
            .map(|i| {
                state
                    .get(NodeId::from_index(i))
                    .expect("scan visits every free node")
            })
            .collect();
        SlocalRun { outputs, failures }
    }
}

/// Runs any [`ScanKernel`] as the classic sequential SLOCAL scan over
/// `order`: initialize the state, process each node in order, fold the
/// effects.
///
/// `order` must visit every free node (schedule orderings do).
pub fn run_scan_sequential<K: ScanKernel + ?Sized>(
    net: &Network,
    kernel: &K,
    order: &[NodeId],
) -> K::Run {
    run_scan_sequential_cancellable(net, kernel, order, &CancelToken::never())
        .expect("a never-token cannot cancel")
}

/// How many nodes the sequential scan processes between cancellation
/// checks. Chunked so a real deadline token (whose check reads the
/// clock) costs `O(n / CHUNK)` clock reads, not `O(n)`.
const CANCEL_CHECK_STRIDE: usize = 256;

/// [`run_scan_sequential`] with cooperative cancellation, checked every
/// `CANCEL_CHECK_STRIDE` nodes. Checks consume no randomness, so a
/// scan that completes is bit-identical to the uncancellable one; a
/// cancelled scan returns `Err(`[`Cancelled`]`)` with no partial result.
pub fn run_scan_sequential_cancellable<K: ScanKernel + ?Sized>(
    net: &Network,
    kernel: &K,
    order: &[NodeId],
    cancel: &CancelToken,
) -> Result<K::Run, Cancelled> {
    let mut state = kernel.init(net);
    let mut effects = Vec::new();
    for chunk in order.chunks(CANCEL_CHECK_STRIDE) {
        cancel.check()?;
        for &v in chunk {
            if let Some(e) = ScanKernel::process(kernel, net, &mut state, v) {
                effects.push((v, e));
            }
        }
    }
    Ok(kernel.finish(net, state, effects))
}

/// Runs a pinning-extension kernel as the classic sequential SLOCAL scan
/// over `order`: process each free node in order, pinning its output.
/// Nodes pinned by the instance keep their pinned value and are never
/// processed.
///
/// `order` must visit every free node (schedule orderings do).
pub fn run_kernel_sequential<K: SlocalKernel + ?Sized>(
    net: &Network,
    kernel: &K,
    order: &[NodeId],
) -> SlocalRun<Value> {
    run_scan_sequential(net, kernel, order)
}

/// Locality of the single-pass equivalent of a multi-pass SLOCAL
/// algorithm (paper, Lemma 4.4(2)): `r_1 + 2·Σ_{i≥2} r_i`.
pub fn multipass_locality(pass_localities: &[usize]) -> usize {
    match pass_localities.split_first() {
        None => 0,
        Some((first, rest)) => first + 2 * rest.iter().sum::<usize>(),
    }
}

/// Locality after allowing writes into neighbors' memories within radius
/// `w` (paper, Lemma 4.4(1)): reads of radius `r` become `r + w`.
pub fn write_radius_locality(read: usize, write: usize) -> usize {
    read + write
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::PartialConfig;
    use lds_graph::generators;

    #[test]
    fn multipass_locality_matches_lemma() {
        assert_eq!(multipass_locality(&[]), 0);
        assert_eq!(multipass_locality(&[3]), 3);
        assert_eq!(multipass_locality(&[3, 2, 1]), 3 + 2 * 3);
    }

    #[test]
    fn write_radius_adds() {
        assert_eq!(write_radius_locality(4, 2), 6);
    }

    /// Greedy sequential MIS as a canonical SLOCAL(1) algorithm.
    struct GreedyMis;

    impl SlocalAlgorithm for GreedyMis {
        type Output = bool;

        fn locality(&self, _n: usize) -> usize {
            1
        }

        fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<bool> {
            let g = net.instance().model().graph();
            let mut selected = vec![false; g.node_count()];
            for &v in order {
                let blocked = g.neighbors(v).any(|&w| selected[w.index()]);
                selected[v.index()] = !blocked;
            }
            SlocalRun {
                outputs: selected,
                failures: vec![false; g.node_count()],
            }
        }
    }

    #[test]
    fn greedy_mis_is_maximal_independent_on_any_order() {
        let g = generators::grid(4, 4);
        let net = Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(16)).unwrap(),
            0,
        );
        for order in [
            lds_graph::ordering::identity(&g),
            lds_graph::ordering::reverse(&g),
            lds_graph::ordering::bfs_from(&g, NodeId(5)),
        ] {
            let run = GreedyMis.run_sequential(&net, &order);
            assert!(run.succeeded());
            let s = &run.outputs;
            // independent
            for e in g.edges() {
                assert!(!(s[e.u.index()] && s[e.v.index()]));
            }
            // maximal
            for v in g.nodes() {
                let dominated = s[v.index()] || g.neighbors(v).any(|&w| s[w.index()]);
                assert!(dominated);
            }
        }
    }
}
