//! The SLOCAL model (Ghaffari–Kuhn–Maus).
//!
//! An SLOCAL algorithm with locality `r` scans the nodes in an arbitrary
//! adversarial ordering `π = (v_1, ..., v_n)`; when processing `v_i` it
//! reads the states of all nodes within distance `r`, performs unbounded
//! computation, updates its own state and fixes its output (paper,
//! Section 3).
//!
//! In this simulator an [`SlocalAlgorithm`] is a sequential procedure that
//! receives the network and the ordering, and is trusted (and tested) to
//! respect its declared locality. The accompanying helper
//! [`multipass_locality`] implements the locality arithmetic of the
//! paper's Lemma 4.4: a `k`-pass SLOCAL algorithm with per-pass localities
//! `r_1, ..., r_k` collapses to a single pass with locality
//! `r_1 + 2·(r_2 + ... + r_k)`, and write-radius `w` folds into `r + w`.

use lds_gibbs::{PartialConfig, Value};
use lds_graph::NodeId;

use crate::Network;

/// Result of a sequential SLOCAL execution.
#[derive(Clone, Debug)]
pub struct SlocalRun<T> {
    /// Per-node outputs `Y_v` indexed by node id.
    pub outputs: Vec<T>,
    /// Per-node failure bits `F′_v` indexed by node id.
    pub failures: Vec<bool>,
}

impl<T> SlocalRun<T> {
    /// Returns `true` if no node failed.
    pub fn succeeded(&self) -> bool {
        self.failures.iter().all(|&f| !f)
    }
}

/// A sequential local algorithm.
///
/// Contract: when processing node `v_i`, the implementation may only
/// depend on (a) the instance within distance `locality()` of `v_i`, (b)
/// the states written by previously processed nodes within that radius,
/// and (c) `v_i`'s private randomness. The simulator cannot mechanically
/// enforce this for arbitrary Rust code; the workspace's implementations
/// document their locality and the test suites verify
/// ordering-insensitivity and locality via boundary-perturbation tests.
pub trait SlocalAlgorithm {
    /// Per-node output type.
    type Output: Clone;

    /// The locality `r(n)` of the single-pass equivalent (after Lemma 4.4
    /// folding if the algorithm is conceptually multi-pass).
    fn locality(&self, n: usize) -> usize;

    /// Processes all nodes sequentially in the given order.
    fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<Self::Output>;
}

/// A *pinning-extension* SLOCAL algorithm, factored into its per-node
/// kernel.
///
/// Most of the paper's sequential algorithms (the Theorem 3.2 chain-rule
/// sampler, `local-JVV`'s ground-state and sampling passes) share one
/// shape: the scan state is exactly the pinning of already-processed
/// nodes, and processing node `v_i` computes a [`Value`] from the pins
/// within distance `r` of `v_i` plus `v_i`'s private randomness. A
/// kernel exposes that per-node step so the chromatic scheduler can
/// simulate same-color clusters **concurrently** (Lemma 3.1's parallel
/// cluster simulation, [`crate::scheduler::run_kernel_chromatic`])
/// instead of scanning the ordering one node at a time.
///
/// Contract (trusted, as with [`SlocalAlgorithm`]): `process` may depend
/// only on the instance within the algorithm's locality of `v`, the pins
/// of `sigma` within that radius, and `v`'s private randomness from
/// `net`. Under that contract the concurrent simulation is
/// execution-equivalent to [`run_kernel_sequential`] on the schedule's
/// ordering — property-tested in `tests/parallel.rs`.
pub trait SlocalKernel: Sync {
    /// Computes node `v`'s output from the pins of previously processed
    /// nodes. Returns the value and a Las Vegas failure bit.
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool);
}

/// Runs a kernel as the classic sequential SLOCAL scan over `order`:
/// process each free node in order, pinning its output. Nodes pinned by
/// the instance keep their pinned value and are never processed.
///
/// `order` must visit every free node (schedule orderings do).
pub fn run_kernel_sequential<K: SlocalKernel + ?Sized>(
    net: &Network,
    kernel: &K,
    order: &[NodeId],
) -> SlocalRun<Value> {
    let n = net.node_count();
    let mut sigma = net.instance().pinning().clone();
    let mut failures = vec![false; n];
    for &v in order {
        if sigma.is_pinned(v) {
            continue;
        }
        let (val, fail) = kernel.process(net, &sigma, v);
        failures[v.index()] = fail;
        sigma.pin(v, val);
    }
    let outputs: Vec<Value> = (0..n)
        .map(|i| {
            sigma
                .get(NodeId::from_index(i))
                .expect("order visits every free node")
        })
        .collect();
    SlocalRun { outputs, failures }
}

/// Locality of the single-pass equivalent of a multi-pass SLOCAL
/// algorithm (paper, Lemma 4.4(2)): `r_1 + 2·Σ_{i≥2} r_i`.
pub fn multipass_locality(pass_localities: &[usize]) -> usize {
    match pass_localities.split_first() {
        None => 0,
        Some((first, rest)) => first + 2 * rest.iter().sum::<usize>(),
    }
}

/// Locality after allowing writes into neighbors' memories within radius
/// `w` (paper, Lemma 4.4(1)): reads of radius `r` become `r + w`.
pub fn write_radius_locality(read: usize, write: usize) -> usize {
    read + write
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::PartialConfig;
    use lds_graph::generators;

    #[test]
    fn multipass_locality_matches_lemma() {
        assert_eq!(multipass_locality(&[]), 0);
        assert_eq!(multipass_locality(&[3]), 3);
        assert_eq!(multipass_locality(&[3, 2, 1]), 3 + 2 * 3);
    }

    #[test]
    fn write_radius_adds() {
        assert_eq!(write_radius_locality(4, 2), 6);
    }

    /// Greedy sequential MIS as a canonical SLOCAL(1) algorithm.
    struct GreedyMis;

    impl SlocalAlgorithm for GreedyMis {
        type Output = bool;

        fn locality(&self, _n: usize) -> usize {
            1
        }

        fn run_sequential(&self, net: &Network, order: &[NodeId]) -> SlocalRun<bool> {
            let g = net.instance().model().graph();
            let mut selected = vec![false; g.node_count()];
            for &v in order {
                let blocked = g.neighbors(v).any(|&w| selected[w.index()]);
                selected[v.index()] = !blocked;
            }
            SlocalRun {
                outputs: selected,
                failures: vec![false; g.node_count()],
            }
        }
    }

    #[test]
    fn greedy_mis_is_maximal_independent_on_any_order() {
        let g = generators::grid(4, 4);
        let net = Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(16)).unwrap(),
            0,
        );
        for order in [
            lds_graph::ordering::identity(&g),
            lds_graph::ordering::reverse(&g),
            lds_graph::ordering::bfs_from(&g, NodeId(5)),
        ] {
            let run = GreedyMis.run_sequential(&net, &order);
            assert!(run.succeeded());
            let s = &run.outputs;
            // independent
            for e in g.edges() {
                assert!(!(s[e.u.index()] && s[e.v.index()]));
            }
            // maximal
            for v in g.nodes() {
                let dominated = s[v.index()] || g.neighbors(v).any(|&w| s[w.index()]);
                assert!(dominated);
            }
        }
    }
}
