//! The LOCAL model: algorithms, runner, round accounting and Las Vegas
//! failure semantics.
//!
//! A [`LocalAlgorithm`] with time complexity `t` lets every node gather
//! all information within radius `t` — topology, inputs, random bits —
//! and perform arbitrary local computation (paper, Section 2). Upon
//! termination each node `v` outputs its value and a failure bit `F_v`;
//! algorithms are required to keep `Σ_v E[F_v] = O(1/n)` ("a well accepted
//! notion of Las Vegas algorithms for local computation").

use lds_graph::NodeId;

use crate::{Network, View};

/// Output of one node: the value plus the locally certified failure bit
/// `F_v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeOutcome<T> {
    /// The regular output `Y_v`.
    pub value: T,
    /// The failure indicator `F_v` (true = local failure).
    pub failed: bool,
}

impl<T> NodeOutcome<T> {
    /// A successful outcome.
    pub fn ok(value: T) -> Self {
        NodeOutcome {
            value,
            failed: false,
        }
    }

    /// A failed outcome (the value is still reported; callers condition on
    /// success).
    pub fn failed(value: T) -> Self {
        NodeOutcome {
            value,
            failed: true,
        }
    }
}

/// A LOCAL algorithm: a radius and a per-node computation on views.
///
/// Determinism discipline: `run_at` must be a pure function of the view
/// (which includes member seeds); all randomness must come from
/// [`View::member_rng`]. The runner never gives a node anything outside
/// its radius-`t` ball, so locality is enforced by construction.
pub trait LocalAlgorithm {
    /// Per-node output type.
    type Output;

    /// The gather radius `t(n)` used by every node.
    fn radius(&self, n: usize) -> usize;

    /// Computes the output of the view's center node.
    fn run_at(&self, view: &View) -> NodeOutcome<Self::Output>;
}

/// The result of running a LOCAL algorithm on a network.
#[derive(Clone, Debug)]
pub struct LocalRun<T> {
    /// Per-node outputs `Y_v` indexed by node id.
    pub outputs: Vec<T>,
    /// Per-node failure bits `F_v`.
    pub failures: Vec<bool>,
    /// The radius every node gathered (= the algorithm's round count).
    pub rounds: usize,
}

impl<T> LocalRun<T> {
    /// Returns `true` if no node failed.
    pub fn succeeded(&self) -> bool {
        self.failures.iter().all(|&f| !f)
    }

    /// Number of failed nodes.
    pub fn failure_count(&self) -> usize {
        self.failures.iter().filter(|&&f| f).count()
    }
}

/// Runs `algo` on every node of the network (the faithful LOCAL
/// semantics: each node computes independently from its own view).
pub fn run_local<A: LocalAlgorithm>(net: &Network, algo: &A) -> LocalRun<A::Output> {
    let n = net.node_count();
    let t = algo.radius(n);
    let mut outputs = Vec::with_capacity(n);
    let mut failures = Vec::with_capacity(n);
    for v in 0..n {
        let view = net.view(NodeId::from_index(v), t);
        let outcome = algo.run_at(&view);
        outputs.push(outcome.value);
        failures.push(outcome.failed);
    }
    LocalRun {
        outputs,
        failures,
        rounds: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::PartialConfig;
    use lds_graph::generators;

    /// A toy LOCAL algorithm: output the number of nodes within radius 2.
    struct BallCounter;

    impl LocalAlgorithm for BallCounter {
        type Output = usize;

        fn radius(&self, _n: usize) -> usize {
            2
        }

        fn run_at(&self, view: &View) -> NodeOutcome<usize> {
            NodeOutcome::ok(view.subgraph().len())
        }
    }

    fn net() -> Network {
        let g = generators::cycle(10);
        Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(10)).unwrap(),
            5,
        )
    }

    #[test]
    fn runner_visits_every_node() {
        let run = run_local(&net(), &BallCounter);
        assert_eq!(run.outputs.len(), 10);
        assert!(run.outputs.iter().all(|&c| c == 5));
        assert!(run.succeeded());
        assert_eq!(run.rounds, 2);
        assert_eq!(run.failure_count(), 0);
    }

    /// An algorithm that fails at odd nodes — exercises failure plumbing.
    struct OddFails;

    impl LocalAlgorithm for OddFails {
        type Output = u32;

        fn radius(&self, _n: usize) -> usize {
            0
        }

        fn run_at(&self, view: &View) -> NodeOutcome<u32> {
            let id = view.center().0;
            if id % 2 == 1 {
                NodeOutcome::failed(id)
            } else {
                NodeOutcome::ok(id)
            }
        }
    }

    #[test]
    fn failures_are_reported_per_node() {
        let run = run_local(&net(), &OddFails);
        assert!(!run.succeeded());
        assert_eq!(run.failure_count(), 5);
        assert!(run.failures[1] && !run.failures[2]);
    }

    /// Determinism: same network seed, same outputs.
    struct RandomBit;

    impl LocalAlgorithm for RandomBit {
        type Output = u64;

        fn radius(&self, _n: usize) -> usize {
            1
        }

        fn run_at(&self, view: &View) -> NodeOutcome<u64> {
            use rand::Rng;
            let mut rng = view.member_rng(view.center_local());
            NodeOutcome::ok(rng.gen())
        }
    }

    #[test]
    fn outputs_are_deterministic_given_seed() {
        let a = run_local(&net(), &RandomBit);
        let b = run_local(&net(), &RandomBit);
        assert_eq!(a.outputs, b.outputs);
        // different seeds give different outputs somewhere
        let g = generators::cycle(10);
        let other = Network::new(
            Instance::new(hardcore::model(&g, 1.0), PartialConfig::empty(10)).unwrap(),
            6,
        );
        let c = run_local(&other, &RandomBit);
        assert_ne!(a.outputs, c.outputs);
    }
}
