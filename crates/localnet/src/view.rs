use lds_gibbs::{GibbsModel, PartialConfig};
use lds_graph::{traversal, NodeId, Subgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Network;

/// The radius-`t` view of a node in the LOCAL model: everything node `v`
/// learns by gathering all information within distance `t` — the ball's
/// topology, the local constraints fully inside it, the pinned values of
/// its members, their private randomness, and the globally known
/// parameters (`n` and the master seed).
///
/// All node ids inside a view are *local* ids of the induced
/// [`Subgraph`]; translate with [`View::subgraph`].
#[derive(Clone, Debug)]
pub struct View {
    center_global: NodeId,
    center_local: NodeId,
    radius: usize,
    sub: Subgraph,
    model: GibbsModel,
    pinning: PartialConfig,
    seeds: Vec<u64>,
    distances: Vec<u32>,
    n_global: usize,
    master_seed: u64,
}

impl View {
    pub(crate) fn build(net: &Network, center: NodeId, t: usize, members: &[NodeId]) -> View {
        let (model, sub) = net.instance().model().restrict_to(members);
        let pinning = GibbsModel::localize_pinning(&sub, net.instance().pinning());
        let seeds = members.iter().map(|&v| net.node_seed(v, 0)).collect();
        let global_dist = traversal::bfs_distances(net.instance().model().graph(), center);
        // distance from center, clipped to the ball
        let distances = members.iter().map(|&v| global_dist[v.index()]).collect();
        View {
            center_global: center,
            center_local: sub.to_local(center).expect("center is a member"),
            radius: t,
            sub,
            model,
            pinning,
            seeds,
            distances,
            n_global: net.node_count(),
            master_seed: net.seed(),
        }
    }

    /// The global id of the view's center.
    pub fn center(&self) -> NodeId {
        self.center_global
    }

    /// The local id of the center inside [`View::subgraph`].
    pub fn center_local(&self) -> NodeId {
        self.center_local
    }

    /// The gather radius `t`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// The ball `B_t(v)` as an induced subgraph with id mapping.
    pub fn subgraph(&self) -> &Subgraph {
        &self.sub
    }

    /// The restricted model over local ids: only factors with scope fully
    /// inside the ball (the weight `w_B` of Lemma 4.1 / Theorem 5.1).
    pub fn model(&self) -> &GibbsModel {
        &self.model
    }

    /// The pinning restricted to the ball (local ids).
    pub fn pinning(&self) -> &PartialConfig {
        &self.pinning
    }

    /// Private seed of the member with the given *local* id (stream 0).
    pub fn member_seed(&self, local: NodeId) -> u64 {
        self.seeds[local.index()]
    }

    /// An RNG for the member with the given local id.
    pub fn member_rng(&self, local: NodeId) -> StdRng {
        StdRng::seed_from_u64(self.seeds[local.index()])
    }

    /// Distance of a member (local id) from the center.
    pub fn distance(&self, local: NodeId) -> u32 {
        self.distances[local.index()]
    }

    /// Local ids of members at distance exactly `radius` from the center
    /// whose *global* neighborhood may extend beyond the view — the
    /// frontier `Γ`-candidates of the paper's local computations.
    pub fn boundary(&self) -> Vec<NodeId> {
        (0..self.sub.len())
            .map(NodeId::from_index)
            .filter(|&l| self.distances[l.index()] as usize == self.radius)
            .collect()
    }

    /// The globally known network size `n` (paper: every node knows a
    /// polynomial upper bound on `n`).
    pub fn global_node_count(&self) -> usize {
        self.n_global
    }

    /// The master seed (globally known public randomness).
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instance;
    use lds_gibbs::models::hardcore;
    use lds_gibbs::Value;
    use lds_graph::generators;

    fn network() -> Network {
        let g = generators::cycle(8);
        let mut tau = PartialConfig::empty(8);
        tau.pin(NodeId(3), Value(1));
        Network::new(Instance::new(hardcore::model(&g, 2.0), tau).unwrap(), 99)
    }

    #[test]
    fn view_restricts_model_and_pinning() {
        let net = network();
        let view = net.view(NodeId(2), 1);
        // ball {1,2,3}: factors inside = 3 unary + 2 edges
        assert_eq!(view.model().factors().len(), 5);
        let local3 = view.subgraph().to_local(NodeId(3)).unwrap();
        assert_eq!(view.pinning().get(local3), Some(Value(1)));
    }

    #[test]
    fn boundary_is_sphere() {
        let net = network();
        let view = net.view(NodeId(0), 2);
        let boundary: Vec<NodeId> = view
            .boundary()
            .iter()
            .map(|&l| view.subgraph().to_parent(l))
            .collect();
        let mut sorted = boundary.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![NodeId(2), NodeId(6)]);
    }

    #[test]
    fn member_seeds_match_network_seeds() {
        let net = network();
        let view = net.view(NodeId(5), 2);
        for l in 0..view.subgraph().len() {
            let local = NodeId::from_index(l);
            let global = view.subgraph().to_parent(local);
            assert_eq!(view.member_seed(local), net.node_seed(global, 0));
        }
    }

    #[test]
    fn distances_from_center() {
        let net = network();
        let view = net.view(NodeId(0), 3);
        assert_eq!(view.distance(view.center_local()), 0);
        let l = view.subgraph().to_local(NodeId(7)).unwrap();
        assert_eq!(view.distance(l), 1);
    }

    #[test]
    fn global_knowledge_is_exposed() {
        let net = network();
        let view = net.view(NodeId(1), 1);
        assert_eq!(view.global_node_count(), 8);
        assert_eq!(view.master_seed(), 99);
        assert_eq!(view.radius(), 1);
        assert_eq!(view.center(), NodeId(1));
    }
}
