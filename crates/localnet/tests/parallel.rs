//! Property tests for the parallel chromatic simulation (Lemma 3.1):
//! simulating same-color clusters concurrently is execution-equivalent
//! to the sequential scan on the same ordering `π`, for random graphs
//! and localities `r ∈ {1, 2, 3}`.

use lds_gibbs::models::hardcore;
use lds_gibbs::{PartialConfig, Value};
use lds_graph::{generators, traversal, Graph, NodeId};
use lds_localnet::scheduler::{self, run_kernel_chromatic};
use lds_localnet::slocal::{run_kernel_sequential, SlocalKernel};
use lds_localnet::{Instance, Network};
use lds_runtime::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(idx: usize, seed: u64) -> Graph {
    match idx % 5 {
        0 => generators::cycle(16),
        1 => generators::torus(4, 5),
        2 => generators::random_regular(16, 3, &mut StdRng::seed_from_u64(seed)),
        3 => generators::erdos_renyi(18, 0.15, &mut StdRng::seed_from_u64(seed ^ 0xe5)),
        _ => generators::balanced_tree(2, 3),
    }
}

fn network(g: &Graph, seed: u64) -> Network {
    Network::new(Instance::unconditioned(hardcore::model(g, 1.0)), seed)
}

/// A kernel with explicit locality `r`: node `v`'s value mixes the pins
/// of every node within distance `r` (weighted by distance, so both
/// *which* nodes are pinned and *what* they hold matter) with `v`'s
/// private randomness. Any cross-cluster leak in the concurrent
/// simulation changes the output.
#[derive(Clone)]
struct BallHashKernel {
    r: usize,
}

impl SlocalKernel for BallHashKernel {
    fn process(&self, net: &Network, sigma: &PartialConfig, v: NodeId) -> (Value, bool) {
        let g = net.instance().model().graph();
        let dist = traversal::bfs_distances(g, v);
        let mut acc: u64 = net.node_rng(v, 11).gen::<u64>();
        for u in g.nodes() {
            let d = dist[u.index()];
            if d == traversal::UNREACHABLE || d as usize > self.r {
                continue;
            }
            if let Some(val) = sigma.get(u) {
                acc = acc
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((u.index() as u64) << 17 | (val.index() as u64) << 3 | d as u64);
            }
        }
        (
            Value::from_index((acc % 2) as usize),
            acc.is_multiple_of(97),
        )
    }
}

proptest! {
    /// Concurrent same-color cluster simulation == sequential scan on
    /// the schedule's ordering, bitwise, at several pool widths.
    #[test]
    fn parallel_chromatic_equals_sequential_scan(
        gidx in 0usize..5,
        seed in 0u64..300,
        r in 1usize..4,
    ) {
        let g = workload(gidx, seed);
        let net = network(&g, seed);
        let schedule = scheduler::chromatic_schedule(&net, r, 0);
        let kernel = BallHashKernel { r };
        let seq = run_kernel_sequential(&net, &kernel, &schedule.order);
        for threads in [2usize, 8] {
            let par = run_kernel_chromatic(&net, &kernel, &schedule, &ThreadPool::new(threads));
            prop_assert_eq!(
                &par.outputs, &seq.outputs,
                "outputs diverged: graph {} seed {} r {} threads {}", gidx, seed, r, threads
            );
            prop_assert_eq!(
                &par.failures, &seq.failures,
                "failures diverged: graph {} seed {} r {} threads {}", gidx, seed, r, threads
            );
        }
    }

    /// The schedule's parallel form is structurally sound: colors
    /// partition the clustered nodes, clusters flatten to the ordering,
    /// and same-color clusters stay beyond the kernel's reach.
    #[test]
    fn color_clusters_are_consistent(gidx in 0usize..5, seed in 0u64..300, r in 1usize..4) {
        let g = workload(gidx, seed);
        let net = network(&g, seed);
        let s = scheduler::chromatic_schedule(&net, r, 0);
        let flat: Vec<NodeId> = s
            .color_clusters
            .iter()
            .flatten()
            .flatten()
            .chain(s.tail.iter())
            .copied()
            .collect();
        prop_assert_eq!(&flat, &s.order);
        let r_eff = r.min((traversal::diameter(&g) as usize).max(1));
        for clusters in s.color_clusters.iter() {
            for (i, a) in clusters.iter().enumerate() {
                for b in clusters.iter().skip(i + 1) {
                    for &u in a {
                        let dist = traversal::bfs_distances(&g, u);
                        for &v in b {
                            let d = dist[v.index()];
                            prop_assert!(
                                d == traversal::UNREACHABLE || d as usize > r_eff + 1,
                                "same-color clusters within reach: {} {} at distance {}", u, v, d
                            );
                        }
                    }
                }
            }
        }
    }
}
