//! Property-based tests for the LOCAL/SLOCAL simulator substrate.

use lds_gibbs::models::hardcore;
use lds_gibbs::PartialConfig;
use lds_graph::{generators, ordering, traversal, Graph, NodeId};
use lds_localnet::decomposition::{linial_saks, DecompositionParams, UNCLUSTERED};
use lds_localnet::{scheduler, Instance, Network};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(idx: usize, seed: u64) -> Graph {
    match idx % 4 {
        0 => generators::cycle(12),
        1 => generators::torus(4, 4),
        2 => generators::random_regular(14, 3, &mut StdRng::seed_from_u64(seed)),
        _ => generators::grid(3, 5),
    }
}

fn network(g: &Graph, seed: u64) -> Network {
    Network::new(Instance::unconditioned(hardcore::model(g, 1.0)), seed)
}

proptest! {
    /// Decomposition invariants on random graphs and seeds: clusters
    /// cover the graph (w.h.p. at defaults), colors separate clusters,
    /// and weak radii stay within the Linial–Saks caps.
    #[test]
    fn decomposition_invariants(gidx in 0usize..4, seed in 0u64..500) {
        let g = workload(gidx, seed);
        let params = DecompositionParams::for_size(g.node_count());
        let mut rng = StdRng::seed_from_u64(seed);
        let d = linial_saks(&g, params, &mut rng);
        prop_assert!(d.verify_color_separation(&g));
        prop_assert!(d.colors <= params.color_cap);
        prop_assert!(d.max_weak_radius(&g) <= 2 * params.radius_cap);
        // members/cluster/color tables are mutually consistent
        for (cid, members) in d.members().iter().enumerate() {
            for &v in members {
                prop_assert_eq!(d.cluster[v.index()], cid as u32);
                prop_assert_ne!(d.color[v.index()], UNCLUSTERED);
            }
        }
    }

    /// The chromatic schedule's ordering is always a permutation, and
    /// same-color clusters are separated beyond the locality.
    #[test]
    fn schedule_is_valid(gidx in 0usize..4, seed in 0u64..200, locality in 1usize..4) {
        let g = workload(gidx, seed);
        let net = network(&g, seed);
        let s = scheduler::chromatic_schedule(&net, locality, 0);
        prop_assert!(ordering::is_permutation(&g, &s.order));
        prop_assert!(s.rounds >= s.colors);
        let d = &s.decomposition;
        let r = locality.min(traversal::diameter(&g) as usize);
        for u in g.nodes() {
            if d.color[u.index()] == UNCLUSTERED { continue; }
            let dist = traversal::bfs_distances(&g, u);
            for v in g.nodes() {
                if v <= u || d.color[v.index()] == UNCLUSTERED { continue; }
                if d.color[u.index()] == d.color[v.index()]
                    && d.cluster[u.index()] != d.cluster[v.index()] {
                    prop_assert!(dist[v.index()] as usize > r + 1);
                }
            }
        }
    }

    /// Views are hermetic: the subgraph is exactly the ball, pins outside
    /// never leak in, and seeds match the network's derivation.
    #[test]
    fn views_are_hermetic(gidx in 0usize..4, seed in 0u64..200, t in 0usize..4, c in 0usize..12) {
        let g = workload(gidx, seed);
        let n = g.node_count();
        let center = NodeId::from_index(c % n);
        let net = network(&g, seed);
        let view = net.view(center, t);
        let ball: std::collections::HashSet<NodeId> =
            traversal::ball(&g, center, t).into_iter().collect();
        prop_assert_eq!(view.subgraph().len(), ball.len());
        for l in 0..view.subgraph().len() {
            let local = NodeId::from_index(l);
            let global = view.subgraph().to_parent(local);
            prop_assert!(ball.contains(&global));
            prop_assert_eq!(view.member_seed(local), net.node_seed(global, 0));
            prop_assert!(view.distance(local) as usize <= t);
        }
        // every factor of the view is fully inside the ball
        for f in view.model().factors() {
            for &s in f.scope() {
                prop_assert!(s.index() < view.subgraph().len());
            }
        }
    }

    /// Determinism: identical seeds give identical schedules and views.
    #[test]
    fn execution_is_reproducible(gidx in 0usize..4, seed in 0u64..200) {
        let g = workload(gidx, seed);
        let n1 = network(&g, seed);
        let n2 = network(&g, seed);
        let s1 = scheduler::chromatic_schedule(&n1, 2, 5);
        let s2 = scheduler::chromatic_schedule(&n2, 2, 5);
        prop_assert_eq!(s1.order, s2.order);
        prop_assert_eq!(s1.rounds, s2.rounds);
    }

    /// Instances reject locally infeasible pinnings and accept feasible
    /// ones, for arbitrary single-node pins.
    #[test]
    fn instance_validation(gidx in 0usize..4, seed in 0u64..100, node in 0usize..12) {
        let g = workload(gidx, seed);
        let n = g.node_count();
        let v = NodeId::from_index(node % n);
        let model = hardcore::model(&g, 1.0);
        // single pins are always locally feasible for hardcore
        let mut tau = PartialConfig::empty(n);
        tau.pin(v, lds_gibbs::Value(1));
        prop_assert!(Instance::new(model.clone(), tau).is_ok());
        // two adjacent occupied pins are not
        if let Some(&w) = g.neighbors(v).next() {
            let mut bad = PartialConfig::empty(n);
            bad.pin(v, lds_gibbs::Value(1));
            bad.pin(w, lds_gibbs::Value(1));
            prop_assert!(Instance::new(model, bad).is_err());
        }
    }
}
