//! Marginal oracles: the "arbitrary local computation" of LOCAL nodes.
//!
//! The paper's LOCAL algorithms let each node gather a radius-`t` ball and
//! perform **unbounded** computation on it. This crate instantiates that
//! computation tractably:
//!
//! * [`EnumerationOracle`] — the literal algorithm from Theorem 5.1:
//!   gather `B_{t+ℓ}(v)`, greedily extend the pinning over the frontier
//!   ring `Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ)` (possible for locally
//!   admissible models), and compute the conditional marginal exactly
//!   under the ball weight `w_B` by enumeration. Always correct up to the
//!   strong-spatial-mixing error `δ_n(t)`; exponential in the ball size.
//! * [`TwoSpinSawOracle`] — Weitz's self-avoiding-walk tree for two-spin
//!   systems (hardcore, Ising, general `(β, γ, λ)`), truncated at depth
//!   `t` with **certified** upper/lower marginal bounds from the two
//!   extreme boundary conditions. Polynomial in the ball size; the same
//!   oracle run on a line graph computes monomer–dimer (matching)
//!   marginals — the duality of Corollary 5.3.
//! * [`BoostedOracle`] — the boosting lemma (Lemma 4.1): turns additive
//!   (total-variation) inference error into multiplicative error by
//!   pinning the frontier ring coordinate-by-coordinate with argmax
//!   marginals and finishing with exact enumeration under `w_B`.
//!
//! All oracles implement [`InferenceOracle`]; radius planning uses
//! [`DecayRate`], the exponential-decay form `δ_n(t) = c·αᵗ` of strong
//! spatial mixing (Definition 5.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boosting;
mod decay;
mod enumeration;
pub mod saw;

pub use boosting::{
    chain_marginals_mul, marginals_mul_batch, BoostedOracle, MultiplicativeInference,
};
pub use decay::DecayRate;
pub use enumeration::EnumerationOracle;
pub use saw::TwoSpinSawOracle;

use lds_gibbs::{GibbsModel, PartialConfig};
use lds_graph::NodeId;

/// A local inference oracle: estimates the conditional marginal `μ_v^τ`
/// from information within radius `t` of `v`.
///
/// Implementations must be *local*: the estimate may depend only on the
/// ball `B_t(v)` — its topology, the factors fully inside it, and the
/// pinned values of its members. This is what makes an oracle directly
/// executable inside a LOCAL view.
pub trait InferenceOracle {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// The radius `t(n, δ)` this oracle needs for additive error `δ` on
    /// instances of `n` nodes.
    fn radius(&self, n: usize, delta: f64) -> usize;

    /// Estimates `μ_v^τ` using information within radius `t` of `v`;
    /// returns a length-`q` probability vector.
    fn marginal(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        t: usize,
    ) -> Vec<f64>;
}
