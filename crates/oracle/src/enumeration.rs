//! The enumeration oracle — the literal local computation of Theorem 5.1.
//!
//! For a locally admissible, local Gibbs distribution with strong spatial
//! mixing rate `δ_n(·)`, the paper's inference algorithm at node `v` with
//! radius budget `t`:
//!
//! 1. gathers `B_{t+2ℓ}(v)` (we gather `B_{t+ℓ}` plus the factors needed
//!    to check feasibility, which [`lds_gibbs::GibbsModel::restrict_to`]
//!    provides),
//! 2. extends the pinning `τ` to a locally feasible `τ'` on `Λ ∪ Γ`
//!    where `Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ)` is the frontier ring — for
//!    locally admissible models a greedy scan always succeeds,
//! 3. returns the exact conditional marginal `μ_v^{τ'}` computed under
//!    the ball weight `w_B(σ) = ∏_{(f,S): S ⊆ B} f(σ_S)`; by conditional
//!    independence (Proposition 2.1) this equals the true marginal of the
//!    ball-conditioned distribution, and by SSM it is `δ_n(t)`-close to
//!    `μ_v^τ`.
//!
//! Cost: exponential in `|B_t(v)|` — the price of instantiating the
//! paper's "unbounded local computation" exactly. Use
//! [`crate::TwoSpinSawOracle`] for polynomial-time two-spin inference.

use lds_gibbs::{distribution, GibbsModel, PartialConfig, Value};
use lds_graph::{traversal, NodeId};

use crate::{DecayRate, InferenceOracle};

/// Exact-within-ball inference via enumeration (Theorem 5.1's algorithm).
#[derive(Clone, Debug)]
pub struct EnumerationOracle {
    rate: DecayRate,
}

impl EnumerationOracle {
    /// Creates the oracle with the decay rate used for radius planning.
    pub fn new(rate: DecayRate) -> Self {
        EnumerationOracle { rate }
    }

    /// The decay rate used for radius planning.
    pub fn rate(&self) -> DecayRate {
        self.rate
    }

    /// The marginal computed within the ball, plus the pinning `τ'`
    /// actually used on the frontier (exposed for tests).
    pub fn marginal_with_frontier(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        t: usize,
    ) -> (Vec<f64>, PartialConfig) {
        let q = model.alphabet_size();
        if let Some(val) = pinning.get(v) {
            let mut point = vec![0.0; q];
            point[val.index()] = 1.0;
            return (point, pinning.clone());
        }
        let g = model.graph();
        let ell = model.locality().max(1);
        let members = traversal::ball(g, v, t + ell);
        let (ball_model, sub) = model.restrict_to(&members);
        let mut local_pin = GibbsModel::localize_pinning(&sub, pinning);
        let lv = sub.to_local(v).expect("center in ball");

        // Γ = nodes at distance in (t, t+ℓ] from v, not already pinned.
        let dist = traversal::bfs_distances(g, v);
        let mut frontier: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&u| {
                let d = dist[u.index()] as usize;
                d > t && !pinning.is_pinned(u)
            })
            .collect();
        frontier.sort_unstable(); // increasing global id, as in the paper

        // Greedily extend the pinning over Γ, keeping the *ball model*
        // locally feasible (locally admissible ⇒ always possible).
        for u in frontier {
            let lu = sub.to_local(u).expect("frontier in ball");
            let mut placed = false;
            for c in (0..q).map(Value::from_index) {
                let candidate = local_pin.with_pin(lu, c);
                if ball_model.is_locally_feasible(&candidate) {
                    local_pin = candidate;
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Non-admissible corner: leave the node free; the
                // enumeration below then averages over it, which is
                // still a valid local estimate.
                continue;
            }
        }

        let marginal = distribution::marginal(&ball_model, &local_pin, lv)
            .unwrap_or_else(|| vec![1.0 / q as f64; q]);
        (marginal, local_pin)
    }
}

impl InferenceOracle for EnumerationOracle {
    fn name(&self) -> &str {
        "enumeration"
    }

    fn radius(&self, _n: usize, delta: f64) -> usize {
        self.rate.radius_for(delta)
    }

    fn marginal(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        t: usize,
    ) -> Vec<f64> {
        self.marginal_with_frontier(model, pinning, v, t).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::metrics;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_graph::generators;

    fn oracle() -> EnumerationOracle {
        EnumerationOracle::new(DecayRate::new(0.5, 2.0))
    }

    #[test]
    fn exact_when_ball_covers_graph() {
        let g = generators::cycle(7);
        let m = hardcore::model(&g, 1.3);
        let tau = PartialConfig::empty(7);
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        // radius 7 covers the cycle: frontier ring is empty
        let est = oracle().marginal(&m, &tau, NodeId(0), 7);
        assert!(metrics::tv_distance(&exact, &est) < 1e-12);
    }

    #[test]
    fn error_decays_with_radius() {
        let g = generators::cycle(16);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(16);
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        let mut last = f64::INFINITY;
        for t in [1usize, 3, 5] {
            let est = oracle().marginal(&m, &tau, NodeId(0), t);
            let err = metrics::tv_distance(&exact, &est);
            assert!(err <= last + 1e-12, "error grew at t={t}");
            last = err;
        }
        assert!(last < 0.01, "radius-5 error too large: {last}");
    }

    #[test]
    fn respects_pinning() {
        let g = generators::path(5);
        let m = hardcore::model(&g, 2.0);
        let mut tau = PartialConfig::empty(5);
        tau.pin(NodeId(1), Value(1));
        // node 2 neighbors an occupied node: must be empty
        let est = oracle().marginal(&m, &tau, NodeId(2), 2);
        assert!(est[1] < 1e-12);
        // pinned node returns its point mass
        let pinned = oracle().marginal(&m, &tau, NodeId(1), 2);
        assert_eq!(pinned, vec![0.0, 1.0]);
    }

    #[test]
    fn colorings_frontier_extension_is_proper() {
        let g = generators::cycle(9);
        let m = coloring::model(&g, 3);
        let tau = PartialConfig::empty(9);
        let (est, frontier) = oracle().marginal_with_frontier(&m, &tau, NodeId(0), 2);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // the frontier pinning never violates a constraint
        assert!(frontier.pinned_count() > 0);
    }

    #[test]
    fn radius_planning_uses_decay() {
        let o = oracle();
        assert_eq!(o.radius(100, 0.125), 4); // 2 * 0.5^4 = 0.125
        assert!(o.radius(100, 1e-6) > o.radius(100, 1e-2));
    }
}
