//! The boosting lemma (paper, Lemma 4.1).
//!
//! For local Gibbs distributions, approximate inference with **additive**
//! (total-variation) error `δ` can be boosted to approximate inference
//! with **multiplicative** error `ε` at the cost of a constant-factor
//! radius increase. The algorithm `A^×_ε` at node `v`:
//!
//! 1. sets `δ = ε/(5qn)` and `t = t(n, δ)`, the base oracle's radius;
//! 2. enumerates the frontier ring `Γ = B_{t+ℓ}(v) \ (B_t(v) ∪ Λ)` in
//!    increasing id order, pinning each `v_i` to the value maximizing the
//!    base oracle's marginal `μ̂^{τ_{i-1}}_{v_i}` — the argmax has true
//!    probability `≥ 1/q − δ`, so every step multiplies the feasible mass
//!    by at most `e^{ε/n}` of slack (the chain-rule telescoping of the
//!    paper's proof);
//! 3. returns the **exact** marginal `μ^{τ_m}_v` computed under the ball
//!    weight `w_B`, which conditional independence (Proposition 2.1)
//!    makes a function of `B_{t+ℓ}(v)` only.
//!
//! The result satisfies `e^{−ε} ≤ μ̂_v(c)/μ^τ_v(c) ≤ e^{ε}` for every
//! color `c` — the multiplicative guarantee the distributed JVV sampler
//! (Theorem 4.2) consumes.

use std::sync::Arc;

use lds_gibbs::{distribution, GibbsModel, PartialConfig};
use lds_graph::{traversal, NodeId};
use lds_runtime::ThreadPool;

use crate::InferenceOracle;

/// Inference with a multiplicative-error guarantee
/// `err(μ̂_v, μ^τ_v) ≤ ε` (paper, eq. (2)).
pub trait MultiplicativeInference {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Radius needed for multiplicative error `ε` on a given model.
    fn radius_mul(&self, model: &GibbsModel, eps: f64) -> usize;

    /// Estimates `μ_v^τ` with multiplicative error `ε`.
    fn marginal_mul(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        eps: f64,
    ) -> Vec<f64>;

    /// The *support* of the estimate: `support_mul(..)[c]` is `true`
    /// iff `marginal_mul(..)[c] > 0`. By the multiplicative guarantee a
    /// positive estimate implies positive truth, so this is all the
    /// ground-state pass of `local-JVV` needs — and deciding positivity
    /// is often far cheaper than computing the magnitude (a truncated
    /// SAW tree certifies zeros at pinned neighbors after one level).
    /// The default computes the full marginal; oracles with certified
    /// bounds override it with an early-out.
    fn support_mul(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        eps: f64,
    ) -> Vec<bool> {
        self.marginal_mul(model, pinning, v, eps)
            .into_iter()
            .map(|p| p > 0.0)
            .collect()
    }
}

/// The boosted oracle `A^×_ε` built from an additive-error base oracle
/// `A^+_δ` (Lemma 4.1).
///
/// # Example
///
/// ```
/// use lds_gibbs::models::hardcore;
/// use lds_gibbs::PartialConfig;
/// use lds_graph::{generators, NodeId};
/// use lds_oracle::{BoostedOracle, DecayRate, EnumerationOracle};
/// use lds_oracle::saw::TwoSpinSawOracle;
/// use lds_gibbs::models::two_spin::TwoSpinParams;
/// use lds_oracle::boosting::MultiplicativeInference;
///
/// let g = generators::cycle(8);
/// let m = hardcore::model(&g, 1.0);
/// let base = TwoSpinSawOracle::new(
///     TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
/// let boosted = BoostedOracle::new(base);
/// let mu = boosted.marginal_mul(&m, &PartialConfig::empty(8), NodeId(0), 0.5);
/// assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct BoostedOracle<O> {
    base: O,
}

impl<O: InferenceOracle> BoostedOracle<O> {
    /// Wraps an additive-error oracle.
    pub fn new(base: O) -> Self {
        BoostedOracle { base }
    }

    /// The base oracle.
    pub fn base(&self) -> &O {
        &self.base
    }

    /// The base-oracle radius `t = t(n, ε/(5qn))` used inside the
    /// boosting construction.
    pub fn inner_radius(&self, model: &GibbsModel, eps: f64) -> usize {
        let n = model.node_count().max(1);
        let q = model.alphabet_size();
        let delta = eps / (5.0 * q as f64 * n as f64);
        self.base.radius(n, delta)
    }

    /// The boosted marginal together with the fully pinned frontier
    /// configuration `τ_m` (exposed for tests).
    pub fn marginal_with_frontier(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        eps: f64,
    ) -> (Vec<f64>, PartialConfig) {
        let q = model.alphabet_size();
        if let Some(val) = pinning.get(v) {
            let mut point = vec![0.0; q];
            point[val.index()] = 1.0;
            return (point, pinning.clone());
        }
        let g = model.graph();
        let ell = model.locality().max(1);
        let t = self.inner_radius(model, eps);

        // Γ in increasing id order
        let dist = traversal::bfs_distances(g, v);
        let members = traversal::ball(g, v, t + ell);
        let mut frontier: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&u| (dist[u.index()] as usize) > t && !pinning.is_pinned(u))
            .collect();
        frontier.sort_unstable();

        // sequential argmax pinning with the base oracle
        let mut tau_i = pinning.clone();
        for vi in frontier {
            let mu = self.base.marginal(model, &tau_i, vi, t);
            let argmax = mu
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite marginals"))
                .map(|(i, _)| i)
                .expect("nonempty alphabet");
            tau_i.pin(vi, lds_gibbs::Value::from_index(argmax));
        }

        // exact marginal under w_B given τ_m
        let (ball_model, sub) = model.restrict_to(&members);
        let local_pin = GibbsModel::localize_pinning(&sub, &tau_i);
        let lv = sub.to_local(v).expect("center in ball");
        let marginal = distribution::marginal(&ball_model, &local_pin, lv)
            .unwrap_or_else(|| vec![1.0 / q as f64; q]);
        (marginal, tau_i)
    }
}

/// Marginals at many vertices, the independent per-vertex trials fanned
/// out across the pool.
///
/// Each vertex's boosted computation — frontier enumeration, the
/// sequential argmax pinning over its own ring `Γ`, and the final exact
/// ball marginal — is a self-contained trial that shares nothing with
/// the other vertices, so the trials parallelize embarrassingly. The
/// LOCAL model runs them at *every* node simultaneously anyway; this is
/// the simulator catching up with the model. Results are in `vertices`
/// order and bit-identical to calling
/// [`MultiplicativeInference::marginal_mul`] in a loop, at any pool
/// width. This is the single fan-out implementation — the engine's full
/// marginal table dispatches here through its oracle handle.
///
/// The pool's workers are long-lived and take `'static` jobs, so the
/// parallel path ships one `Arc` of `(oracle, model, pinning)` clones to
/// them; the sequential path borrows everything and clones nothing.
pub fn marginals_mul_batch<O>(
    oracle: &O,
    model: &GibbsModel,
    pinning: &PartialConfig,
    vertices: &[NodeId],
    eps: f64,
    pool: &ThreadPool,
) -> Vec<Vec<f64>>
where
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
{
    if pool.is_sequential() || vertices.len() <= 1 {
        return vertices
            .iter()
            .map(|&v| oracle.marginal_mul(model, pinning, v, eps))
            .collect();
    }
    let shared = Arc::new((oracle.clone(), model.clone(), pinning.clone()));
    pool.par_map(vertices, move |&v| {
        let (oracle, model, pinning) = &*shared;
        oracle.marginal_mul(model, pinning, v, eps)
    })
}

/// The `n` chain-rule marginal distributions `μ^{τ∧σ_{<i}}_{v_i}` of a
/// frozen pinning chain, fanned out across the pool.
///
/// `levels` is the chain in order: level `i` pins `levels[..i]` on top
/// of `base` and evaluates the marginal at `levels[i].0`. Because the
/// chain is frozen, level `i`'s prefix is known without running levels
/// `< i` — each level is a self-contained trial, so the chain-rule
/// product (the counting reduction's inner loop) parallelizes
/// embarrassingly even though it *looks* sequential. This is the batch
/// entry point the counting estimator in `lds-core` dispatches to.
///
/// Results are in level order and bit-identical to evaluating the chain
/// in a sequential loop, at any pool width: a prefix rebuilt by pinning
/// `levels[..i]` onto a clone of `base` in order is bit-equal to the
/// incrementally grown pinning of a sequential walk, and
/// [`MultiplicativeInference::marginal_mul`] is a deterministic function
/// of `(model, pinning, v, eps)`.
pub fn chain_marginals_mul<O>(
    oracle: &O,
    model: &GibbsModel,
    base: &PartialConfig,
    levels: &[(NodeId, lds_gibbs::Value)],
    eps: f64,
    pool: &ThreadPool,
) -> Vec<Vec<f64>>
where
    O: MultiplicativeInference + Clone + Send + Sync + 'static,
{
    if pool.is_sequential() || levels.len() <= 1 {
        let mut prefix = base.clone();
        let mut out = Vec::with_capacity(levels.len());
        for &(v, val) in levels {
            out.push(oracle.marginal_mul(model, &prefix, v, eps));
            prefix.pin(v, val);
        }
        return out;
    }
    let shared = Arc::new((oracle.clone(), model.clone(), base.clone(), levels.to_vec()));
    let indices: Vec<usize> = (0..levels.len()).collect();
    pool.par_map(&indices, move |&i| {
        let (oracle, model, base, levels) = &*shared;
        let mut prefix = base.clone();
        for &(u, val) in &levels[..i] {
            prefix.pin(u, val);
        }
        oracle.marginal_mul(model, &prefix, levels[i].0, eps)
    })
}

impl<O: InferenceOracle> MultiplicativeInference for BoostedOracle<O> {
    fn name(&self) -> &str {
        "boosted"
    }

    fn radius_mul(&self, model: &GibbsModel, eps: f64) -> usize {
        // node v simulates the base algorithm at nodes within t + ℓ,
        // each needing radius t: total 2t + ℓ.
        let ell = model.locality().max(1);
        2 * self.inner_radius(model, eps) + ell
    }

    fn marginal_mul(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        eps: f64,
    ) -> Vec<f64> {
        self.marginal_with_frontier(model, pinning, v, eps).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecayRate, TwoSpinSawOracle};
    use lds_gibbs::models::two_spin::TwoSpinParams;
    use lds_gibbs::models::{coloring, hardcore};
    use lds_gibbs::{metrics, Value};
    use lds_graph::generators;

    fn boosted_hc(lambda: f64) -> BoostedOracle<TwoSpinSawOracle> {
        BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(lambda),
            DecayRate::new(0.4, 2.0),
        ))
    }

    #[test]
    fn multiplicative_error_is_bounded() {
        let g = generators::cycle(10);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(10);
        let boosted = boosted_hc(1.0);
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        for eps in [0.5, 0.1] {
            let est = boosted.marginal_mul(&m, &tau, NodeId(0), eps);
            let err = metrics::multiplicative_err(&exact, &est);
            assert!(err <= eps, "eps={eps}: err={err}");
        }
    }

    #[test]
    fn boosted_respects_pins_and_zeroes() {
        let g = generators::path(6);
        let m = hardcore::model(&g, 2.0);
        let mut tau = PartialConfig::empty(6);
        tau.pin(NodeId(2), Value(1));
        let boosted = boosted_hc(2.0);
        // neighbor of occupied is deterministically empty: the boosted
        // oracle must put *zero* mass there (multiplicative error!)
        let est = boosted.marginal_mul(&m, &tau, NodeId(1), 0.3);
        assert_eq!(est[1], 0.0);
        // pinned node is a point mass
        let p = boosted.marginal_mul(&m, &tau, NodeId(2), 0.3);
        assert_eq!(p, vec![0.0, 1.0]);
    }

    #[test]
    fn frontier_is_fully_pinned() {
        let g = generators::cycle(12);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(12);
        let boosted = boosted_hc(1.0);
        let (_, tau_m) = boosted.marginal_with_frontier(&m, &tau, NodeId(0), 0.5);
        let t = boosted.inner_radius(&m, 0.5);
        let ell = m.locality().max(1);
        let dist = lds_graph::traversal::bfs_distances(&g, NodeId(0));
        for u in g.nodes() {
            let d = dist[u.index()] as usize;
            if d > t && d <= t + ell {
                assert!(tau_m.is_pinned(u), "frontier node {u} not pinned");
            }
        }
    }

    #[test]
    fn radius_accounting() {
        let g = generators::cycle(10);
        let m = hardcore::model(&g, 1.0);
        let boosted = boosted_hc(1.0);
        let r = boosted.radius_mul(&m, 0.5);
        assert_eq!(r, 2 * boosted.inner_radius(&m, 0.5) + 1);
    }

    #[test]
    fn batched_trials_match_sequential_bitwise() {
        let g = generators::cycle(10);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(10);
        let boosted = boosted_hc(1.0);
        let vs: Vec<NodeId> = g.nodes().collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let batch = marginals_mul_batch(&boosted, &m, &tau, &vs, 0.3, &pool);
            for (i, &v) in vs.iter().enumerate() {
                assert_eq!(batch[i], boosted.marginal_mul(&m, &tau, v, 0.3));
            }
        }
    }

    #[test]
    fn chain_marginals_match_incremental_walk_bitwise() {
        let g = generators::cycle(10);
        let m = hardcore::model(&g, 1.2);
        let mut base = PartialConfig::empty(10);
        base.pin(NodeId(3), Value(0));
        let boosted = boosted_hc(1.2);
        // a frozen greedy chain over the free vertices
        let mut levels = Vec::new();
        let mut prefix = base.clone();
        for v in g.nodes().filter(|&v| !base.is_pinned(v)) {
            let mu = boosted.marginal_mul(&m, &prefix, v, 0.3);
            let argmax = mu
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let val = Value::from_index(argmax);
            levels.push((v, val));
            prefix.pin(v, val);
        }
        // the sequential walk's marginals are the ground truth
        let expected: Vec<Vec<f64>> = {
            let mut prefix = base.clone();
            levels
                .iter()
                .map(|&(v, val)| {
                    let mu = boosted.marginal_mul(&m, &prefix, v, 0.3);
                    prefix.pin(v, val);
                    mu
                })
                .collect()
        };
        for threads in [1, 4, 8] {
            let pool = ThreadPool::new(threads);
            let chain = chain_marginals_mul(&boosted, &m, &base, &levels, 0.3, &pool);
            assert_eq!(chain, expected, "width {threads}");
        }
    }

    #[test]
    fn works_with_enumeration_base_on_colorings() {
        use crate::EnumerationOracle;
        let g = generators::cycle(8);
        let m = coloring::model(&g, 3);
        let tau = PartialConfig::empty(8);
        let base = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
        let boosted = BoostedOracle::new(base);
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        let est = boosted.marginal_mul(&m, &tau, NodeId(0), 0.6);
        let err = metrics::multiplicative_err(&exact, &est);
        assert!(err <= 0.6, "coloring boosted err {err}");
    }

    use lds_gibbs::distribution;
}
