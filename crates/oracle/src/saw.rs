//! Weitz's self-avoiding-walk (SAW) tree for two-spin systems.
//!
//! Weitz (STOC'06) showed that the marginal ratio of a two-spin system at
//! `v` equals the root ratio of the tree of self-avoiding walks from `v`,
//! where a walk closing a cycle at a vertex `u` terminates in a leaf
//! pinned to *occupied* if the returning edge exceeds the edge through
//! which the walk left `u` (in `u`'s fixed edge ordering) and *vacant*
//! otherwise, and pinned vertices of the instance become pinned leaves.
//!
//! Truncating the tree at depth `t` and propagating **interval bounds**
//! (the two extreme boundary conditions at the frontier) yields certified
//! upper/lower bounds on the true marginal whose gap shrinks at the
//! strong-spatial-mixing rate — in the uniqueness regime the gap is
//! `poly(n)·αᵗ`, which is exactly the resource the paper's reductions
//! consume. This oracle is the polynomial-time stand-in for the paper's
//! "unbounded local computation", and running it on a line graph computes
//! monomer–dimer (matching) marginals via the Corollary 5.3 duality.

use lds_gibbs::models::two_spin::TwoSpinParams;
use lds_gibbs::{GibbsModel, PartialConfig, Value};
use lds_graph::{EdgeId, Graph, NodeId};

use crate::{DecayRate, InferenceOracle};

/// Certified marginal bounds from a truncated SAW tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MarginalBounds {
    /// Lower bound on `Pr[Y_v = 1]`.
    pub lo: f64,
    /// Upper bound on `Pr[Y_v = 1]`.
    pub hi: f64,
}

impl MarginalBounds {
    /// Midpoint estimate of the occupation probability.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// The certified gap `hi − lo` (an upper bound on twice the TV error
    /// of the midpoint estimate).
    pub fn gap(&self) -> f64 {
        self.hi - self.lo
    }
}

/// The SAW-tree inference oracle for two-spin systems.
///
/// # Example
///
/// ```
/// use lds_gibbs::models::two_spin::TwoSpinParams;
/// use lds_gibbs::PartialConfig;
/// use lds_graph::{generators, NodeId};
/// use lds_oracle::{DecayRate, TwoSpinSawOracle};
///
/// let g = generators::cycle(10);
/// let oracle = TwoSpinSawOracle::new(
///     TwoSpinParams::hardcore(1.0), DecayRate::new(0.5, 2.0));
/// let b = oracle.marginal_bounds(&g, &PartialConfig::empty(10), NodeId(0), 6);
/// assert!(b.lo <= b.hi && b.gap() < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct TwoSpinSawOracle {
    params: TwoSpinParams,
    rate: DecayRate,
    node_budget: usize,
}

/// Ratio interval `[lo, hi]` for `R = Pr[1]/Pr[0]`; `hi` may be `+∞`.
#[derive(Clone, Copy, Debug)]
struct RatioInterval {
    lo: f64,
    hi: f64,
}

impl RatioInterval {
    const UNKNOWN: RatioInterval = RatioInterval {
        lo: 0.0,
        hi: f64::INFINITY,
    };

    fn point(r: f64) -> Self {
        RatioInterval { lo: r, hi: r }
    }
}

/// `x·y` with the convention `0·∞ = 0` (safe for bound products).
fn safe_mul(x: f64, y: f64) -> f64 {
    if x == 0.0 || y == 0.0 {
        0.0
    } else {
        x * y
    }
}

impl TwoSpinSawOracle {
    /// Creates the oracle for the given two-spin parameters and decay
    /// rate (used only for radius planning; the bounds themselves are
    /// certified regardless). The default per-call work budget is
    /// 200 000 SAW-tree nodes; see [`TwoSpinSawOracle::with_node_budget`].
    pub fn new(params: TwoSpinParams, rate: DecayRate) -> Self {
        TwoSpinSawOracle {
            params,
            rate,
            node_budget: 200_000,
        }
    }

    /// Sets the per-call work budget (number of SAW-tree nodes explored).
    /// When the budget is exhausted, unexplored subtrees contribute the
    /// unknown interval `[0, 1]` — the returned bounds stay **certified**
    /// (they only widen), making the oracle an anytime algorithm on dense
    /// graphs where the SAW tree is exponential in the radius.
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        self.node_budget = budget;
        self
    }

    /// The model parameters.
    pub fn params(&self) -> TwoSpinParams {
        self.params
    }

    /// The edge factor `f(R) = (γR + 1)/(R + β)`: the multiplicative
    /// contribution of a child with ratio `R` to its parent's ratio.
    fn factor(&self, r: f64) -> f64 {
        let TwoSpinParams { beta, gamma, .. } = self.params;
        if r.is_infinite() {
            return gamma;
        }
        let num = gamma * r + 1.0;
        let den = r + beta;
        if den == 0.0 {
            if num == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            num / den
        }
    }

    fn factor_interval(&self, child: RatioInterval) -> (f64, f64) {
        let a = self.factor(child.lo);
        let b = self.factor(child.hi);
        (a.min(b), a.max(b))
    }

    /// Recursive SAW-tree ratio bounds at `u`, entered from `from`.
    #[allow(clippy::too_many_arguments)]
    fn ratio(
        &self,
        g: &Graph,
        pinning: &PartialConfig,
        u: NodeId,
        from: Option<NodeId>,
        depth: usize,
        cap: usize,
        on_path: &mut Vec<bool>,
        exit_edge: &mut Vec<EdgeId>,
        budget: &mut usize,
    ) -> RatioInterval {
        if let Some(val) = pinning.get(u) {
            return if val == Value(1) {
                RatioInterval::point(f64::INFINITY)
            } else {
                RatioInterval::point(0.0)
            };
        }
        if depth >= cap {
            return RatioInterval::UNKNOWN;
        }
        if *budget == 0 {
            return RatioInterval::UNKNOWN;
        }
        *budget -= 1;
        let mut lo = self.params.lambda;
        let mut hi = self.params.lambda;
        on_path[u.index()] = true;
        for (x, e) in g.incident(u) {
            if Some(x) == from {
                continue;
            }
            let child = if let Some(val) = pinning.get(x) {
                if val == Value(1) {
                    RatioInterval::point(f64::INFINITY)
                } else {
                    RatioInterval::point(0.0)
                }
            } else if on_path[x.index()] {
                // closing a cycle: Weitz boundary rule at x
                if e > exit_edge[x.index()] {
                    RatioInterval::point(f64::INFINITY)
                } else {
                    RatioInterval::point(0.0)
                }
            } else {
                exit_edge[u.index()] = e;
                self.ratio(
                    g,
                    pinning,
                    x,
                    Some(u),
                    depth + 1,
                    cap,
                    on_path,
                    exit_edge,
                    budget,
                )
            };
            let (flo, fhi) = self.factor_interval(child);
            lo = safe_mul(lo, flo);
            hi = safe_mul(hi, fhi);
        }
        on_path[u.index()] = false;
        RatioInterval { lo, hi }
    }

    /// Certified bounds on `Pr[Y_v = 1]` under `μ^τ`, using information
    /// within radius `t` of `v` (walks of length `≤ t`).
    pub fn marginal_bounds(
        &self,
        g: &Graph,
        pinning: &PartialConfig,
        v: NodeId,
        t: usize,
    ) -> MarginalBounds {
        if let Some(val) = pinning.get(v) {
            let p = if val == Value(1) { 1.0 } else { 0.0 };
            return MarginalBounds { lo: p, hi: p };
        }
        let mut on_path = vec![false; g.node_count()];
        let mut exit_edge = vec![EdgeId(0); g.node_count()];
        self.bounds_at_depth(g, pinning, v, t, &mut on_path, &mut exit_edge)
            .0
    }

    /// One truncated-tree evaluation at depth cap `t`, on caller-provided
    /// scratch. Returns the bounds and whether the node budget ran out.
    fn bounds_at_depth(
        &self,
        g: &Graph,
        pinning: &PartialConfig,
        v: NodeId,
        t: usize,
        on_path: &mut Vec<bool>,
        exit_edge: &mut Vec<EdgeId>,
    ) -> (MarginalBounds, bool) {
        let mut budget = self.node_budget;
        let r = self.ratio(g, pinning, v, None, 0, t, on_path, exit_edge, &mut budget);
        let to_p = |r: f64| {
            if r.is_infinite() {
                1.0
            } else {
                r / (1.0 + r)
            }
        };
        (
            MarginalBounds {
                lo: to_p(r.lo),
                hi: to_p(r.hi),
            },
            budget == 0,
        )
    }

    /// **Anytime** certified bounds: iterative deepening `t = 1, 2, …,
    /// t_max`, stopping at the first depth whose bounds satisfy
    /// `decided` (or once an attempt exhausts the node budget — deeper
    /// caps cannot reliably tighten a budget-bound tree). The certified
    /// gap shrinks at the strong-spatial-mixing rate, so most queries
    /// stop far below `t_max` — this is what makes the oracle's cost
    /// ball-bounded in *information* rather than in the planned
    /// worst-case radius. The geometric growth of tree size in depth
    /// bounds the re-exploration overhead by a constant factor of the
    /// final attempt.
    ///
    /// Every returned interval is certified exactly like
    /// [`TwoSpinSawOracle::marginal_bounds`] at the stopping depth; with
    /// `decided = |_| false` this is `marginal_bounds(.., t_max)`.
    pub fn marginal_bounds_anytime(
        &self,
        g: &Graph,
        pinning: &PartialConfig,
        v: NodeId,
        t_max: usize,
        decided: impl Fn(&MarginalBounds) -> bool,
    ) -> MarginalBounds {
        if let Some(val) = pinning.get(v) {
            let p = if val == Value(1) { 1.0 } else { 0.0 };
            return MarginalBounds { lo: p, hi: p };
        }
        let mut on_path = vec![false; g.node_count()];
        let mut exit_edge = vec![EdgeId(0); g.node_count()];
        for t in 1..t_max {
            let (b, exhausted) =
                self.bounds_at_depth(g, pinning, v, t, &mut on_path, &mut exit_edge);
            if decided(&b) || exhausted {
                return b;
            }
        }
        // the final attempt runs at the full planned radius, so the
        // result is never shallower-informed than the fixed-depth query
        self.bounds_at_depth(g, pinning, v, t_max, &mut on_path, &mut exit_edge)
            .0
    }
}

impl crate::MultiplicativeInference for TwoSpinSawOracle {
    fn name(&self) -> &str {
        "saw-tree-mul"
    }

    /// Heuristic multiplicative radius: two-spin marginals in the
    /// uniqueness regime are bounded away from 0 and 1 (hard zeros are
    /// certified exactly by the interval), so a certified gap of
    /// `ε/4` implies multiplicative error `≈ ε`. The distributed JVV
    /// sampler remains *exact* for any consistent estimator as long as no
    /// acceptance probability exceeds 1 (tracked by
    /// `JvvStats::clamped`); this radius choice controls the success
    /// probability, not correctness.
    fn radius_mul(&self, _model: &GibbsModel, eps: f64) -> usize {
        self.rate.radius_for(0.25 * eps)
    }

    fn marginal_mul(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        eps: f64,
    ) -> Vec<f64> {
        let t = crate::MultiplicativeInference::radius_mul(self, model, eps);
        // Anytime deepening, stopped once the *certified* per-entry
        // relative error of the midpoint is ≤ ε/3 — a rigorous form of
        // the guarantee the worst-case radius plan only assumes. The
        // depth cap `t` and node budget still bound the work, so the
        // result is never less accurate than the fixed-depth query was.
        let decided = |b: &MarginalBounds| {
            b.hi == 0.0
                || b.lo == 1.0
                || (b.gap() <= (2.0 * eps / 3.0) * b.lo
                    && b.gap() <= (2.0 * eps / 3.0) * (1.0 - b.hi))
        };
        let b = self.marginal_bounds_anytime(model.graph(), pinning, v, t, decided);
        // preserve certified zeros/ones exactly (support correctness)
        let p = if b.hi == 0.0 {
            0.0
        } else if b.lo == 1.0 {
            1.0
        } else {
            b.midpoint()
        };
        vec![1.0 - p, p]
    }

    /// Positivity needs only a *decided* interval, not a tight one: a
    /// pinned-occupied neighbor certifies a hard zero after one level,
    /// and one resolved level bounds the ratio away from the forcing
    /// boundary — so the ground-state pass pays `O(Δ²)` per node
    /// instead of a deep tree walk.
    fn support_mul(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        eps: f64,
    ) -> Vec<bool> {
        if let Some(val) = pinning.get(v) {
            return vec![val == Value(0), val == Value(1)];
        }
        let t = crate::MultiplicativeInference::radius_mul(self, model, eps);
        // occupied decided: certified zero (hi = 0) or certified
        // positive (lo > 0); vacant decided symmetrically at 1
        let decided =
            |b: &MarginalBounds| (b.hi == 0.0 || b.lo > 0.0) && (b.lo == 1.0 || b.hi < 1.0);
        let b = self.marginal_bounds_anytime(model.graph(), pinning, v, t, decided);
        if decided(&b) {
            return vec![b.lo < 1.0, b.hi > 0.0];
        }
        // undecided at the cap: fall back to the full estimate so the
        // support matches `marginal_mul` exactly
        crate::MultiplicativeInference::marginal_mul(self, model, pinning, v, eps)
            .into_iter()
            .map(|p| p > 0.0)
            .collect()
    }
}

impl InferenceOracle for TwoSpinSawOracle {
    fn name(&self) -> &str {
        "saw-tree"
    }

    fn radius(&self, _n: usize, delta: f64) -> usize {
        self.rate.radius_for(delta)
    }

    fn marginal(
        &self,
        model: &GibbsModel,
        pinning: &PartialConfig,
        v: NodeId,
        t: usize,
    ) -> Vec<f64> {
        let b = self.marginal_bounds(model.graph(), pinning, v, t);
        let p = b.midpoint();
        vec![1.0 - p, p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lds_gibbs::models::{hardcore, ising, two_spin};
    use lds_gibbs::{distribution, metrics};
    use lds_graph::generators;

    fn hc_oracle(lambda: f64) -> TwoSpinSawOracle {
        TwoSpinSawOracle::new(TwoSpinParams::hardcore(lambda), DecayRate::new(0.5, 2.0))
    }

    #[test]
    fn exact_on_trees_with_full_depth() {
        // on a tree the SAW tree *is* the tree: full depth = exact marginal
        let g = generators::balanced_tree(2, 3);
        let m = hardcore::model(&g, 1.4);
        let tau = PartialConfig::empty(g.node_count());
        let oracle = hc_oracle(1.4);
        for v in [NodeId(0), NodeId(1), NodeId(7)] {
            let exact = distribution::marginal(&m, &tau, v).unwrap();
            let b = oracle.marginal_bounds(&g, &tau, v, 10);
            assert!(b.gap() < 1e-12, "tree bounds should be tight");
            assert!(
                (b.midpoint() - exact[1]).abs() < 1e-10,
                "v={v}: saw={} exact={}",
                b.midpoint(),
                exact[1]
            );
        }
    }

    #[test]
    fn exact_on_cycles_with_full_depth() {
        // Weitz's theorem: with walks long enough to exhaust all SAWs,
        // the root ratio is exactly the true marginal ratio.
        let g = generators::cycle(7);
        let m = hardcore::model(&g, 2.0);
        let tau = PartialConfig::empty(7);
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        let b = hc_oracle(2.0).marginal_bounds(&g, &tau, NodeId(0), 8);
        assert!(b.gap() < 1e-12);
        assert!((b.midpoint() - exact[1]).abs() < 1e-10);
    }

    #[test]
    fn exact_on_grid_with_full_depth() {
        let g = generators::grid(3, 3);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(9);
        for v in g.nodes() {
            let exact = distribution::marginal(&m, &tau, v).unwrap();
            let b = hc_oracle(1.0).marginal_bounds(&g, &tau, v, 12);
            assert!(b.gap() < 1e-10, "gap {} at {v}", b.gap());
            assert!(
                (b.midpoint() - exact[1]).abs() < 1e-8,
                "v={v}: saw={} exact={}",
                b.midpoint(),
                exact[1]
            );
        }
    }

    #[test]
    fn respects_pinning() {
        let g = generators::path(5);
        let m = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(5);
        tau.pin(NodeId(1), Value(1));
        let exact = distribution::marginal(&m, &tau, NodeId(2)).unwrap();
        let b = hc_oracle(1.0).marginal_bounds(&g, &tau, NodeId(2), 6);
        assert!(b.hi < 1e-12, "neighbor of occupied must be empty");
        assert!((b.midpoint() - exact[1]).abs() < 1e-10);
    }

    #[test]
    fn bounds_bracket_truth_when_truncated() {
        let g = generators::torus(4, 4);
        let m = hardcore::model(&g, 1.0);
        let tau = PartialConfig::empty(16);
        let exact = distribution::marginal(&m, &tau, NodeId(5)).unwrap()[1];
        for t in 1..6 {
            let b = hc_oracle(1.0).marginal_bounds(&g, &tau, NodeId(5), t);
            assert!(
                b.lo <= exact + 1e-12 && exact <= b.hi + 1e-12,
                "t={t}: [{}, {}] vs {exact}",
                b.lo,
                b.hi
            );
        }
    }

    #[test]
    fn gap_decays_with_radius_in_uniqueness() {
        // λ = 0.5, well inside uniqueness for Δ = 4 (λ_c(4) ≈ 1.6875)
        let g = generators::torus(5, 5);
        let tau = PartialConfig::empty(25);
        let oracle = hc_oracle(0.5);
        let mut last = f64::INFINITY;
        for t in [2usize, 4, 6, 8] {
            let gap = oracle.marginal_bounds(&g, &tau, NodeId(12), t).gap();
            assert!(gap <= last + 1e-12, "gap grew at t={t}");
            last = gap;
        }
        assert!(last < 0.02, "uniqueness-regime gap too large: {last}");
    }

    #[test]
    fn ising_saw_matches_enumeration() {
        let g = generators::cycle(6);
        let params = ising::IsingParams::new(0.3, 0.1).to_two_spin();
        let m = two_spin::model(&g, params);
        let tau = PartialConfig::empty(6);
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        let oracle = TwoSpinSawOracle::new(params, DecayRate::new(0.5, 2.0));
        let est = oracle.marginal(&m, &tau, NodeId(0), 7);
        assert!(
            metrics::tv_distance(&exact, &est) < 1e-9,
            "est={est:?} exact={exact:?}"
        );
    }

    #[test]
    fn budget_exhaustion_keeps_bounds_certified() {
        let g = generators::torus(5, 5);
        let tau = PartialConfig::empty(25);
        // exact marginal for reference (enumeration is too big at n=25;
        // use the unbudgeted deep SAW bounds as the reference interval)
        let full = hc_oracle(1.0).marginal_bounds(&g, &tau, NodeId(12), 8);
        let tiny = hc_oracle(1.0)
            .with_node_budget(50)
            .marginal_bounds(&g, &tau, NodeId(12), 8);
        // budgeted bounds must contain the unbudgeted ones
        assert!(tiny.lo <= full.lo + 1e-12);
        assert!(tiny.hi >= full.hi - 1e-12);
        // and must be wider (the budget really bit)
        assert!(tiny.gap() > full.gap());
    }

    #[test]
    fn matching_marginals_via_line_graph() {
        use lds_gibbs::models::matching::MatchingInstance;
        let g = generators::cycle(5);
        let inst = MatchingInstance::new(&g, 1.0);
        let lm = inst.model();
        let tau = PartialConfig::empty(lm.node_count());
        let exact = distribution::marginal(lm, &tau, NodeId(0)).unwrap();
        let oracle = hc_oracle(1.0);
        let b = oracle.marginal_bounds(lm.graph(), &tau, NodeId(0), 6);
        assert!(
            (b.midpoint() - exact[1]).abs() < 1e-9,
            "matching marginal {} vs {}",
            b.midpoint(),
            exact[1]
        );
    }
}
