/// Exponential decay rate `δ_n(t) = c·αᵗ` — the quantitative form of
/// strong spatial mixing used for radius planning (paper, Definition 5.1,
/// "strong spatial mixing with exponential decay at rate α").
///
/// The paper's Theorem 5.1 converts a mixing rate into an inference radius
/// `t(n, δ) = min{t : δ_n(t) ≤ δ} + O(1)`; [`DecayRate::radius_for`]
/// computes exactly that.
///
/// # Example
///
/// ```
/// use lds_oracle::DecayRate;
/// let rate = DecayRate::new(0.5, 2.0);
/// // 2 * 0.5^t <= 0.01  =>  t >= log2(200) ≈ 7.6
/// assert_eq!(rate.radius_for(0.01), 8);
/// assert!(rate.error_at(8) <= 0.01);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecayRate {
    alpha: f64,
    c: f64,
}

impl DecayRate {
    /// Creates a decay rate with `δ(t) = c·αᵗ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < α < 1` and `c > 0`.
    pub fn new(alpha: f64, c: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "decay rate alpha must be in (0, 1), got {alpha}"
        );
        assert!(c > 0.0 && c.is_finite(), "decay constant must be positive");
        DecayRate { alpha, c }
    }

    /// The rate `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The constant `c`.
    pub fn constant(&self) -> f64 {
        self.c
    }

    /// The error bound `δ(t) = c·αᵗ` at radius `t`.
    pub fn error_at(&self, t: usize) -> f64 {
        self.c * self.alpha.powi(t as i32)
    }

    /// The smallest `t` with `δ(t) ≤ δ` — the paper's
    /// `min{t : δ_n(t) ≤ δ}`.
    pub fn radius_for(&self, delta: f64) -> usize {
        assert!(delta > 0.0, "error target must be positive");
        if self.c <= delta {
            return 0;
        }
        let t = ((self.c / delta).ln() / (1.0 / self.alpha).ln()).ceil();
        t as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_inverts_error() {
        let r = DecayRate::new(0.7, 3.0);
        for delta in [0.5, 0.1, 0.01, 1e-6] {
            let t = r.radius_for(delta);
            assert!(r.error_at(t) <= delta + 1e-15);
            if t > 0 {
                assert!(r.error_at(t - 1) > delta);
            }
        }
    }

    #[test]
    fn trivial_when_constant_below_target() {
        let r = DecayRate::new(0.5, 0.05);
        assert_eq!(r.radius_for(0.1), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn rejects_bad_alpha() {
        let _ = DecayRate::new(1.5, 1.0);
    }
}
