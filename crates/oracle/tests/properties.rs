//! Property-based tests for the inference oracles.

use lds_gibbs::models::two_spin::TwoSpinParams;
use lds_gibbs::models::{coloring, hardcore};
use lds_gibbs::{distribution, metrics, PartialConfig, Value};
use lds_graph::{generators, Graph, NodeId};
use lds_oracle::{
    BoostedOracle, DecayRate, EnumerationOracle, InferenceOracle, MultiplicativeInference,
    TwoSpinSawOracle,
};
use proptest::prelude::*;

fn workload(idx: usize) -> Graph {
    match idx % 4 {
        0 => generators::cycle(8),
        1 => generators::path(7),
        2 => generators::grid(2, 4),
        _ => generators::grid(3, 3),
    }
}

proptest! {
    /// SAW interval bounds always bracket the exact marginal, at every
    /// radius, on every workload, with or without pinnings.
    #[test]
    fn saw_bounds_bracket_truth(
        gidx in 0usize..4,
        lambda in 0.2f64..3.0,
        t in 1usize..7,
        pin_node in 0usize..7,
        pin_occupied in any::<bool>(),
    ) {
        let g = workload(gidx);
        let n = g.node_count();
        let m = hardcore::model(&g, lambda);
        let mut tau = PartialConfig::empty(n);
        let pv = NodeId::from_index(pin_node % n);
        tau.pin(pv, if pin_occupied { Value(1) } else { Value(0) });
        prop_assume!(distribution::is_feasible(&m, &tau));
        let oracle = TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(lambda), DecayRate::new(0.5, 2.0));
        for v in g.nodes() {
            if v == pv { continue; }
            let exact = distribution::marginal(&m, &tau, v).unwrap()[1];
            let b = oracle.marginal_bounds(&g, &tau, v, t);
            prop_assert!(
                b.lo <= exact + 1e-9 && exact <= b.hi + 1e-9,
                "v={v} t={t}: [{}, {}] vs {exact}", b.lo, b.hi
            );
        }
    }

    /// SAW certified gaps are monotone non-increasing in the radius.
    #[test]
    fn saw_gap_monotone_in_radius(gidx in 0usize..4, lambda in 0.2f64..2.0) {
        let g = workload(gidx);
        let tau = PartialConfig::empty(g.node_count());
        let oracle = TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(lambda), DecayRate::new(0.5, 2.0));
        let mut last = f64::INFINITY;
        for t in 1..7 {
            let gap = oracle.marginal_bounds(&g, &tau, NodeId(0), t).gap();
            prop_assert!(gap <= last + 1e-12, "gap grew at t={t}");
            last = gap;
        }
    }

    /// The enumeration oracle returns probability vectors that respect
    /// certified zeros (blocked values get exactly zero mass).
    #[test]
    fn enumeration_respects_hard_constraints(
        gidx in 0usize..4,
        t in 1usize..4,
        pin_node in 0usize..7,
    ) {
        let g = workload(gidx);
        let n = g.node_count();
        let m = hardcore::model(&g, 1.0);
        let mut tau = PartialConfig::empty(n);
        let pv = NodeId::from_index(pin_node % n);
        tau.pin(pv, Value(1));
        let oracle = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
        for &nb in g.neighbors(pv) {
            let mu = oracle.marginal(&m, &tau, nb, t);
            prop_assert_eq!(mu[1], 0.0, "neighbor {} of occupied {} got mass", nb, pv);
            prop_assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    /// Boosted oracles keep the multiplicative guarantee on cycles
    /// whenever the planned decay dominates the true decay.
    #[test]
    fn boosting_guarantee_on_cycles(
        n in 6usize..12,
        lambda in 0.3f64..2.0,
        eps in 0.1f64..0.8,
    ) {
        let g = generators::cycle(n);
        let m = hardcore::model(&g, lambda);
        let tau = PartialConfig::empty(n);
        let boosted = BoostedOracle::new(TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(lambda), DecayRate::new(0.55, 2.0)));
        let exact = distribution::marginal(&m, &tau, NodeId(0)).unwrap();
        let est = boosted.marginal_mul(&m, &tau, NodeId(0), eps);
        let err = metrics::multiplicative_err(&exact, &est);
        prop_assert!(err <= eps, "n={n} λ={lambda} ε={eps}: err {err}");
    }

    /// Radius planning is monotone: smaller error targets need larger
    /// radii, and the planned error at the planned radius meets the target.
    #[test]
    fn radius_planning_is_sound(alpha in 0.1f64..0.9, c in 0.5f64..8.0, delta in 1e-6f64..0.5) {
        let rate = DecayRate::new(alpha, c);
        let t = rate.radius_for(delta);
        prop_assert!(rate.error_at(t) <= delta * (1.0 + 1e-9));
        if t > 0 {
            prop_assert!(rate.error_at(t - 1) > delta);
        }
    }

    /// Locality: oracles are insensitive to pins beyond their radius.
    #[test]
    fn oracles_are_local(lambda in 0.3f64..2.0, t in 1usize..5) {
        let g = generators::cycle(16);
        let m = hardcore::model(&g, lambda);
        let far = NodeId(8);
        let mut sigma = PartialConfig::empty(16);
        sigma.pin(far, Value(0));
        let mut tau = PartialConfig::empty(16);
        tau.pin(far, Value(1));
        prop_assume!(t + 2 < 8);
        let saw = TwoSpinSawOracle::new(
            TwoSpinParams::hardcore(lambda), DecayRate::new(0.5, 2.0));
        prop_assert_eq!(
            saw.marginal(&m, &sigma, NodeId(0), t),
            saw.marginal(&m, &tau, NodeId(0), t)
        );
        let enumo = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
        prop_assert_eq!(
            enumo.marginal(&m, &sigma, NodeId(0), t),
            enumo.marginal(&m, &tau, NodeId(0), t)
        );
    }

    /// Enumeration oracle on colorings returns proper conditional
    /// marginals that sum to one.
    #[test]
    fn coloring_marginals_normalize(n in 5usize..10, q in 3usize..5, t in 1usize..4) {
        let g = generators::cycle(n);
        let m = coloring::model(&g, q);
        let tau = PartialConfig::empty(n);
        let oracle = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
        let mu = oracle.marginal(&m, &tau, NodeId(0), t);
        prop_assert_eq!(mu.len(), q);
        prop_assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
