//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the Criterion API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) with a simple
//! warmup-then-measure harness that prints per-benchmark mean/min/max
//! wall times. No statistics, plots, or comparison against saved
//! baselines — swap in the real crate for those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one untimed warmup call, then `sample_size`
    /// timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.durations.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().expect("nonempty");
    let max = durations.iter().max().expect("nonempty");
    println!(
        "{group}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        durations.len()
    );
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.durations);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.durations);
        self
    }

    /// Ends the group (formatting no-op in this harness).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        report(name, "", &b.durations);
        self
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            })
        });
        group.finish();
        // 1 warmup + 3 samples
        assert_eq!(calls, 4);
    }
}
