//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and [`any`] strategies, [`collection::vec`], and the
//! [`proptest!`]/[`prop_assert!`] macro family. Cases are generated from
//! a deterministic per-test RNG (seeded from the test's module path), so
//! failures are reproducible run to run; shrinking is **not**
//! implemented — the failure message reports the case index instead.
//!
//! The number of cases per property defaults to 64 and can be overridden
//! with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Deterministic RNG for one case of one named property.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name keeps distinct properties on distinct
    // streams even though the runner itself is deterministic.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then a follow-up strategy from it (dependent
    /// generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically dispatched strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A constant strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((S0 / 0)(S0 / 0, S1 / 1)(S0 / 0, S1 / 1, S2 / 2)(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3
)(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4)(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5
)(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6)(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy over all values of `T` (proptest's `any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The macro-facing prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running [`cases`] random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategies = ( $($strat,)+ );
            let total = $crate::cases();
            for case in 0..total {
                let mut rng = $crate::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                let ( $($arg,)+ ) =
                    $crate::Strategy::new_value(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case, total, message,
                    );
                }
            }
        }
    )*};
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs), stringify!($rhs), l, r,
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{} ({:?} vs {:?})", format!($($fmt)+), l, r,
            ));
        }
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($lhs), stringify!($rhs), l,
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "{} (both {:?})", format!($($fmt)+), l,
            ));
        }
    }};
}

/// Skips the current property case unless the precondition holds
/// (counted as a pass; this runner does not re-draw).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn maps_and_flat_maps_compose(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..10, n..=n)),
            doubled in (0usize..8).prop_map(|k| 2 * k),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(v.len(), 99);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "assume must filter odd {}", n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<usize> = (0..5)
            .map(|c| (0usize..1000).new_value(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<usize> = (0..5)
            .map(|c| (0usize..1000).new_value(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
