//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the exact API subset the workspace uses — `Rng`,
//! `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom` — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//! Statistical quality is sufficient for the workspace's empirical
//! total-variation tests (xoshiro256++ passes BigCrush); cryptographic
//! security is explicitly *not* provided (the real `StdRng` is ChaCha12).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (taken from the high half of a 64-bit word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable uniformly "from all values" by [`Rng::gen`], mirroring
/// rand's `Standard` distribution.
pub trait Standard {
    /// Draws a value from the standard distribution for this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be drawn from uniformly by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // guard against rounding up to the exclusive end
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Reproducible construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The full-entropy seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded with SplitMix64
    /// so that nearby seeds give uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna).
    ///
    /// Deterministic, 256-bit state, passes BigCrush; **not**
    /// cryptographically secure (the real `rand::rngs::StdRng` is
    /// ChaCha12 — acceptable here because the workspace only uses
    /// `StdRng` for simulation randomness).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // the all-zero state is a fixpoint of xoshiro; nudge it
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
        assert!(!StdRng::seed_from_u64(2).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(2).gen_bool(1.0));
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = rng.gen_range(2usize..7);
            assert!((2..7).contains(&k));
            seen[k - 2] = true;
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn float_frequencies_are_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
