//! Shared infrastructure for the experiment harness and Criterion
//! benches: workload constructors and plain-text table rendering.
//!
//! The experiment index (E1–E8, S1–S2) is defined in DESIGN.md §5; the
//! `experiments` binary regenerates every table, and EXPERIMENTS.md
//! records paper-claim vs. measured outcome.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// A plain-text table with a title, caption, headers and rows.
pub struct Table {
    title: String,
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n", self.title));
        if !self.caption.is_empty() {
            out.push_str(&format!("{}\n", self.caption));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}-|", "-".repeat(w + 1)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 4 significant decimals.
pub fn f(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats an integer-valued cell.
pub fn d(x: impl Display) -> String {
    format!("{x}")
}

/// Workloads used across experiments.
pub mod workloads {
    use lds_graph::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A cycle (Δ = 2) — the fast exact-enumeration workload.
    pub fn cycle(n: usize) -> Graph {
        generators::cycle(n)
    }

    /// A 2D torus (Δ = 4) — the bounded-degree lattice workload.
    pub fn torus(side: usize) -> Graph {
        generators::torus(side, side)
    }

    /// A random Δ-regular graph — the expander-like workload.
    pub fn regular(n: usize, d: usize, seed: u64) -> Graph {
        generators::random_regular(n, d, &mut StdRng::seed_from_u64(seed))
    }
}
