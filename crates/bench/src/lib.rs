//! Shared infrastructure for the experiment harness and Criterion
//! benches: workload constructors and plain-text table rendering.
//!
//! The experiment index (E1–E8, S1–S2) is defined in DESIGN.md §5; the
//! `experiments` binary regenerates every table, and EXPERIMENTS.md
//! records paper-claim vs. measured outcome.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// A plain-text table with a title, caption, headers and rows.
pub struct Table {
    title: String,
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n", self.title));
        if !self.caption.is_empty() {
            out.push_str(&format!("{}\n", self.caption));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}-|", "-".repeat(w + 1)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 4 significant decimals.
pub fn f(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats an integer-valued cell.
pub fn d(x: impl Display) -> String {
    format!("{x}")
}

/// The PR 2 scoped-spawn parallel-map strategy, kept as the comparison
/// baseline for the pool-reuse bench and the CI telemetry gate: scoped
/// workers spawned per call, stealing item indices off a shared atomic
/// counter, results gathered in input order. One copy here so the bench
/// and the gate measure the same baseline.
pub fn scoped_par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let (f, next) = (&f, &next);
    let harvested: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("scoped worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in harvested.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed"))
        .collect()
}

/// Workloads used across experiments.
pub mod workloads {
    use lds_graph::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A cycle (Δ = 2) — the fast exact-enumeration workload.
    pub fn cycle(n: usize) -> Graph {
        generators::cycle(n)
    }

    /// A 2D torus (Δ = 4) — the bounded-degree lattice workload.
    pub fn torus(side: usize) -> Graph {
        generators::torus(side, side)
    }

    /// A random Δ-regular graph — the expander-like workload.
    pub fn regular(n: usize, d: usize, seed: u64) -> Graph {
        generators::random_regular(n, d, &mut StdRng::seed_from_u64(seed))
    }
}
