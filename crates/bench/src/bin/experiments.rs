//! The experiment harness: regenerates every quantitative claim of the
//! paper (experiment index in DESIGN.md §5; results recorded in
//! EXPERIMENTS.md).
//!
//! Usage: `cargo run -p lds-bench --bin experiments --release [-- <ids>]`
//! where `<ids>` is a subset of `e1 e2 e3 e4 e5 e6a e6b e6c e6d e6e e7 e8
//! s1 s2` (default: all).

use lds_bench::{d, f, workloads, Table};
use lds_core::complexity;
use lds_core::jvv::{self, LocalJvv};
use lds_core::sampler::SequentialSampler;
use lds_core::sampling_to_inference;
use lds_engine::{Engine, ModelSpec, Task};
use lds_gibbs::models::two_spin::TwoSpinParams;
use lds_gibbs::models::{coloring, hardcore, matching::MatchingInstance};
use lds_gibbs::{distribution, metrics, Config, PartialConfig};
use lds_graph::{ordering, NodeId};
use lds_localnet::decomposition::{linial_saks, DecompositionParams};
use lds_localnet::slocal::SlocalAlgorithm;
use lds_localnet::{scheduler, Instance, Network};
use lds_oracle::{
    BoostedOracle, DecayRate, EnumerationOracle, InferenceOracle, MultiplicativeInference,
    TwoSpinSawOracle,
};
use lds_ssm::{correlation, estimator, phase, rate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn saw(lambda: f64, alpha: f64) -> TwoSpinSawOracle {
    TwoSpinSawOracle::new(TwoSpinParams::hardcore(lambda), DecayRate::new(alpha, 2.0))
}

/// E1 — Theorem 3.2: approximate inference ⟹ approximate sampling.
fn e1() {
    let mut t = Table::new(
        "E1  Inference => Sampling (Theorem 3.2)",
        "Hardcore λ=1 on cycles. Sampler error must be ≤ δ; rounds are the \
         simulated LOCAL cost O(t(n, δ/n)·log² n) of Lemma 3.1. TV is the \
         joint empirical-vs-exact distance (5000 runs; n ≤ 8 only).",
        &[
            "graph",
            "n",
            "delta",
            "t(n,d/n)",
            "rounds",
            "colors",
            "TV(joint)",
        ],
    );
    for &n in &[8usize, 16, 32] {
        for &delta in &[0.2f64, 0.05] {
            let g = workloads::cycle(n);
            let model = hardcore::model(&g, 1.0);
            let oracle = saw(1.0, 0.5);
            let tt = oracle.radius(n, delta / n as f64);
            let net = Network::new(Instance::unconditioned(model.clone()), 17);
            let sampler = SequentialSampler::new(oracle.clone(), delta);
            let (run, schedule) = scheduler::run_slocal_in_local(&net, &sampler, 0);
            let tv = if n <= 8 {
                let trials = 5000usize;
                let mut samples = Vec::with_capacity(trials);
                for seed in 0..trials as u64 {
                    let rnet = Network::new(Instance::unconditioned(model.clone()), seed);
                    let r = sampler.run_sequential(&rnet, &ordering::identity(&g));
                    samples.push(Config::from_values(r.outputs));
                }
                let emp = metrics::empirical_distribution(&samples);
                let exact =
                    distribution::joint_distribution(&model, &PartialConfig::empty(n)).unwrap();
                f(metrics::tv_distance_joint(&emp, &exact))
            } else {
                "-".into()
            };
            t.row(vec![
                "cycle".into(),
                d(n),
                f(delta),
                d(tt),
                d(run.rounds),
                d(schedule.colors),
                tv,
            ]);
        }
    }
    t.print();
}

/// E2 — Theorem 3.4: approximate sampling ⟹ approximate inference.
fn e2() {
    let mut t = Table::new(
        "E2  Sampling => Inference (Theorem 3.4)",
        "Marginals reconstructed from repeated LOCAL sampler executions \
         (Monte Carlo substitution, DESIGN.md §6). Error bound: δ + ε₀ + \
         sampling noise.",
        &[
            "graph",
            "n",
            "delta",
            "reps",
            "fail rate e0",
            "max node TV err",
            "bound",
        ],
    );
    for &(n, delta, reps) in &[(6usize, 0.05f64, 4000usize), (8, 0.1, 3000)] {
        let g = workloads::cycle(n);
        let model = hardcore::model(&g, 1.0);
        let net = Network::new(Instance::unconditioned(model.clone()), 23);
        let oracle = saw(1.0, 0.5);
        let res = sampling_to_inference::marginals_by_sampling(&net, &oracle, delta, reps, 5);
        let tau = PartialConfig::empty(n);
        let mut worst = 0.0f64;
        for v in g.nodes() {
            let exact = distribution::marginal(&model, &tau, v).unwrap();
            worst = worst.max(metrics::tv_distance(&exact, &res.marginals[v.index()]));
        }
        let noise = (1.0 / reps as f64).sqrt() * 2.0;
        t.row(vec![
            "cycle".into(),
            d(n),
            f(delta),
            d(reps),
            f(res.failure_rate),
            f(worst),
            f(delta + res.failure_rate + noise),
        ]);
    }
    t.print();
}

/// E3 — Lemma 4.1: additive → multiplicative boosting.
fn e3() {
    let mut t = Table::new(
        "E3  Boosting lemma (Lemma 4.1)",
        "Hardcore on C12 and 4x4 torus. The boosted oracle must achieve \
         multiplicative error ≤ ε given a base oracle with additive error \
         ε/(5qn). err = max_c |ln μ̂(c) − ln μ(c)| at the probe vertex.",
        &["graph", "lambda", "eps", "inner t", "measured err", "ok"],
    );
    let cases: Vec<(&str, lds_graph::Graph, f64)> = vec![
        ("cycle12", workloads::cycle(12), 1.0),
        ("torus4x4", workloads::torus(4), 0.8),
    ];
    for (name, g, lambda) in cases {
        let n = g.node_count();
        let model = hardcore::model(&g, lambda);
        let tau = PartialConfig::empty(n);
        let exact = distribution::marginal(&model, &tau, NodeId(0)).unwrap();
        let boosted = BoostedOracle::new(saw(lambda, 0.5));
        for &eps in &[0.5f64, 0.2, 0.1] {
            let est = boosted.marginal_mul(&model, &tau, NodeId(0), eps);
            let err = metrics::multiplicative_err(&exact, &est);
            t.row(vec![
                name.into(),
                f(lambda),
                f(eps),
                d(boosted.inner_radius(&model, eps)),
                f(err),
                d(err <= eps),
            ]);
        }
    }
    t.print();
}

/// E4 — Theorem 4.2: the distributed JVV exact sampler.
fn e4() {
    let mut t = Table::new(
        "E4  Distributed JVV exact sampling (Theorem 4.2)",
        "Hardcore λ=1 on cycles, 4000 runs each. Conditioned on success the \
         output must follow μ exactly (TV ≈ Monte Carlo noise); success \
         rate ≥ e^{−5n²ε}. ε = 1/n³ (the paper's instantiation).",
        &[
            "n",
            "eps",
            "runs",
            "success rate",
            "bound",
            "TV(accepted)",
            "clamped",
        ],
    );
    for &n in &[5usize, 6, 7, 8] {
        let g = workloads::cycle(n);
        let model = hardcore::model(&g, 1.0);
        let eps = LocalJvv::<BoostedOracle<TwoSpinSawOracle>>::paper_epsilon(n);
        let oracle = BoostedOracle::new(saw(1.0, 0.5));
        let jvv = LocalJvv::new(&oracle, eps);
        let runs = 4000usize;
        let mut accepted = Vec::new();
        let mut clamped = 0usize;
        for seed in 0..runs as u64 {
            let net = Network::new(Instance::unconditioned(model.clone()), seed);
            let out = jvv.run_detailed(&net, &ordering::identity(&g));
            clamped += out.stats.clamped;
            if out.run.succeeded() {
                accepted.push(Config::from_values(out.run.outputs));
            }
        }
        let success = accepted.len() as f64 / runs as f64;
        let emp = metrics::empirical_distribution(&accepted);
        let exact = distribution::joint_distribution(&model, &PartialConfig::empty(n)).unwrap();
        let tv = metrics::tv_distance_joint(&emp, &exact);
        t.row(vec![
            d(n),
            format!("{eps:.2e}"),
            d(runs),
            f(success),
            f(jvv.success_lower_bound(n)),
            f(tv),
            d(clamped),
        ]);
    }
    t.print();
}

/// E5 — Theorem 5.1: SSM ⟺ approximate inference.
fn e5() {
    let mut t = Table::new(
        "E5  SSM <=> Inference (Theorem 5.1)",
        "Hardcore on C16. Left: the enumeration oracle (SSM ⟹ inference) \
         achieves error ≤ the planned bound c·αᵗ at every radius. Right: the \
         measured SSM gap series fits an exponential with rate ≈ theory.",
        &[
            "lambda",
            "t",
            "bound c*a^t",
            "measured err",
            "fitted alpha",
            "theory alpha",
        ],
    );
    for &lambda in &[0.5f64, 1.0, 1.5] {
        let g = workloads::cycle(16);
        let model = hardcore::model(&g, lambda);
        let tau = PartialConfig::empty(16);
        let exact = distribution::marginal(&model, &tau, NodeId(0)).unwrap();
        let series = estimator::boundary_gap_series(
            &model,
            NodeId(0),
            lds_gibbs::Value(0),
            lds_gibbs::Value(1),
            7,
        );
        let fitted = rate::fit_rate(&series).map(|r| r.alpha).unwrap_or(f64::NAN);
        let theory = complexity::hardcore_decay_rate(lambda, 2);
        let planned = DecayRate::new(0.6, 2.0);
        let oracle = EnumerationOracle::new(planned);
        for &tt in &[2usize, 4, 6] {
            let est = oracle.marginal(&model, &tau, NodeId(0), tt);
            let err = metrics::tv_distance(&exact, &est);
            t.row(vec![
                f(lambda),
                d(tt),
                f(planned.error_at(tt)),
                f(err),
                f(fitted),
                f(theory),
            ]);
        }
    }
    t.print();
}

/// E6a — Corollary 5.3: matchings in O(√Δ·log³ n) rounds.
fn e6a() {
    let mut t = Table::new(
        "E6a  Matchings sampler rounds (Corollary 5.3)",
        "Monomer-dimer λ=1 on random Δ-regular graphs (n=24). Rounds are \
         the simulated JVV schedule cost on the line graph; the paper's \
         shape is √Δ·log³ n — the measured/bound ratio should stay flat in Δ.",
        &[
            "Delta",
            "n(line)",
            "rate",
            "locality",
            "rounds",
            "bound",
            "rounds/bound",
        ],
    );
    for &delta in &[3usize, 4, 5, 6] {
        let n = 24usize;
        let g = workloads::regular(n, delta, 7);
        let inst = MatchingInstance::new(&g, 1.0);
        let alpha = complexity::matching_decay_rate(1.0, delta);
        let oracle = saw(1.0, alpha.min(0.95));
        let eps = 0.05f64;
        let model = inst.model().clone();
        let rmul = MultiplicativeInference::radius_mul(&oracle, &model, eps);
        let ell = model.locality().max(1);
        let locality = lds_localnet::slocal::multipass_locality(&[rmul, rmul, 3 * rmul + ell]);
        let net = Network::new(Instance::unconditioned(model.clone()), 3);
        let rounds = (0..5)
            .map(|s| scheduler::chromatic_schedule(&net, locality, s).rounds)
            .sum::<usize>()
            / 5;
        let bound = complexity::matchings_rounds_bound(delta, model.node_count(), 1.0);
        t.row(vec![
            d(delta),
            d(model.node_count()),
            f(alpha),
            d(locality),
            d(rounds),
            f(bound),
            f(rounds as f64 / bound),
        ]);
    }
    t.print();
    // one full small-instance validation run at the paper's ε = 1/n³
    let g = workloads::regular(8, 3, 1);
    let n_line = g.edge_count();
    let eps = LocalJvv::<TwoSpinSawOracle>::paper_epsilon(n_line);
    let engine = Engine::builder()
        .model(ModelSpec::Matching { lambda: 1.0 })
        .graph(g.clone())
        .epsilon(eps)
        .build()
        .expect("matchings always in regime");
    let out = engine
        .run_with_seed(Task::SampleExact, 9)
        .expect("valid task");
    println!(
        "validation: full JVV matching run on 8-node 3-regular graph: \
         feasible={} rounds={} acceptance={:.3}",
        MatchingInstance::new(&g, 1.0).is_matching(out.matching_edges().expect("decode")),
        out.rounds,
        out.acceptance().expect("exact run")
    );
}

/// E6b — Corollary 5.3: hardcore in O(log³ n) rounds below λ_c.
fn e6b() {
    let mut t = Table::new(
        "E6b  Hardcore sampler rounds below uniqueness (Corollary 5.3)",
        "λ = 0.8·λ_c(4) on tori. Rounds vs the O(log³ n) bound; the ratio \
         should stay bounded as n grows.",
        &[
            "n",
            "rate",
            "locality",
            "rounds",
            "log^3 n",
            "rounds/log^3 n",
        ],
    );
    let lambda = 0.8 * complexity::hardcore_uniqueness_threshold(4);
    let alpha = complexity::hardcore_decay_rate(lambda, 4);
    for &side in &[4usize, 6, 8, 10] {
        let g = workloads::torus(side);
        let n = g.node_count();
        let model = hardcore::model(&g, lambda);
        let oracle = saw(lambda, alpha.min(0.95));
        let eps = 0.05f64;
        let rmul = MultiplicativeInference::radius_mul(&oracle, &model, eps);
        let locality = lds_localnet::slocal::multipass_locality(&[rmul, rmul, 3 * rmul + 1]);
        let net = Network::new(Instance::unconditioned(model), 3);
        let rounds = (0..5)
            .map(|s| scheduler::chromatic_schedule(&net, locality, s).rounds)
            .sum::<usize>()
            / 5;
        let bound = complexity::log3_rounds_bound(n, 1.0);
        t.row(vec![
            d(n),
            f(alpha),
            d(locality),
            d(rounds),
            f(bound),
            f(rounds as f64 / bound),
        ]);
    }
    t.print();
    // full validation on a cycle at the paper's ε = 1/n³
    let g = workloads::cycle(10);
    let run = Engine::builder()
        .model(ModelSpec::Hardcore { lambda: 1.0 })
        .graph(g.clone())
        .epsilon(LocalJvv::<TwoSpinSawOracle>::paper_epsilon(10))
        .build()
        .expect("in regime")
        .run_with_seed(Task::SampleExact, 4)
        .expect("valid task");
    println!(
        "validation: full JVV hardcore run on C10: feasible={} rounds={}",
        hardcore::is_independent_set(&g, run.config().expect("sampling run")),
        run.rounds
    );
}

/// E6c — Corollary 5.3: colorings of triangle-free graphs, q ≥ 2Δ.
fn e6c() {
    let mut t = Table::new(
        "E6c  Colorings of triangle-free graphs (Corollary 5.3)",
        "q = 2Δ ≥ α*·Δ colorings. Full JVV runs on cycles (enumeration \
         oracle; see DESIGN.md §6); proper = output is a proper coloring.",
        &["graph", "n", "q", "rate", "rounds", "proper", "success /5"],
    );
    for &n in &[5usize, 6, 8] {
        let g = workloads::cycle(n);
        let eps = LocalJvv::<TwoSpinSawOracle>::paper_epsilon(n);
        let engine = Engine::builder()
            .model(ModelSpec::Coloring { q: 4 })
            .graph(g.clone())
            .epsilon(eps)
            .build()
            .expect("q = 4 > α*·2 on cycles");
        let mut rounds = 0usize;
        let mut proper = true;
        let mut successes = 0usize;
        for run in engine
            .run_batch(Task::SampleExact, &[0, 1, 2, 3, 4])
            .expect("valid task")
        {
            rounds = rounds.max(run.rounds);
            proper &= coloring::is_proper(&g, run.config().expect("sampling run"));
            successes += run.succeeded as usize;
        }
        t.row(vec![
            "cycle".into(),
            d(n),
            d(4),
            f(complexity::coloring_decay_rate(4, 2)),
            d(rounds),
            d(proper),
            d(successes),
        ]);
    }
    t.print();
}

/// E6d — Corollary 5.3: antiferromagnetic Ising in uniqueness.
fn e6d() {
    let mut t = Table::new(
        "E6d  Antiferromagnetic Ising (Corollary 5.3)",
        "Ising on C12 across β; rate column is the Δ=4 reference contraction \
         (cycles always unique); samples stay feasible.",
        &["beta", "rate(Δ=4 ref)", "in regime", "rounds", "feasible"],
    );
    let g = workloads::cycle(12);
    for &beta in &[-0.1f64, -0.3, -0.6] {
        let params = lds_gibbs::models::ising::IsingParams::new(beta, 0.0).to_two_spin();
        let rate4 = complexity::ising_decay_rate(beta, 4);
        let rate2 = complexity::ising_decay_rate(beta, 2);
        let eps = LocalJvv::<TwoSpinSawOracle>::paper_epsilon(12);
        let built = Engine::builder()
            .model(ModelSpec::TwoSpin {
                beta: params.beta,
                gamma: params.gamma,
                lambda: params.lambda,
                rate: rate2.clamp(0.05, 0.9),
            })
            .graph(g.clone())
            .epsilon(eps)
            .build();
        match built.and_then(|e| e.run_with_seed(Task::SampleExact, 3)) {
            Ok(run) => {
                let m = lds_gibbs::models::two_spin::model(&g, params);
                t.row(vec![
                    f(beta),
                    f(rate4),
                    d(true),
                    d(run.rounds),
                    d(m.weight(run.config().expect("sampling run")) > 0.0),
                ]);
            }
            Err(e) => {
                t.row(vec![f(beta), f(rate4), d(false), e.to_string(), "-".into()]);
            }
        }
    }
    t.print();
}

/// E6e — Corollary 5.3: weighted hypergraph matchings.
fn e6e() {
    let mut t = Table::new(
        "E6e  Hypergraph matchings below λ_c(r,Δ) (Corollary 5.3)",
        "Random 3-uniform hypergraphs, λ = 0.5·λ_c(3,Δ). Output must be a \
         set of pairwise disjoint hyperedges.",
        &[
            "n(V)",
            "m(edges)",
            "lambda",
            "rounds",
            "matching",
            "success /5",
        ],
    );
    for &(nv, m) in &[(9usize, 6usize), (12, 8)] {
        let h = lds_graph::Hypergraph::random_uniform(nv, m, 3, &mut StdRng::seed_from_u64(11));
        let delta = h.max_degree().max(3);
        let lambda = 0.5 * complexity::hypergraph_matching_threshold(3, delta);
        let eps = LocalJvv::<TwoSpinSawOracle>::paper_epsilon(m);
        let inst =
            lds_gibbs::models::hypergraph_matching::HypergraphMatchingInstance::new(&h, lambda);
        let mut rounds = 0usize;
        let mut valid = true;
        let mut successes = 0usize;
        match Engine::builder()
            .model(ModelSpec::HypergraphMatching { lambda })
            .hypergraph(h.clone())
            .epsilon(eps)
            .build()
            .and_then(|e| e.run_batch(Task::SampleExact, &[0, 1, 2, 3, 4]))
        {
            Ok(outs) => {
                for out in outs {
                    rounds = rounds.max(out.rounds);
                    valid &= inst.is_matching(out.hyperedges().expect("decode"));
                    successes += out.succeeded as usize;
                }
            }
            Err(_) => valid = false,
        }
        t.row(vec![
            d(nv),
            d(m),
            f(lambda),
            d(rounds),
            d(valid),
            d(successes),
        ]);
    }
    t.print();
}

/// E7 — the computational phase transition (headline figure).
fn e7() {
    let mut t = Table::new(
        "E7  Computational phase transition at λ_c(Δ) (headline figure)",
        "Hardcore on the Δ-regular tree (Δ=4, λ_c=27/16): fitted SSM rate, \
         decay length, limiting boundary gap and the radius needed for \
         inference error 0.01. Below λ_c: finite radius (tractable). Above: \
         persistent gap ⟹ infinite radius (Ω(diam), Feng–Sun–Yin).",
        &[
            "lambda/lc",
            "lambda",
            "fitted alpha",
            "theory alpha",
            "decay len",
            "limit gap",
            "radius(0.01)",
            "regime",
        ],
    );
    let ratios = [0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.3, 1.7, 2.2, 3.0];
    for p in phase::hardcore_tree_sweep(4, &ratios, 400) {
        let (alpha, dlen) = match &p.fitted {
            Some(fr) => (f(fr.alpha), f(fr.decay_length())),
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            f(p.lambda_ratio),
            f(p.lambda),
            alpha,
            f(p.theory_rate),
            dlen,
            format!("{:.2e}", p.limiting_gap),
            f(p.required_radius),
            if p.unique {
                "unique".into()
            } else {
                "NON-unique".into()
            },
        ]);
    }
    t.print();
}

/// E8 — the Ω(diam) lower-bound witness.
fn e8() {
    let mut t = Table::new(
        "E8  Long-range correlation lower bound (Feng–Sun–Yin + Section 5)",
        "Any radius-t LOCAL algorithm errs by ≥ gap/2 when the boundary at \
         distance > t carries gap. Below λ_c the required radius is finite \
         and grows toward the threshold; above λ_c no finite radius works \
         (the Ω(diam) conclusion). Tree Δ=4, depth 300, target ε=0.01.",
        &[
            "lambda/lc",
            "limiting gap",
            "error floor",
            "min radius(e=0.01)",
            "regime",
        ],
    );
    let lc = complexity::hardcore_uniqueness_threshold(4);
    for &ratio in &[0.4f64, 0.7, 0.9, 1.2, 2.0, 3.0] {
        let lambda = ratio * lc;
        let gap = correlation::limiting_tree_gap(4, lambda, 300);
        let gaps: Vec<f64> = estimator::tree_gap_series(3, lambda, 300)
            .iter()
            .map(|p| p.gap)
            .collect();
        let min_r = correlation::min_radius_for_error(&gaps, 0.01);
        t.row(vec![
            f(ratio),
            format!("{:.2e}", gap),
            format!("{:.2e}", correlation::error_floor(gap)),
            min_r.map_or("inf (>= diam)".into(), d),
            format!("{:?}", correlation::classify(4, lambda)),
        ]);
    }
    t.print();
}

/// S1 — substrate sanity: network decomposition quality.
fn s1() {
    let mut t = Table::new(
        "S1  Network decomposition quality (Lemma 3.1 substrate)",
        "Linial–Saks on various graphs: colors and weak radius must track \
         O(log n); failures must be rare (5 seeds each).",
        &[
            "graph",
            "n",
            "colors(max)",
            "weak radius(max)",
            "cap 8log+8",
            "failures",
        ],
    );
    let cases: Vec<(&str, lds_graph::Graph)> = vec![
        ("torus5", workloads::torus(5)),
        ("torus8", workloads::torus(8)),
        ("torus12", workloads::torus(12)),
        ("regular4-64", workloads::regular(64, 4, 2)),
        ("regular4-256", workloads::regular(256, 4, 2)),
    ];
    for (name, g) in cases {
        let n = g.node_count();
        let params = DecompositionParams::for_size(n);
        let mut colors = 0usize;
        let mut radius = 0usize;
        let mut failures = 0usize;
        for seed in 0..5u64 {
            let dec = linial_saks(&g, params, &mut StdRng::seed_from_u64(seed));
            colors = colors.max(dec.colors);
            radius = radius.max(dec.max_weak_radius(&g));
            failures += dec.failed.iter().filter(|&&x| x).count();
        }
        t.row(vec![
            name.into(),
            d(n),
            d(colors),
            d(radius),
            d(params.color_cap),
            d(failures),
        ]);
    }
    t.print();
}

/// S2 — substrate sanity: oracle accuracy and throughput.
fn s2() {
    let mut t = Table::new(
        "S2  Oracle accuracy/throughput (SAW vs enumeration)",
        "Hardcore λ=1 on the 4x4 torus, probe node 5. Exact marginal from \
         global enumeration; per-call latency in microseconds.",
        &["oracle", "t", "TV err", "certified gap", "latency (us)"],
    );
    let g = workloads::torus(4);
    let model = hardcore::model(&g, 1.0);
    let tau = PartialConfig::empty(16);
    let exact = distribution::marginal(&model, &tau, NodeId(5)).unwrap();
    let sawo = saw(1.0, 0.5);
    for &tt in &[2usize, 4, 6] {
        let start = Instant::now();
        let est = sawo.marginal(&model, &tau, NodeId(5), tt);
        let lat = start.elapsed().as_micros();
        let gap = sawo.marginal_bounds(&g, &tau, NodeId(5), tt).gap();
        t.row(vec![
            "saw".into(),
            d(tt),
            f(metrics::tv_distance(&exact, &est)),
            f(gap),
            d(lat),
        ]);
    }
    let enumo = EnumerationOracle::new(DecayRate::new(0.5, 2.0));
    for &tt in &[1usize, 2] {
        let start = Instant::now();
        let est = enumo.marginal(&model, &tau, NodeId(5), tt);
        let lat = start.elapsed().as_micros();
        t.row(vec![
            "enumeration".into(),
            d(tt),
            f(metrics::tv_distance(&exact, &est)),
            "-".into(),
            d(lat),
        ]);
    }
    t.print();

    // JVV acceptance sanity appended to S2
    let g = workloads::cycle(7);
    let model = hardcore::model(&g, 1.0);
    let oracle = BoostedOracle::new(saw(1.0, 0.5));
    let net = Network::new(Instance::unconditioned(model), 3);
    let (run, _sched, stats) = jvv::sample_exact_local(&net, &oracle, 0.01, 0);
    println!(
        "JVV sanity on C7: rounds={} locality={} acceptance={:.3} clamped={}",
        run.rounds, stats.locality, stats.acceptance_product, stats.clamped
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);
    println!("# lds experiment harness — reproduction of Feng & Yin (PODC 2018)");
    let t0 = Instant::now();
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6a") {
        e6a();
    }
    if want("e6b") {
        e6b();
    }
    if want("e6c") {
        e6c();
    }
    if want("e6d") {
        e6d();
    }
    if want("e6e") {
        e6e();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("s1") {
        s1();
    }
    if want("s2") {
        s2();
    }
    println!("\ntotal wall time: {:.1?}", t0.elapsed());
}
